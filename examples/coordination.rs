//! Dynamic barrier and STM-style reader registry — two more of the paper's
//! motivating applications.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example coordination
//! ```
//!
//! Phase 1: a set of workers synchronizes on a [`DynamicBarrier`] while some
//! of them leave mid-computation; the barrier keeps working because membership
//! is tracked by the activity array.
//!
//! Phase 2: readers continuously enter and exit a [`ReaderRegistry`] while a
//! writer publishes versioned updates, waiting out the readers that might
//! still observe the old version (the conflict-detection pattern used by STM
//! systems).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use levelarray_suite::coordination::{DynamicBarrier, ReaderRegistry};
use levelarray_suite::core::LevelArray;
use levelarray_suite::rng::{default_rng, SeedSequence};

fn barrier_demo(workers: usize) {
    println!("-- dynamic barrier: {workers} workers, half leave after 5 phases --");
    let barrier = Arc::new(DynamicBarrier::new(Arc::new(LevelArray::new(workers))));
    let mut rng = default_rng(1);
    let members: Vec<_> = (0..workers).map(|_| barrier.join(&mut rng)).collect();
    let work_done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        for (index, member) in members.into_iter().enumerate() {
            let work_done = Arc::clone(&work_done);
            scope.spawn(move || {
                let phases = if index % 2 == 0 { 5 } else { 10 };
                for _ in 0..phases {
                    work_done.fetch_add(1, Ordering::Relaxed);
                    member.wait();
                }
                // member dropped here -> leaves the barrier
            });
        }
    });
    println!(
        "completed {} phases, {} units of work, {} members left registered",
        barrier.phase(),
        work_done.load(Ordering::Relaxed),
        barrier.members()
    );
    assert_eq!(barrier.members(), 0);
}

fn reader_registry_demo(readers: usize) {
    println!("-- reader registry: {readers} readers, 1 writer publishing 100 versions --");
    let registry = Arc::new(ReaderRegistry::new(Arc::new(LevelArray::new(readers + 1))));
    let data = Arc::new(AtomicU64::new(0));
    let versions = 100u64;
    let mut seeds = SeedSequence::new(2);

    std::thread::scope(|scope| {
        // Readers: read until they have seen the final version.
        for _ in 0..readers {
            let registry = Arc::clone(&registry);
            let data = Arc::clone(&data);
            let seed = seeds.next_seed();
            scope.spawn(move || {
                let mut rng = default_rng(seed);
                let mut reads = 0u64;
                loop {
                    let guard = registry.enter(&mut rng);
                    std::sync::atomic::fence(Ordering::SeqCst);
                    let value = data.load(Ordering::Acquire);
                    drop(guard);
                    reads += 1;
                    if value >= versions {
                        return reads;
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Writer.
        let registry = Arc::clone(&registry);
        let data = Arc::clone(&data);
        scope.spawn(move || {
            for version in 1..=versions {
                data.store(version, Ordering::Release);
                std::sync::atomic::fence(Ordering::SeqCst);
                // Wait until every reader that might still see the previous
                // version has left its read-side section.
                registry.wait_for_readers();
            }
        });
    });
    println!(
        "writer published {versions} versions; registry quiescent: {}",
        registry.is_quiescent()
    );
    assert!(registry.is_quiescent());
}

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    barrier_demo(workers);
    println!();
    reader_registry_demo(workers.saturating_sub(1).max(1));
    println!("\nOK");
}
