//! The self-healing experiment (paper Figure 3) as a runnable example.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example healing
//! ```
//!
//! The LevelArray is forced into an unbalanced state — batch 0 a quarter full,
//! batch 1 half full (overcrowded) — and then ordinary register/deregister
//! traffic runs against it.  Every 4000 operations the example prints the
//! per-batch fill; the skew drains away and the array returns to a balanced
//! profile without any explicit rebuilding, exactly as the paper observes.

use levelarray_suite::core::LevelArrayConfig;
use levelarray_suite::sim::{HealingExperiment, UnbalanceSpec};

fn main() {
    let n = 512;
    let experiment = HealingExperiment {
        array: LevelArrayConfig::new(n),
        workers: n / 2,
        total_ops: 32_000,
        snapshot_every: 4_000,
        spec: UnbalanceSpec::paper_figure3(),
        seed: 2014, // the paper's publication year, for luck
        ghost_release_probability: 0.5,
    };
    println!(
        "healing: LevelArray with n = {n}, initial skew batch0=25% batch1=50%, {} ops",
        experiment.total_ops
    );
    let report = experiment.run();

    let batches = report.samples[0].batch_fill.len().min(6);
    print!("{:>12} {:>9}", "state (ops)", "balanced");
    for b in 0..batches {
        print!(" {:>9}", format!("batch {b}"));
    }
    println!();
    for sample in &report.samples {
        print!(
            "{:>12} {:>9}",
            sample.ops_completed,
            if sample.fully_balanced { "yes" } else { "NO" }
        );
        for b in 0..batches {
            print!(" {:>8.1}%", sample.batch_fill[b] * 100.0);
        }
        println!();
    }

    println!();
    match report.ops_to_balance {
        Some(ops) => println!(
            "array became (and stayed) fully balanced after {ops} operations — \
             the paper reports ~32000 for its machine-scale run, and notes the \
             convergence is faster than the analysis predicts"
        ),
        None => println!("array did not stabilize within the run (unexpected — try more ops)"),
    }
    assert!(report.finally_balanced, "the array should heal");
}
