//! Flat combining with activity-array publication slots.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example flat_combining
//! ```
//!
//! Worker threads funnel increments and queue operations through a combiner.
//! Each worker claims its publication slot by registering in a LevelArray and
//! the combiner discovers pending work by collecting the registered slots —
//! the flat-combining use case the paper lists in its introduction.

use std::sync::Arc;
use std::time::Instant;

use levelarray_suite::core::LevelArray;
use levelarray_suite::flatcombine::{FcCounter, FcQueue};
use levelarray_suite::rng::{default_rng, SeedSequence};

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let increments_per_worker = 50_000u64;
    let queue_items_per_worker = 10_000usize;

    println!("flat_combining: {workers} workers, {increments_per_worker} increments each");

    // Combining counter.
    let counter = Arc::new(FcCounter::new(Arc::new(LevelArray::new(workers))));
    let started = Instant::now();
    let mut seeds = SeedSequence::new(1);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let counter = Arc::clone(&counter);
            let seed = seeds.next_seed();
            scope.spawn(move || {
                let mut rng = default_rng(seed);
                let session = counter.join(&mut rng);
                for _ in 0..increments_per_worker {
                    session.increment();
                }
            });
        }
    });
    let elapsed = started.elapsed();
    println!(
        "counter: value={} (expected {}), {} combining passes, {:.0} ops/s",
        counter.load(),
        workers as u64 * increments_per_worker,
        counter.combine_passes(),
        (workers as u64 * increments_per_worker) as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(counter.load(), workers as u64 * increments_per_worker);

    // Combining FIFO queue: producers and consumers.
    let queue: Arc<FcQueue<usize>> = Arc::new(FcQueue::new(Arc::new(LevelArray::new(workers))));
    let mut seeds = SeedSequence::new(2);
    let consumed: usize = std::thread::scope(|scope| {
        let mut consumers = Vec::new();
        for worker in 0..workers {
            let queue = Arc::clone(&queue);
            let seed = seeds.next_seed();
            if worker % 2 == 0 {
                // Producer.
                scope.spawn(move || {
                    let mut rng = default_rng(seed);
                    let session = queue.join(&mut rng);
                    for i in 0..queue_items_per_worker {
                        session.enqueue(worker * queue_items_per_worker + i);
                    }
                });
            } else {
                // Consumer: takes a fixed number of items.
                consumers.push(scope.spawn(move || {
                    let mut rng = default_rng(seed);
                    let session = queue.join(&mut rng);
                    let mut taken = 0usize;
                    while taken < queue_items_per_worker / 2 {
                        if session.dequeue().is_some() {
                            taken += 1;
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    taken
                }));
            }
        }
        consumers.into_iter().map(|h| h.join().unwrap()).sum()
    });
    println!(
        "queue: consumed {consumed} items concurrently, {} left in the queue",
        queue.len()
    );
    println!("OK");
}
