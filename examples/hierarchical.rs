//! The hierarchical composition end to end: an elastic chain of *sharded*
//! epochs that grows — and shrinks — by whole cache-padded shard groups.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example hierarchical
//! ```
//!
//! `LevelArrayConfig::shard_group(g)` makes every epoch of an
//! `ElasticLevelArray` a sharded core of `ceil(bound / g)` independent
//! LevelArrays, each a cache-friendly ~`g`-participant island; threads pin a
//! sticky home shard from the machine topology (`/sys/devices/system/node`,
//! with a round-robin fallback) and steal-walk the sibling shards only when
//! their island is full.  Growth then means *adding shard groups*: the
//! doubled successor epoch carries twice the shards, and the epoch tag in
//! every `Name` keeps routing exact across the split.  With a shrink
//! watermark set, sustained low occupancy walks the chain back down —
//! a half-bound epoch opens, the oversized one drains and retires through
//! the same non-blocking seal → grace → census → unlink protocol that
//! growth uses, and none of the concurrent `Get`/`Free`/`Collect` traffic
//! ever blocks behind it.

use std::sync::Arc;

use levelarray_suite::core::Topology;
use levelarray_suite::rng::{default_rng, SeedSequence};
use levelarray_suite::{ActivityArray, GrowthPolicy, LevelArrayConfig, Name};

fn epoch_table(array: &levelarray_suite::ElasticLevelArray) {
    for epoch in array.epoch_ids() {
        let bound = array.epoch_contention(epoch).unwrap_or(0);
        let shards = array.epoch_shards(epoch).unwrap_or(0);
        let held = array.epoch_held(epoch).unwrap_or(0);
        println!("    epoch {epoch}: bound {bound:>3}, {shards} shard core(s), {held:>3} held");
    }
}

fn main() {
    let topology = Topology::discover();
    println!(
        "topology: {} node(s), {} cpu(s) — shard homes interleave across nodes",
        topology.num_nodes(),
        topology.num_cpus()
    );

    let group = 8;
    let array = Arc::new(
        LevelArrayConfig::new(16)
            .shard_group(group)
            .shrink_watermark(0.25)
            .growth(GrowthPolicy::Doubling { max_epochs: 8 })
            .build_elastic()
            .expect("valid hierarchical configuration"),
    );
    println!(
        "hierarchical ElasticLevelArray: initial bound {}, shard group {}, {} shard core(s)",
        array.initial_contention(),
        array.shard_group(),
        array.newest_epoch_shards()
    );

    // Phase 1: a storm of holders oversubscribes the initial epoch, so the
    // chain grows — each successor epoch a wider row of shard groups.
    let threads = 8;
    let per_thread = 40;
    let mut seeds = SeedSequence::new(0x5A5D);
    let held: Vec<Vec<Name>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let array = Arc::clone(&array);
                let seed = seeds.next_seed();
                scope.spawn(move || {
                    let mut rng = default_rng(seed);
                    // A sticky home shard per thread: epoch cells reduce the
                    // token modulo their own shard count.
                    array.route_hint(t);
                    (0..per_thread)
                        .map(|_| array.get(&mut rng).name())
                        .collect::<Vec<Name>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let total: usize = held.iter().map(Vec::len).sum();
    println!("\nphase 1 — growth burst: {total} names held across {threads} threads");
    epoch_table(&array);

    // Phase 2: the burst subsides.  Draining the old epochs retires them;
    // the oversized newest epoch survives alone.
    for name in held.into_iter().flatten() {
        array.free(name);
    }
    let _ = array.try_retire();
    println!(
        "\nphase 2 — burst over: {} epoch(s) live, {} opened, {} retired",
        array.num_epochs(),
        array.epochs_opened(),
        array.epochs_retired()
    );
    epoch_table(&array);

    // Phase 3: light churn at low occupancy.  Every free samples the
    // watermark; once the low streak outlasts the patience window the chain
    // opens a half-bound epoch on its own, and the oversized one unlinks.
    let big = array.newest_epoch();
    let big_bound = array.epoch_contention(big).unwrap();
    let mut rng = default_rng(0xD0E);
    for _ in 0..(big_bound.max(16) * 4) {
        let got = array.get(&mut rng);
        array.free(got.name());
    }
    let _ = array.try_retire();
    let newest = array.newest_epoch();
    println!(
        "\nphase 3 — watermark shrink: newest epoch {} (bound {} -> {}), {} live, {} pending reclamation",
        newest,
        big_bound,
        array.epoch_contention(newest).unwrap_or(0),
        array.num_epochs(),
        array.pending_reclamation()
    );
    epoch_table(&array);
    assert!(array.collect().is_empty());
    println!("\ncollect() is empty — every name handed back, every epoch accounted for");
}
