//! The sharded LevelArray end to end: routing, stealing, per-shard census.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example sharded
//! ```
//!
//! A pool of worker threads churns register/deregister traffic against a
//! `ShardedLevelArray`: each thread is pinned to a sticky home shard on its
//! first `Get` (assigned round-robin, so the pool spreads evenly) and steals
//! from neighbouring shards only when its home shard is exhausted; the RNG
//! keeps driving the probe order inside every shard.  The example prints the
//! per-shard occupancy census mid-run, then demonstrates the steal path
//! deterministically by filling one shard and watching a `Get` walk to the
//! next one.

use std::sync::Arc;

use levelarray_suite::core::Name;
use levelarray_suite::rng::{default_rng, SeedSequence};
use levelarray_suite::{ActivityArray, ShardedLevelArray};

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let shards = 4;
    let n = threads * 16; // contention bound: each thread holds up to 16 names
    let array = Arc::new(ShardedLevelArray::new(n, shards));

    println!(
        "ShardedLevelArray: n = {n}, {shards} shards x {} slots = {} total capacity",
        array.shard_capacity(),
        array.capacity()
    );
    println!(
        "each shard: contention bound {}, {} main slots in {} batches, {} backup slots",
        array.shard_contention(),
        array.shard_geometry().main_len(),
        array.shard_geometry().num_batches(),
        array.shard_core(0).backup_len()
    );
    println!();

    // Churn: every thread repeatedly registers a block of names and frees it.
    let mut seeds = SeedSequence::new(0x5AAD);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let array = Arc::clone(&array);
            let seed = seeds.next_seed();
            scope.spawn(move || {
                let mut rng = default_rng(seed);
                let mut held: Vec<Name> = Vec::with_capacity(16);
                for _ in 0..2_000 {
                    for _ in 0..16 {
                        held.push(array.get(&mut rng).name());
                    }
                    for name in held.drain(..) {
                        array.free(name);
                    }
                }
            });
        }

        // Census while the churn is in flight: per-shard fill fractions.
        let snap = array.occupancy();
        println!("mid-run census ({} regions):", snap.regions().len());
        for shard in 0..array.num_shards() {
            let b0 = snap
                .shard_batch(shard, 0)
                .map(|r| r.fill_fraction() * 100.0)
                .unwrap_or(0.0);
            let backup = snap.shard_backup(shard).map(|r| r.occupied()).unwrap_or(0);
            println!("  shard {shard}: batch 0 fill {b0:>5.1}%, backup occupied {backup}");
        }
    });
    assert!(array.collect().is_empty(), "all names were freed");
    println!();

    // Steal path, deterministically: fill shard 0, then keep registering —
    // a Get pinned to shard 0 (or probing it on the steal walk) can only win
    // a slot elsewhere.
    let cap = array.shard_capacity();
    for local in 0..cap {
        assert!(array.force_occupy(Name::new(local)), "shard 0 starts empty");
    }
    let mut rng = default_rng(7);
    let mut stolen = 0usize;
    let mut acquired = Vec::new();
    for _ in 0..32 {
        let got = array.get(&mut rng);
        let shard = array.shard_of(got.name());
        assert_ne!(
            shard, 0,
            "shard 0 is full; the name must come from elsewhere"
        );
        if got.probes() > array.shard_core(0).exhausted_probe_count() {
            stolen += 1; // charged a full failed shard before winning
        }
        acquired.push(got.name());
    }
    println!(
        "with shard 0 exhausted, 32 further Gets all landed on other shards \
         ({stolen} of them provably walked the steal path)"
    );
    for name in acquired {
        array.free(name);
    }
    for local in 0..cap {
        array.free(Name::new(local));
    }
    assert!(array.collect().is_empty());
    println!("done: uniqueness and free/collect semantics held across shards");
}
