//! Memory reclamation for a lock-free stack — the paper's flagship use case.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example memory_reclamation
//! ```
//!
//! Worker threads hammer a Treiber stack.  Every operation registers in the
//! reclamation domain's activity array (a LevelArray) and deregisters when it
//! finishes; a dedicated reclaimer thread periodically `Collect`s the
//! registered operations to decide which popped nodes can be freed.  The
//! example prints how much memory stayed in limbo over time and verifies that
//! everything is reclaimed once the workers stop.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use levelarray_suite::core::LevelArray;
use levelarray_suite::reclaim::{ReclaimDomain, TreiberStack};
use levelarray_suite::rng::{default_rng, SeedSequence};

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(workers * 2))));
    let stack: Arc<TreiberStack<u64>> = Arc::new(TreiberStack::new(Arc::clone(&domain)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut seeds = SeedSequence::new(42);

    println!("memory_reclamation: {workers} workers pushing/popping through a reclaim domain");

    let mut handles = Vec::new();
    for _ in 0..workers {
        let stack = Arc::clone(&stack);
        let stop = Arc::clone(&stop);
        let seed = seeds.next_seed();
        handles.push(std::thread::spawn(move || {
            let mut rng = default_rng(seed);
            let mut pushed = 0u64;
            let mut popped = 0u64;
            while !stop.load(Ordering::Relaxed) {
                stack.push(pushed, &mut rng);
                pushed += 1;
                if pushed % 2 == 0 && stack.pop(&mut rng).is_some() {
                    popped += 1;
                }
            }
            (pushed, popped)
        }));
    }

    // Reclaimer thread: periodic collect-based passes.
    {
        let domain = Arc::clone(&domain);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut passes = 0u64;
            let mut freed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                freed += domain.try_reclaim();
                passes += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            (passes, freed)
        }));
    }

    for round in 1..=5 {
        std::thread::sleep(Duration::from_millis(100));
        let stats = domain.stats();
        println!(
            "t={}ms  retired={} freed={} in_limbo={} pinned_now={}",
            round * 100,
            stats.retired,
            stats.freed,
            stats.in_limbo,
            stats.pinned_now
        );
    }
    stop.store(true, Ordering::Relaxed);
    for handle in handles {
        let _ = handle.join();
    }

    // Drain the stack and flush the limbo lists.
    let mut rng = default_rng(7);
    let drained = stack.drain(&mut rng);
    let _ = domain.try_reclaim();
    let _ = domain.try_reclaim();
    let stats = domain.stats();
    println!();
    println!("drained {drained} remaining elements");
    println!(
        "final: retired={} freed={} in_limbo={} (everything must be freed)",
        stats.retired, stats.freed, stats.in_limbo
    );
    assert_eq!(stats.freed, stats.retired);
    assert_eq!(stats.in_limbo, 0);
    println!("OK: no leaks, no premature frees");
}
