//! The elastic LevelArray end to end: growth, epoch-tagged names, retirement.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example elastic
//! ```
//!
//! An `ElasticLevelArray` is deliberately started far too small for the
//! thread population that then hammers it: every `Get` routes to the newest
//! epoch and, when that epoch saturates, the chain opens a doubled successor
//! instead of failing.  Names carry their `(epoch, index)` tag, `Free`
//! routes by it, and once the old epochs drain, a collect snapshot proves
//! them quiescent and the chain shrinks back — the same grace-period
//! argument the memory-reclamation example uses.  The chain itself is
//! lock-free (growth is a CAS on the epoch-chain head; retirement is the
//! non-blocking seal → grace → census → unlink protocol), so none of the
//! `Get`/`Free` traffic below ever blocks behind a growth or retirement
//! event — see `docs/ARCHITECTURE.md` for the protocol diagram.

use std::sync::Arc;

use levelarray_suite::rng::{default_rng, SeedSequence};
use levelarray_suite::{ActivityArray, ElasticLevelArray, GrowthPolicy, Name};

fn main() {
    let threads = 8;
    let per_thread = 32;
    // Initial bound 8 — the population will hold 8 * 32 = 256 names at once.
    let array = Arc::new(ElasticLevelArray::new(
        8,
        GrowthPolicy::Doubling { max_epochs: 10 },
    ));
    println!(
        "ElasticLevelArray: initial bound {}, capacity {} — about to serve {} holders",
        array.initial_contention(),
        array.capacity(),
        threads * per_thread
    );

    // Phase 1: every thread registers its full quota and holds it.
    let mut seeds = SeedSequence::new(0xE1A5);
    let held: Vec<Vec<Name>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let array = Arc::clone(&array);
                let seed = seeds.next_seed();
                scope.spawn(move || {
                    let mut rng = default_rng(seed);
                    (0..per_thread)
                        .map(|_| array.get(&mut rng).name())
                        .collect::<Vec<Name>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total: usize = held.iter().map(Vec::len).sum();
    println!(
        "registered {total} names with zero failures; the chain grew through \
         {} epochs (live: {:?})",
        array.epochs_opened(),
        array.epoch_ids()
    );
    let snap = array.occupancy();
    for &epoch in &array.epoch_ids() {
        println!(
            "  epoch {epoch}: bound {:>4}, holds {:>4} names",
            array.epoch_contention(epoch).unwrap(),
            snap.epoch_occupied(epoch)
        );
    }
    assert_eq!(snap.total_occupied(), total);

    // Phase 2: free everything.  Draining the last name of an old epoch
    // triggers its retirement automatically (collect snapshot proves
    // quiescence), so the chain shrinks back to just the newest epoch.
    let epochs_before = array.num_epochs();
    for names in held {
        for name in names {
            array.free(name);
        }
    }
    array.try_retire();
    println!(
        "drained and retired: {} live epochs before, {} after \
         ({} retired over the array's lifetime)",
        epochs_before,
        array.num_epochs(),
        array.epochs_retired()
    );
    assert_eq!(array.num_epochs(), 1);
    assert!(array.collect().is_empty());
    assert_eq!(
        array.pending_reclamation(),
        0,
        "quiescent: every displaced chain snapshot was reclaimed"
    );
    println!(
        "done: uniqueness, routing, retirement and reclamation held across every growth event"
    );
}
