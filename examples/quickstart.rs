//! Quickstart: the LevelArray as a drop-in thread registry.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A pool of worker threads repeatedly registers with and deregisters from a
//! shared LevelArray while a monitor thread periodically collects the set of
//! registered workers — the long-lived renaming / dynamic collect pattern the
//! paper is about.  At the end the example prints the probe statistics the
//! paper's evaluation reports (average, standard deviation, worst case).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use levelarray_suite::core::{ActivityArray, GetStats, LevelArray, Registration};
use levelarray_suite::rng::{default_rng, SeedSequence};

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(2, 8);
    // Provision the array for twice the number of workers: n is an upper
    // bound on contention, not an exact count.
    let array = Arc::new(LevelArray::new(workers * 2));
    let stop = Arc::new(AtomicBool::new(false));
    let mut seeds = SeedSequence::new(0xC0FFEE);

    println!(
        "LevelArray quickstart: {workers} workers, array capacity {} ({} main + {} backup slots)",
        array.capacity(),
        array.main_len(),
        array.backup_len()
    );

    let mut handles = Vec::new();
    for worker in 0..workers {
        let array = Arc::clone(&array);
        let stop = Arc::clone(&stop);
        let seed = seeds.next_seed();
        handles.push(std::thread::spawn(move || {
            let mut rng = default_rng(seed);
            let mut stats = GetStats::new();
            while !stop.load(Ordering::Relaxed) {
                // Register, pretend to do some protected work, deregister.
                let registration = Registration::acquire(array.as_ref(), &mut rng);
                stats.record(registration.acquired());
                std::hint::black_box(registration.name());
                drop(registration);
            }
            (worker, stats)
        }));
    }

    // Monitor: scan the registered set a few times while the workers churn.
    for round in 1..=5 {
        std::thread::sleep(Duration::from_millis(100));
        let registered = array.collect();
        println!(
            "collect #{round}: {} worker(s) registered at this instant: {:?}",
            registered.len(),
            registered
        );
    }
    stop.store(true, Ordering::Relaxed);

    let mut merged = GetStats::new();
    for handle in handles {
        let (worker, stats) = handle.join().expect("worker panicked");
        println!(
            "worker {worker}: {} registrations, mean {:.3} probes, worst {}",
            stats.operations(),
            stats.mean_probes(),
            stats.max_probes()
        );
        merged.merge(&stats);
    }

    let summary = merged.summary();
    println!();
    println!("== aggregate over {} registrations ==", summary.operations);
    println!(
        "average probes : {:.3}  (paper: ~1.75 at 50% pre-fill)",
        summary.mean_probes
    );
    println!("std deviation  : {:.3}", summary.stddev_probes);
    println!(
        "worst case     : {}      (paper: <= 6 over ~10^9 operations)",
        summary.max_probes
    );
    println!(
        "backup used    : {:.4}% of operations",
        summary.backup_fraction * 100.0
    );
}
