//! An STM-style reader registry (read indicator).
//!
//! Software transactional memories and pessimistic lock-elision schemes
//! (references [3, 16] in the paper) need writers to detect concurrent
//! readers: every reader registers for the duration of its read-side section,
//! and a writer that wants to expose an update waits until every reader that
//! might have seen the old state has left.  Registration is on the read-side
//! fast path, so its cost — the activity array's `Get`/`Free` — dominates the
//! scheme's overhead.

use std::collections::HashSet;
use std::sync::Arc;

use larng::RandomSource;
use levelarray::{ActivityArray, Name};

/// A registry of in-flight readers backed by an activity array.
///
/// See the crate-level example for the read side; the write side is
/// [`ReaderRegistry::wait_for_readers`].
///
/// Names are only compared for identity (never used as dense indices), so
/// any activity array works — including an elastic one, which lets the
/// reader population outgrow its initial sizing without re-deploying the
/// registry.
#[derive(Debug)]
pub struct ReaderRegistry {
    registry: Arc<dyn ActivityArray>,
}

impl ReaderRegistry {
    /// Creates a registry backed by `registry`.
    pub fn new(registry: Arc<dyn ActivityArray>) -> Self {
        ReaderRegistry { registry }
    }

    /// Registers the calling reader for the duration of the returned guard.
    ///
    /// # Panics
    ///
    /// Panics if more readers are simultaneously registered than the
    /// underlying array's contention bound.
    pub fn enter(&self, rng: &mut dyn RandomSource) -> ReadGuard<'_> {
        let acquired = self.registry.get(rng);
        ReadGuard {
            registry: self,
            name: acquired.name(),
            probes: acquired.probes(),
        }
    }

    /// The number of currently registered readers (a racy census).
    pub fn active_readers(&self) -> usize {
        self.registry.collect().len()
    }

    /// Whether no reader is currently registered.
    pub fn is_quiescent(&self) -> bool {
        self.registry.collect().is_empty()
    }

    /// Writer-side grace period: blocks until every reader that was registered
    /// when this call started has deregistered at least once.
    ///
    /// Readers that register *after* the call starts do not delay it (they can
    /// only observe the writer's new state), and a reader slot that is freed
    /// and immediately re-acquired merely delays the wait — it never lets the
    /// writer proceed early.
    ///
    /// **Ordering note**: as with every read-indicator scheme, the *caller's
    /// protocol* needs store→load ordering between publishing its update and
    /// scanning for readers (and readers need it between registering and
    /// reading the protected data).  Issue a
    /// [`std::sync::atomic::fence`]`(SeqCst)` on both sides, as the STM papers
    /// the LevelArray cites do; this method only provides the scan.
    pub fn wait_for_readers(&self) {
        let mut waiting_on: HashSet<Name> = self.registry.collect().into_iter().collect();
        while !waiting_on.is_empty() {
            let current: HashSet<Name> = self.registry.collect().into_iter().collect();
            waiting_on.retain(|name| current.contains(name));
            if waiting_on.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
    }

    /// The underlying activity array.
    pub fn registry(&self) -> &dyn ActivityArray {
        self.registry.as_ref()
    }
}

/// An RAII read-side registration.
#[derive(Debug)]
pub struct ReadGuard<'a> {
    registry: &'a ReaderRegistry,
    name: Name,
    probes: u32,
}

impl ReadGuard<'_> {
    /// The slot this reader occupies.
    pub fn name(&self) -> Name {
        self.name
    }

    /// How many probes the registration took.
    pub fn probes(&self) -> u32 {
        self.probes
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        self.registry.registry.free(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use levelarray::LevelArray;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    fn registry(n: usize) -> ReaderRegistry {
        ReaderRegistry::new(Arc::new(LevelArray::new(n)))
    }

    #[test]
    fn enter_and_exit_update_the_census() {
        let r = registry(4);
        let mut rng = default_rng(1);
        assert!(r.is_quiescent());
        let a = r.enter(&mut rng);
        let b = r.enter(&mut rng);
        assert_eq!(r.active_readers(), 2);
        assert!(a.probes() >= 1);
        assert_ne!(a.name(), b.name());
        drop(a);
        assert_eq!(r.active_readers(), 1);
        drop(b);
        assert!(r.is_quiescent());
    }

    #[test]
    fn wait_for_readers_returns_immediately_when_quiescent() {
        let r = registry(4);
        r.wait_for_readers();
        assert!(r.is_quiescent());
    }

    #[test]
    fn wait_for_readers_blocks_until_existing_readers_leave() {
        let r = Arc::new(registry(4));
        let writer_done = Arc::new(AtomicBool::new(false));
        let mut rng = default_rng(2);
        let guard = r.enter(&mut rng);

        std::thread::scope(|scope| {
            {
                let r = Arc::clone(&r);
                let writer_done = Arc::clone(&writer_done);
                scope.spawn(move || {
                    r.wait_for_readers();
                    writer_done.store(true, Ordering::SeqCst);
                });
            }
            // Give the writer a chance to (incorrectly) finish early.
            for _ in 0..100 {
                std::thread::yield_now();
            }
            assert!(
                !writer_done.load(Ordering::SeqCst),
                "writer finished while a pre-existing reader was registered"
            );
            drop(guard);
        });
        assert!(writer_done.load(Ordering::SeqCst));
    }

    #[test]
    fn elastic_registry_admits_readers_beyond_the_initial_bound() {
        use levelarray::{ElasticLevelArray, GrowthPolicy};

        let backing = Arc::new(ElasticLevelArray::new(
            2,
            GrowthPolicy::Doubling { max_epochs: 4 },
        ));
        let r = ReaderRegistry::new(Arc::clone(&backing) as Arc<dyn ActivityArray>);
        let mut rng = default_rng(5);
        // Register 10 readers at once against an initial bound of 2.
        let guards: Vec<_> = (0..10).map(|_| r.enter(&mut rng)).collect();
        assert_eq!(r.active_readers(), 10);
        assert!(backing.num_epochs() >= 2, "the registry must have grown");
        assert!(guards.iter().any(|g| g.name().epoch() > 0));
        // The writer-side grace period tracks epoch-tagged names correctly.
        drop(guards);
        r.wait_for_readers();
        assert!(r.is_quiescent());
        backing.try_retire();
        assert_eq!(backing.num_epochs(), 1);
    }

    #[test]
    fn readers_see_consistent_snapshots_of_a_writer_protocol() {
        // A miniature STM-style protocol: the writer updates two cells and
        // uses the registry as its grace period; readers register, read both
        // cells, and must never observe a torn pair older/newer than allowed.
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let r = Arc::new(registry(threads + 1));
        let cell_a = Arc::new(AtomicU64::new(0));
        let cell_b = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|scope| {
            // Readers.
            for t in 0..threads {
                let r = Arc::clone(&r);
                let cell_a = Arc::clone(&cell_a);
                let cell_b = Arc::clone(&cell_b);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let mut rng = default_rng(20 + t as u64);
                    while !stop.load(Ordering::Relaxed) {
                        let _guard = r.enter(&mut rng);
                        // Make the registration visible before reading the
                        // protected cells (see wait_for_readers docs).
                        std::sync::atomic::fence(Ordering::SeqCst);
                        let a = cell_a.load(Ordering::Acquire);
                        let b = cell_b.load(Ordering::Acquire);
                        // The writer updates A, waits for readers, then B; so a
                        // reader may see A ahead of B by at most one version,
                        // and B must never be ahead of A.
                        assert!(a == b || a == b + 1, "torn read: a={a} b={b}");
                    }
                });
            }
            // Writer.
            {
                let r = Arc::clone(&r);
                let cell_a = Arc::clone(&cell_a);
                let cell_b = Arc::clone(&cell_b);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    for version in 1..=200u64 {
                        cell_a.store(version, Ordering::Release);
                        // Publish the store before scanning for readers.
                        std::sync::atomic::fence(Ordering::SeqCst);
                        r.wait_for_readers();
                        cell_b.store(version, Ordering::Release);
                    }
                    stop.store(true, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(cell_a.load(Ordering::Relaxed), 200);
        assert_eq!(cell_b.load(Ordering::Relaxed), 200);
        assert!(r.is_quiescent());
    }
}
