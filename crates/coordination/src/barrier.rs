//! A phase barrier with a dynamic participant set.
//!
//! Classic barriers fix the number of participants up front; the barriers the
//! paper has in mind (reference \[22\]) let threads join and leave between
//! phases.  The activity array provides exactly the two pieces such a barrier
//! needs: fast join/leave (Get/Free) and an enumeration of the current
//! participants (Collect) for the arrival check.
//!
//! # Protocol
//!
//! The barrier keeps a global phase counter and, per slot, the latest phase
//! that slot's member has arrived at.  [`BarrierMember::wait`] announces
//! arrival at the next phase and then repeatedly checks — by `Collect`ing the
//! registered members — whether everyone currently registered has also
//! arrived; the first waiter to observe that advances the phase, releasing
//! everyone.  A member that leaves stops being counted the next time waiters
//! collect, so departures never wedge the barrier.
//!
//! Members must either call `wait` or leave; a registered member that does
//! neither blocks the phase (that is what "participant" means).  Joining
//! concurrently with a phase boundary is allowed but the new member is only
//! guaranteed to be waited on from the next phase onward.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use larng::RandomSource;
use levelarray::{ActivityArray, Name};

/// A barrier whose participant set is managed by an activity array.
///
/// # Examples
///
/// ```
/// use la_coordination::DynamicBarrier;
/// use levelarray::LevelArray;
/// use larng::default_rng;
/// use std::sync::Arc;
///
/// let barrier = Arc::new(DynamicBarrier::new(Arc::new(LevelArray::new(4))));
/// let mut rng = default_rng(1);
/// let member = barrier.join(&mut rng);
/// // With a single participant every wait completes immediately.
/// member.wait();
/// member.wait();
/// assert_eq!(barrier.phase(), 2);
/// ```
#[derive(Debug)]
pub struct DynamicBarrier {
    registry: Arc<dyn ActivityArray>,
    /// `arrived[name] = p` means the member occupying `name` has announced
    /// arrival at phase boundary `p`.
    arrived: Box<[AtomicU64]>,
    phase: AtomicU64,
}

impl DynamicBarrier {
    /// Creates a barrier whose membership is tracked by `registry`.
    pub fn new(registry: Arc<dyn ActivityArray>) -> Self {
        let arrived = (0..registry.capacity())
            .map(|_| AtomicU64::new(0))
            .collect();
        DynamicBarrier {
            registry,
            arrived,
            phase: AtomicU64::new(0),
        }
    }

    /// The number of completed phases.
    pub fn phase(&self) -> u64 {
        self.phase.load(Ordering::Acquire)
    }

    /// The current number of registered members (a racy census).
    pub fn members(&self) -> usize {
        self.registry.collect().len()
    }

    /// Registers the calling thread as a participant.
    ///
    /// # Panics
    ///
    /// Panics if more members join simultaneously than the registry's
    /// contention bound.
    pub fn join(self: &Arc<Self>, rng: &mut dyn RandomSource) -> BarrierMember {
        let acquired = self.registry.get(rng);
        let name = acquired.name();
        // The arrival table is dense over Name::index(), so the registry must
        // be fixed-size: an elastic registry's later epochs alias earlier
        // indices (and outgrow the table).
        assert_eq!(
            name.epoch(),
            0,
            "the dynamic barrier needs a fixed-size (single-epoch) registry; \
             got the epoch-tagged name {name}"
        );
        // A fresh member has arrived at (i.e. is not owed) the current phase.
        self.arrived[name.index()].store(self.phase(), Ordering::Release);
        BarrierMember {
            barrier: Arc::clone(self),
            name,
        }
    }
}

/// A registered barrier participant; leaving (dropping) removes it from the
/// set of threads the barrier waits for.
#[derive(Debug)]
pub struct BarrierMember {
    barrier: Arc<DynamicBarrier>,
    name: Name,
}

impl BarrierMember {
    /// The slot this member occupies in the registry.
    pub fn name(&self) -> Name {
        self.name
    }

    /// Arrives at the next phase boundary and blocks until every currently
    /// registered member has also arrived (or left).
    pub fn wait(&self) {
        let barrier = &*self.barrier;
        let target = barrier.phase.load(Ordering::Acquire) + 1;
        barrier.arrived[self.name.index()].store(target, Ordering::Release);

        loop {
            // Phase already advanced (possibly by us in a previous iteration).
            if barrier.phase.load(Ordering::Acquire) >= target {
                return;
            }
            // Has every registered member announced arrival at `target`?
            let all_arrived = barrier
                .registry
                .collect()
                .into_iter()
                .all(|name| barrier.arrived[name.index()].load(Ordering::Acquire) >= target);
            if all_arrived {
                // One winner advances the phase; losers observe the new value.
                let _ = barrier.phase.compare_exchange(
                    target - 1,
                    target,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                );
                return;
            }
            std::thread::yield_now();
        }
    }
}

impl Drop for BarrierMember {
    fn drop(&mut self) {
        self.barrier.registry.free(self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use levelarray::LevelArray;
    use std::sync::atomic::AtomicUsize;

    fn barrier(n: usize) -> Arc<DynamicBarrier> {
        Arc::new(DynamicBarrier::new(Arc::new(LevelArray::new(n))))
    }

    #[test]
    fn single_member_never_blocks() {
        let b = barrier(2);
        let mut rng = default_rng(1);
        let member = b.join(&mut rng);
        for expected in 1..=5 {
            member.wait();
            assert_eq!(b.phase(), expected);
        }
    }

    #[test]
    fn members_join_and_leave() {
        let b = barrier(4);
        let mut rng = default_rng(2);
        assert_eq!(b.members(), 0);
        let a = b.join(&mut rng);
        let c = b.join(&mut rng);
        assert_eq!(b.members(), 2);
        assert_ne!(a.name(), c.name());
        drop(a);
        assert_eq!(b.members(), 1);
        // The remaining member can still complete phases alone.
        c.wait();
        assert_eq!(b.phase(), 1);
    }

    #[test]
    fn phases_synchronize_all_members() {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let phases = 50u64;
        let b = barrier(threads);
        // Shared counter incremented once per thread per phase; at every
        // barrier crossing its value must cover every member's contribution.
        let counter = Arc::new(AtomicUsize::new(0));

        // Establish the membership up front (a member joined mid-run is only
        // synchronized from the next phase onward, which would weaken the
        // assertion below).
        let mut rng = default_rng(10);
        let members: Vec<BarrierMember> = (0..threads).map(|_| b.join(&mut rng)).collect();

        std::thread::scope(|scope| {
            for member in members {
                let counter = Arc::clone(&counter);
                scope.spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        member.wait();
                        let observed = counter.load(Ordering::SeqCst);
                        assert!(
                            observed as u64 >= (phase + 1) * threads as u64,
                            "phase {phase}: counter {observed} too small"
                        );
                    }
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::SeqCst) as u64,
            phases * threads as u64
        );
        assert_eq!(b.phase(), phases);
        assert_eq!(b.members(), 0);
    }

    #[test]
    fn departing_members_do_not_wedge_the_barrier() {
        let b = barrier(4);
        let stop_phase = 10u64;
        let mut rng = default_rng(1);
        // Establish both memberships before the phase traffic starts.
        let short_lived = b.join(&mut rng);
        let long_lived = b.join(&mut rng);
        std::thread::scope(|scope| {
            // A short-lived member that leaves after 3 phases.
            scope.spawn(move || {
                for _ in 0..3 {
                    short_lived.wait();
                }
                // drop: leaves the barrier
            });
            // A long-lived member that runs to the end.
            scope.spawn(move || {
                for _ in 0..stop_phase {
                    long_lived.wait();
                }
            });
        });
        assert!(b.phase() >= stop_phase);
    }
}
