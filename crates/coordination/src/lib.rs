//! # la-coordination — barriers and reader registries over an activity array
//!
//! Two more of the coordination patterns the LevelArray paper lists as users
//! of fast registration (§1):
//!
//! * [`DynamicBarrier`] — a phase barrier whose participant set changes at
//!   run time: threads join (register) and leave (deregister) between phases,
//!   and each phase completes when every *currently registered* participant
//!   has arrived.  The arrival check enumerates participants with `Collect`.
//! * [`ReaderRegistry`] — an STM-style read indicator: readers register while
//!   they are inside a read-side critical section; a writer that wants to make
//!   its update visible waits until a `Collect` shows that every reader that
//!   was present when it started has left (the conflict-detection pattern of
//!   the paper's STM references [3, 16]).
//!
//! ```
//! use la_coordination::ReaderRegistry;
//! use levelarray::LevelArray;
//! use larng::default_rng;
//! use std::sync::Arc;
//!
//! let registry = ReaderRegistry::new(Arc::new(LevelArray::new(8)));
//! let mut rng = default_rng(1);
//! {
//!     let _read = registry.enter(&mut rng);
//!     assert_eq!(registry.active_readers(), 1);
//! }
//! assert!(registry.is_quiescent());
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod barrier;
pub mod readers;

pub use barrier::{BarrierMember, DynamicBarrier};
pub use readers::{ReadGuard, ReaderRegistry};
