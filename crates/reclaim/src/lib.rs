//! # la-reclaim — activity-array-driven memory reclamation
//!
//! The LevelArray paper's flagship motivating application (§1) is memory
//! management for lock-free data structures: worker threads must *register*
//! before operating on the structure and *deregister* afterwards, while a
//! reclaimer periodically *collects* the set of registered operations to
//! decide which retired nodes can safely be freed (Dragojević et al.'s
//! *dynamic collect* formulation, \[17\] in the paper).  Registration is on the
//! hot path of every operation, which is why the activity array's `Get`/`Free`
//! cost matters so much.
//!
//! This crate provides:
//!
//! * [`ReclaimDomain`] — a reclamation domain built on any
//!   [`levelarray::ActivityArray`]: pin/unpin (register/deregister), retire,
//!   and collect-based grace-period detection.
//! * [`TreiberStack`] — a classic lock-free stack whose nodes are reclaimed
//!   through a domain, exercising the registration path exactly the way the
//!   paper describes.
//!
//! ```
//! use la_reclaim::{ReclaimDomain, TreiberStack};
//! use levelarray::LevelArray;
//! use larng::default_rng;
//! use std::sync::Arc;
//!
//! let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(8))));
//! let stack = TreiberStack::new(Arc::clone(&domain));
//! let mut rng = default_rng(1);
//!
//! stack.push(1, &mut rng);
//! stack.push(2, &mut rng);
//! assert_eq!(stack.pop(&mut rng), Some(2));
//! assert_eq!(stack.pop(&mut rng), Some(1));
//! assert_eq!(stack.pop(&mut rng), None);
//!
//! // Once nothing is pinned, a reclamation pass frees every retired node.
//! let freed = domain.try_reclaim();
//! assert_eq!(freed, 2);
//! assert_eq!(domain.stats().in_limbo, 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
// Every `unsafe` block and impl in this crate must carry a `// SAFETY:`
// comment tying it to the grace-period argument in the module docs.
#![deny(clippy::undocumented_unsafe_blocks)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod domain;
pub mod stack;

pub use domain::{BatchGuard, DomainStats, OperationGuard, ReclaimDomain};
pub use stack::TreiberStack;
