//! The reclamation domain: registration, retirement, and collect-based grace
//! periods.
//!
//! # Protocol
//!
//! * A thread **pins** the domain before touching a protected structure:
//!   [`ReclaimDomain::pin`] performs a `Get` on the activity array and returns
//!   an RAII [`OperationGuard`]; dropping the guard performs the `Free`.
//! * When a thread unlinks a node it calls [`ReclaimDomain::retire`] — the
//!   node goes into the *open limbo bag* together with nothing else; it cannot
//!   be freed yet because other pinned operations may still hold references.
//! * [`ReclaimDomain::try_reclaim`] closes the open bag by taking a `Collect`
//!   snapshot of the names registered at that moment; a closed bag may be
//!   freed once **every name in its snapshot has been observed absent** in
//!   some later `Collect`.  A name's absence proves the operation that held it
//!   at close time has completed (it held the name continuously until its
//!   `Free`), so no operation that could have seen the retired nodes is still
//!   running.  Re-acquisition of the same name by a *new* operation merely
//!   delays reclamation; it never makes it unsafe.
//!
//! This is the "dynamic collect" reclamation scheme of the paper's reference
//! \[17\], expressed over the activity-array API.
//!
//! The protocol compares names only for identity (membership in a snapshot),
//! never as dense indices, so it works unchanged over *elastic* registries:
//! a name from a grown epoch is simply a different [`Name`] value, and the
//! absence proof is exactly the quiescence argument
//! [`levelarray::ElasticLevelArray`] itself uses to retire drained epochs.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use la_fault::fail_point;
use la_sync::atomic::{AtomicU64, Ordering};

use larng::RandomSource;
use levelarray::{ActivityArray, Name};

/// A unit of deferred destruction: a type-erased owned allocation.
struct Retired {
    ptr: *mut (),
    drop_fn: unsafe fn(*mut ()),
}

// SAFETY: a `Retired` is an owned allocation that is only ever dropped by the
// reclaimer while no other thread can reach it (that is the whole point of the
// grace-period protocol); moving the pointer between threads is sound.
unsafe impl Send for Retired {}

impl std::fmt::Debug for Retired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Retired({:p})", self.ptr)
    }
}

impl Retired {
    fn new<T: Send + 'static>(boxed: Box<T>) -> Self {
        unsafe fn drop_box<T>(ptr: *mut ()) {
            // SAFETY: constructed from Box::into_raw::<T> below and dropped
            // exactly once by the reclaimer.
            drop(unsafe { Box::from_raw(ptr as *mut T) });
        }
        Retired {
            ptr: Box::into_raw(boxed) as *mut (),
            drop_fn: drop_box::<T>,
        }
    }

    fn reclaim(self) {
        // SAFETY: see `Retired::new`; `self` is consumed so this runs once.
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

/// A bag of retired nodes closed against a `Collect` snapshot.
#[derive(Debug)]
struct ClosedBag {
    nodes: Vec<Retired>,
    /// Names that were registered when the bag was closed and have not yet
    /// been observed absent.
    waiting_on: HashSet<Name>,
}

#[derive(Debug, Default)]
struct LimboState {
    open: Vec<Retired>,
    closed: Vec<ClosedBag>,
    /// Reusable `Collect` buffer: the steady-state reclamation pass scans the
    /// registry through [`ActivityArray::collect_into`], so it stops paying a
    /// fresh `Vec` allocation per grace-period scan.
    scan: Vec<Name>,
}

/// Counters describing the state of a domain (for tests, benchmarks, and
/// operational visibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomainStats {
    /// Nodes retired over the domain's lifetime.
    pub retired: u64,
    /// Nodes actually freed so far.
    pub freed: u64,
    /// Nodes currently awaiting a grace period (open + closed bags).
    pub in_limbo: u64,
    /// Completed reclamation passes.
    pub reclaim_passes: u64,
    /// Currently pinned operations (an instantaneous census).
    pub pinned_now: usize,
}

/// A reclamation domain built over an activity array.
///
/// See the [module documentation](self) for the protocol.
#[derive(Debug)]
pub struct ReclaimDomain {
    registry: Arc<dyn ActivityArray>,
    limbo: Mutex<LimboState>,
    retired: AtomicU64,
    freed: AtomicU64,
    passes: AtomicU64,
}

impl ReclaimDomain {
    /// Creates a domain whose registration is served by `registry`.
    pub fn new(registry: Arc<dyn ActivityArray>) -> Self {
        ReclaimDomain {
            registry,
            limbo: Mutex::new(LimboState::default()),
            retired: AtomicU64::new(0),
            freed: AtomicU64::new(0),
            passes: AtomicU64::new(0),
        }
    }

    /// The activity array used for registration.
    pub fn registry(&self) -> &dyn ActivityArray {
        self.registry.as_ref()
    }

    /// Registers the calling operation and returns a guard that deregisters on
    /// drop.  The guard must be held across every access to memory protected
    /// by this domain.
    ///
    /// # Panics
    ///
    /// Panics if the activity array is exhausted, i.e. more operations are
    /// simultaneously pinned than the contention bound it was built for.
    pub fn pin(&self, rng: &mut dyn RandomSource) -> OperationGuard<'_> {
        let acquired = self.registry.get(rng);
        OperationGuard {
            domain: self,
            name: acquired.name(),
            probes: acquired.probes(),
        }
    }

    /// Registers `k` operations in ONE batched `Get`
    /// ([`ActivityArray::get_many`]) and returns a guard that deregisters
    /// them all through the bulk `Free` ([`ActivityArray::free_many`]) on
    /// drop.  The batched seam matters here: a reclamation-heavy workload
    /// pins in bursts (one pin per hazard-era operation), and the bulk
    /// kernels collapse those bursts into a handful of word-level RMWs.
    ///
    /// # Panics
    ///
    /// Panics if the activity array saturates before all `k` registrations
    /// are served — same contract as [`ReclaimDomain::pin`].
    pub fn pin_many(&self, rng: &mut dyn RandomSource, k: usize) -> BatchGuard<'_> {
        let mut out = Vec::with_capacity(k);
        let won = self.registry.get_many(rng, k, &mut out);
        assert_eq!(
            won, k,
            "the registry saturated: only {won} of {k} operations could pin"
        );
        BatchGuard {
            domain: self,
            names: out.into_iter().map(|got| got.name()).collect(),
        }
    }

    /// Hands an unlinked allocation to the domain for deferred destruction.
    ///
    /// The caller must guarantee the node is unreachable for *new* operations
    /// (it has been unlinked from the shared structure); operations that were
    /// already pinned may still read it, which is exactly what the grace
    /// period protects.
    pub fn retire<T: Send + 'static>(&self, boxed: Box<T>) {
        // Type-erase *before* the fault site: `Retired` has no Drop impl, so
        // a panic past this point leaks the allocation (safe — readers may
        // still hold references) instead of unwinding through `Box`'s drop
        // and freeing it under their feet.
        let node = Retired::new(boxed);
        fail_point!("reclaim::retire");
        self.retired.fetch_add(1, Ordering::Relaxed);
        let mut limbo = self.lock_limbo();
        limbo.open.push(node);
    }

    /// Runs one reclamation pass and returns the number of nodes freed.
    ///
    /// A pass (1) closes the open bag against a fresh `Collect` snapshot,
    /// (2) prunes every closed bag's waiting set by removing names absent from
    /// the snapshot, and (3) frees the bags whose waiting sets have emptied.
    pub fn try_reclaim(&self) -> u64 {
        // Early-return variant: a "died before the pass" fault simply skips
        // this pass — reclamation is optional progress, never correctness.
        fail_point!("reclaim::reclaim", 0);
        let mut limbo = self.lock_limbo();
        limbo.scan.clear();
        self.registry.collect_into(&mut limbo.scan);
        let snapshot: HashSet<Name> = limbo.scan.iter().copied().collect();

        // (1) Close the open bag, if it has anything in it.
        if !limbo.open.is_empty() {
            let nodes = std::mem::take(&mut limbo.open);
            limbo.closed.push(ClosedBag {
                nodes,
                waiting_on: snapshot.clone(),
            });
        }

        // (2) + (3) Prune waiting sets and free ripe bags.
        let mut freed = 0u64;
        let mut still_closed = Vec::with_capacity(limbo.closed.len());
        for mut bag in limbo.closed.drain(..) {
            bag.waiting_on.retain(|name| snapshot.contains(name));
            if bag.waiting_on.is_empty() {
                freed += bag.nodes.len() as u64;
                for node in bag.nodes {
                    node.reclaim();
                }
            } else {
                still_closed.push(bag);
            }
        }
        limbo.closed = still_closed;

        self.freed.fetch_add(freed, Ordering::Relaxed);
        self.passes.fetch_add(1, Ordering::Relaxed);
        freed
    }

    /// The limbo lock, tolerant of poisoning: the state it guards is plain
    /// data that every mutation leaves consistent, so a panic while holding
    /// it (fault injection included) carries no information — later passes
    /// proceed instead of cascading the panic through every caller.
    fn lock_limbo(&self) -> MutexGuard<'_, LimboState> {
        self.limbo.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current counters.
    pub fn stats(&self) -> DomainStats {
        let limbo = self.lock_limbo();
        let in_limbo = limbo.open.len() as u64
            + limbo
                .closed
                .iter()
                .map(|b| b.nodes.len() as u64)
                .sum::<u64>();
        DomainStats {
            retired: self.retired.load(Ordering::Relaxed),
            freed: self.freed.load(Ordering::Relaxed),
            in_limbo,
            reclaim_passes: self.passes.load(Ordering::Relaxed),
            pinned_now: self.registry.collect().len(),
        }
    }
}

impl Drop for ReclaimDomain {
    fn drop(&mut self) {
        // The domain owns every allocation still in limbo; free them now.
        // (No operation can still be pinned: guards borrow the domain.)
        let limbo = self.limbo.get_mut().unwrap_or_else(PoisonError::into_inner);
        for node in limbo.open.drain(..) {
            node.reclaim();
        }
        for bag in limbo.closed.drain(..) {
            for node in bag.nodes {
                node.reclaim();
            }
        }
    }
}

/// An RAII pinned operation: holds a registration in the domain's activity
/// array and releases it on drop.
#[derive(Debug)]
pub struct OperationGuard<'a> {
    domain: &'a ReclaimDomain,
    name: Name,
    probes: u32,
}

impl OperationGuard<'_> {
    /// The name (slot) this operation occupies in the registry.
    pub fn name(&self) -> Name {
        self.name
    }

    /// How many probes the registration took (the quantity the paper measures).
    pub fn probes(&self) -> u32 {
        self.probes
    }
}

impl Drop for OperationGuard<'_> {
    fn drop(&mut self) {
        self.domain.registry.free(self.name);
    }
}

/// An RAII *batch* of pinned operations (see [`ReclaimDomain::pin_many`]):
/// holds `k` registrations in the domain's activity array and releases them
/// all through the bulk `Free` kernel on drop.
#[derive(Debug)]
pub struct BatchGuard<'a> {
    domain: &'a ReclaimDomain,
    names: Vec<Name>,
}

impl BatchGuard<'_> {
    /// The names (slots) this batch occupies in the registry.
    pub fn names(&self) -> &[Name] {
        &self.names
    }

    /// How many operations the batch pinned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the batch is empty (`pin_many` with `k == 0`).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        self.domain.registry.free_many(&self.names);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use levelarray::LevelArray;
    use std::sync::atomic::AtomicUsize;

    fn domain(n: usize) -> ReclaimDomain {
        ReclaimDomain::new(Arc::new(LevelArray::new(n)))
    }

    /// A payload that counts how many times it is dropped.
    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_registers_and_unpin_deregisters() {
        let d = domain(4);
        let mut rng = default_rng(1);
        assert_eq!(d.stats().pinned_now, 0);
        {
            let guard = d.pin(&mut rng);
            assert!(guard.probes() >= 1);
            assert_eq!(d.stats().pinned_now, 1);
            assert_eq!(d.registry().collect(), vec![guard.name()]);
        }
        assert_eq!(d.stats().pinned_now, 0);
    }

    #[test]
    fn retire_without_pins_frees_on_first_pass() {
        let d = domain(4);
        let drops = Arc::new(AtomicUsize::new(0));
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(d.stats().in_limbo, 2);
        assert_eq!(drops.load(Ordering::SeqCst), 0);

        let freed = d.try_reclaim();
        assert_eq!(freed, 2);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
        let stats = d.stats();
        assert_eq!(stats.retired, 2);
        assert_eq!(stats.freed, 2);
        assert_eq!(stats.in_limbo, 0);
        assert_eq!(stats.reclaim_passes, 1);
    }

    #[test]
    fn pinned_operation_defers_reclamation() {
        let d = domain(4);
        let mut rng = default_rng(2);
        let drops = Arc::new(AtomicUsize::new(0));

        let guard = d.pin(&mut rng);
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));

        // The pinned operation was registered when the bag is closed, so the
        // bag must not be freed while the guard is alive.
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(d.stats().in_limbo, 1);

        drop(guard);
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn batch_pinned_operations_defer_reclamation_until_the_batch_drops() {
        let d = domain(16);
        let mut rng = default_rng(7);
        let drops = Arc::new(AtomicUsize::new(0));

        let batch = d.pin_many(&mut rng, 10);
        assert_eq!(batch.len(), 10);
        assert!(!batch.is_empty());
        assert_eq!(d.stats().pinned_now, 10);
        let unique: HashSet<Name> = batch.names().iter().copied().collect();
        assert_eq!(unique.len(), 10, "batched pins must occupy distinct slots");

        // A bag closed under the batch waits for the WHOLE batch.
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(d.try_reclaim(), 0);
        assert_eq!(drops.load(Ordering::SeqCst), 0);

        // One drop releases every name through the bulk kernel.
        drop(batch);
        assert_eq!(d.stats().pinned_now, 0);
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn operations_pinned_after_closing_do_not_block_the_bag() {
        let d = domain(4);
        let mut rng = default_rng(3);
        let drops = Arc::new(AtomicUsize::new(0));

        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        // Close the bag while nothing is pinned...
        // (first pass closes AND frees, because the snapshot is empty)
        assert_eq!(d.try_reclaim(), 1);

        // ...whereas a bag closed under a pin waits only for that pin, not for
        // later ones.
        let early = d.pin(&mut rng);
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(d.try_reclaim(), 0); // closed against {early}
        let late = d.pin(&mut rng); // pinned after closing
        drop(early);
        assert_eq!(d.try_reclaim(), 1, "late pin must not block the old bag");
        drop(late);
        assert_eq!(drops.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn name_reuse_is_conservative_but_safe() {
        // If the name held at close time is re-acquired by a new operation
        // before the reclaimer looks again, the bag simply waits longer.
        let d = ReclaimDomain::new(Arc::new(LevelArray::new(1)));
        let mut rng = default_rng(4);
        let drops = Arc::new(AtomicUsize::new(0));

        let first = d.pin(&mut rng);
        let first_name = first.name();
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(d.try_reclaim(), 0); // waits on {first_name}
        drop(first);
        // A new operation may well get the same slot back (n = 1 makes it
        // likely but not certain); either way the pass stays safe.
        let second = d.pin(&mut rng);
        let freed = d.try_reclaim();
        if second.name() == first_name {
            assert_eq!(freed, 0, "conservative: cannot distinguish reuse");
        } else {
            assert_eq!(freed, 1);
        }
        drop(second);
        assert_eq!(d.try_reclaim() + freed, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_the_domain_frees_everything_left_in_limbo() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let d = domain(4);
            for _ in 0..5 {
                d.retire(Box::new(DropCounter(Arc::clone(&drops))));
            }
            // Close one bag under a pin so it stays in limbo.
            let mut rng = default_rng(5);
            let _guard = d.pin(&mut rng);
            let _ = d.try_reclaim();
            drop(_guard);
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            5,
            "Drop must free limbo nodes"
        );
    }

    #[test]
    fn elastic_registry_serves_pins_beyond_the_initial_bound() {
        use levelarray::{ElasticLevelArray, GrowthPolicy};

        // A domain whose registry starts at n = 2 but doubles on demand: the
        // contention bound is no longer a hard pin limit.
        let registry = Arc::new(ElasticLevelArray::new(
            2,
            GrowthPolicy::Doubling { max_epochs: 4 },
        ));
        let d = ReclaimDomain::new(Arc::clone(&registry) as Arc<dyn ActivityArray>);
        let mut rng = default_rng(6);
        let drops = Arc::new(AtomicUsize::new(0));

        // Pin 12 operations at once (initial capacity is only 6).
        let guards: Vec<_> = (0..12).map(|_| d.pin(&mut rng)).collect();
        assert!(registry.num_epochs() >= 2, "the registry must have grown");
        assert!(guards.iter().any(|g| g.name().epoch() > 0));
        assert_eq!(d.stats().pinned_now, 12);

        // A bag closed under these pins waits for them, epoch tags included.
        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
        assert_eq!(d.try_reclaim(), 0);
        drop(guards);
        assert_eq!(d.try_reclaim(), 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
        // With every pin released the registry drains and retires old epochs.
        registry.try_retire();
        assert_eq!(registry.num_epochs(), 1);
    }

    #[test]
    fn concurrent_pin_retire_reclaim_is_safe() {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let d = Arc::new(domain(threads * 2));
        let drops = Arc::new(AtomicUsize::new(0));
        let per_thread = 2_000usize;

        std::thread::scope(|scope| {
            for t in 0..threads {
                let d = Arc::clone(&d);
                let drops = Arc::clone(&drops);
                scope.spawn(move || {
                    let mut rng = default_rng(100 + t as u64);
                    for i in 0..per_thread {
                        let _guard = d.pin(&mut rng);
                        d.retire(Box::new(DropCounter(Arc::clone(&drops))));
                        if i % 64 == 0 {
                            d.try_reclaim();
                        }
                    }
                });
            }
        });
        // Quiescent now: a couple of passes flush everything.
        let _ = d.try_reclaim();
        let _ = d.try_reclaim();
        let stats = d.stats();
        assert_eq!(stats.retired, (threads * per_thread) as u64);
        assert_eq!(stats.freed, stats.retired, "{stats:?}");
        assert_eq!(stats.in_limbo, 0);
        assert_eq!(drops.load(Ordering::SeqCst), threads * per_thread);
    }
}
