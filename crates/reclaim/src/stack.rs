//! A Treiber stack whose nodes are reclaimed through a [`ReclaimDomain`].
//!
//! The stack is the textbook lock-free structure the paper's memory-management
//! motivation refers to: `pop` unlinks a node with a CAS while other threads
//! may still be dereferencing it, so the unlinked node cannot be freed until a
//! grace period has elapsed.  Every operation pins the domain (registering in
//! the activity array) for its duration — exactly the register/deregister
//! traffic whose cost the LevelArray minimizes.

use std::ptr;
use std::sync::Arc;

use la_sync::atomic::{AtomicPtr, Ordering};
use larng::RandomSource;

use crate::domain::ReclaimDomain;

struct Node<T> {
    value: Option<T>,
    next: *mut Node<T>,
}

// SAFETY: nodes are only shared between threads through the stack's atomic
// head pointer and are only dropped by the reclamation domain after a grace
// period; `T: Send` is required by the public API bounds.
unsafe impl<T: Send> Send for Node<T> {}
// SAFETY: shared access to a node is read-only while it is reachable (`next`
// is only written before the node is published by `push`'s CAS, `value` only
// taken after `pop`'s CAS grants exclusive logical ownership), so `&Node<T>`
// may cross threads whenever `T: Send`.
unsafe impl<T: Send> Sync for Node<T> {}

/// A lock-free LIFO stack with activity-array-based memory reclamation.
///
/// See the crate-level example for usage.
#[derive(Debug)]
pub struct TreiberStack<T> {
    head: AtomicPtr<Node<T>>,
    domain: Arc<ReclaimDomain>,
}

// SAFETY: the raw head pointer is only manipulated through atomic operations,
// and node lifetime is governed by the reclamation domain.
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: all shared-reference operations (`push`, `pop`, `is_empty`) are
// internally synchronized: the head is accessed atomically and unlinked nodes
// are handed to the domain, never freed while another thread can hold them.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T: Send + 'static> TreiberStack<T> {
    /// Creates an empty stack protected by `domain`.
    pub fn new(domain: Arc<ReclaimDomain>) -> Self {
        TreiberStack {
            head: AtomicPtr::new(ptr::null_mut()),
            domain,
        }
    }

    /// The reclamation domain protecting this stack.
    pub fn domain(&self) -> &ReclaimDomain {
        &self.domain
    }

    /// Pushes a value.  The operation pins the domain while it manipulates the
    /// shared head pointer.
    pub fn push(&self, value: T, rng: &mut dyn RandomSource) {
        let _guard = self.domain.pin(rng);
        let node = Box::into_raw(Box::new(Node {
            value: Some(value),
            next: ptr::null_mut(),
        }));
        loop {
            let head = self.head.load(Ordering::Acquire);
            // SAFETY: `node` is exclusively owned until the CAS below succeeds.
            unsafe { (*node).next = head };
            if self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pops the most recently pushed value, or `None` if the stack is empty.
    pub fn pop(&self, rng: &mut dyn RandomSource) -> Option<T> {
        let _guard = self.domain.pin(rng);
        loop {
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // SAFETY: `head` was read while pinned, so even if another thread
            // pops and retires it concurrently, the node cannot be freed until
            // our guard is dropped; reading `next` is therefore safe.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: the successful CAS gives this thread exclusive
                // *logical* ownership of the node: no other thread can pop it
                // again, and concurrent readers never touch `value`.  Taking
                // the value out through the raw pointer is exclusive to us.
                let value = unsafe { (*head).value.take() };
                // Defer the node's destruction until no pinned operation can
                // still hold a reference to it.
                // SAFETY: the node was allocated by `Box::new` in `push` and
                // is now unreachable from the shared head.
                self.domain.retire(unsafe { Box::from_raw(head) });
                return value;
            }
        }
    }

    /// Whether the stack is currently empty (a racy snapshot, like any such
    /// query on a lock-free structure).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Pops every element currently reachable, returning how many were
    /// removed.  Used by tests and by `Drop`.
    pub fn drain(&self, rng: &mut dyn RandomSource) -> usize {
        let mut count = 0;
        while self.pop(rng).is_some() {
            count += 1;
        }
        count
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the remaining nodes and free them directly.
        // (A plain load rather than `get_mut`: the model-checked atomic has
        // no exclusive-access view, and `&mut self` already proves there is
        // no concurrency to order against.)
        let mut current = self.head.load(Ordering::Relaxed);
        while !current.is_null() {
            // SAFETY: exclusive access during drop; each node is freed once.
            let boxed = unsafe { Box::from_raw(current) };
            current = boxed.next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use levelarray::{ActivityArray, LevelArray};
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    fn stack_for(n: usize) -> TreiberStack<usize> {
        TreiberStack::new(Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(n)))))
    }

    #[test]
    fn push_pop_lifo_order() {
        let stack = stack_for(4);
        let mut rng = default_rng(1);
        for i in 0..10 {
            stack.push(i, &mut rng);
        }
        for i in (0..10).rev() {
            assert_eq!(stack.pop(&mut rng), Some(i));
        }
        assert_eq!(stack.pop(&mut rng), None);
        assert!(stack.is_empty());
    }

    #[test]
    fn popped_nodes_are_reclaimed_after_quiescence() {
        let stack = stack_for(4);
        let mut rng = default_rng(2);
        for i in 0..100 {
            stack.push(i, &mut rng);
        }
        assert_eq!(stack.drain(&mut rng), 100);
        let freed = stack.domain().try_reclaim();
        assert_eq!(freed, 100);
        let stats = stack.domain().stats();
        assert_eq!(stats.retired, 100);
        assert_eq!(stats.freed, 100);
        assert_eq!(stats.in_limbo, 0);
    }

    #[test]
    fn registration_traffic_flows_through_the_activity_array() {
        let registry = Arc::new(LevelArray::new(8));
        let domain = Arc::new(ReclaimDomain::new(
            registry.clone() as Arc<dyn ActivityArray>
        ));
        let stack = TreiberStack::new(domain);
        let mut rng = default_rng(3);
        stack.push(1, &mut rng);
        let _ = stack.pop(&mut rng);
        // Between operations nothing stays registered.
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn drop_frees_remaining_nodes_without_leaks() {
        // Count drops of the payload to prove neither leak nor double free.
        struct Payload(Arc<AtomicUsize>);
        impl Drop for Payload {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(4))));
            let stack = TreiberStack::new(domain);
            let mut rng = default_rng(4);
            for _ in 0..10 {
                stack.push(Payload(Arc::clone(&drops)), &mut rng);
            }
            // Pop a few (their nodes go to limbo; values dropped immediately).
            for _ in 0..4 {
                drop(stack.pop(&mut rng));
            }
            assert_eq!(drops.load(Ordering::SeqCst), 4);
        }
        // Stack drop freed the 6 remaining values; domain drop freed the limbo
        // nodes (whose values were already taken).
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn concurrent_push_pop_preserves_every_element_exactly_once() {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let per_thread = if cfg!(miri) { 64usize } else { 5_000usize };
        let stack = Arc::new(stack_for(threads * 2));
        let popped: Arc<std::sync::Mutex<Vec<usize>>> = Arc::new(std::sync::Mutex::new(Vec::new()));

        std::thread::scope(|scope| {
            for t in 0..threads {
                let stack = Arc::clone(&stack);
                let popped = Arc::clone(&popped);
                scope.spawn(move || {
                    let mut rng = default_rng(10 + t as u64);
                    let mut local_popped = Vec::new();
                    for i in 0..per_thread {
                        stack.push(t * per_thread + i, &mut rng);
                        if i % 2 == 1 {
                            if let Some(v) = stack.pop(&mut rng) {
                                local_popped.push(v);
                            }
                        }
                        if i % 512 == 0 {
                            stack.domain().try_reclaim();
                        }
                    }
                    popped.lock().unwrap().extend(local_popped);
                });
            }
        });

        // Drain the remainder sequentially.
        let mut rng = default_rng(99);
        let mut all = popped.lock().unwrap().clone();
        while let Some(v) = stack.pop(&mut rng) {
            all.push(v);
        }
        assert_eq!(
            all.len(),
            threads * per_thread,
            "lost or duplicated elements"
        );
        let unique: HashSet<usize> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len(), "duplicated elements");

        // Everything retired is eventually freed once quiescent.
        let _ = stack.domain().try_reclaim();
        let _ = stack.domain().try_reclaim();
        let stats = stack.domain().stats();
        assert_eq!(stats.freed, stats.retired, "{stats:?}");
    }
}
