//! Interleaving verification of the grace-period protocol in
//! [`la_reclaim::ReclaimDomain`].
//!
//! Under `RUSTFLAGS="--cfg la_loom"` (see `make loom`) `la_sync::model`
//! enumerates every interleaving of the reclaimer against a pinned reader
//! within loom's preemption bound; in normal builds the same models run once
//! as smoke tests, so this file is deliberately *not* `#![cfg(la_loom)]`.
//!
//! The limbo bag itself sits behind a plain mutex, so the model keeps all
//! limbo-lock traffic on a **single** thread (the reclaimer) — loom does not
//! track `std::sync::Mutex`, and single-threaded lock use keeps that blind
//! spot inert.  What the model *does* race is the part the paper's argument
//! rests on: the registry's atomic slots, i.e. whether a `Collect` snapshot
//! taken by the reclaimer can ever miss a pin that was established before
//! the bag closed.
//!
//! Central invariant: **a node retired while an operation is pinned is never
//! freed before that operation unpins.**  The pinned reader checks the
//! drop flag mid-pin in every explored schedule.

use std::sync::Arc;

use la_reclaim::ReclaimDomain;
use la_sync::atomic::{AtomicUsize, Ordering};
use larng::default_rng;
use levelarray::LevelArray;

/// A payload whose drop is observable through a (model-tracked) atomic.
struct DropFlag(Arc<AtomicUsize>);

impl Drop for DropFlag {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn retired_node_outlives_every_pin_established_before_the_bag_closed() {
    la_sync::model(|| {
        let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(1))));
        let dropped = Arc::new(AtomicUsize::new(0));

        // Pin first, retire second — sequentially, before the reclaimer
        // exists.  Every snapshot the reclaimer can take therefore contains
        // this pin, and the bag it closes must wait for it.
        let mut rng = default_rng(7);
        let guard = domain.pin(&mut rng);
        domain.retire(Box::new(DropFlag(Arc::clone(&dropped))));

        let reclaimer = la_sync::thread::spawn({
            let domain = Arc::clone(&domain);
            move || {
                // Pass 1 closes the bag against a snapshot that includes the
                // pin; pass 2 races the unpin below — it may prune, but it
                // must not free while the name is still present.
                let _ = domain.try_reclaim();
                let _ = domain.try_reclaim();
            }
        });

        // The protected read: in every interleaving of the two passes with
        // this point, the node is still alive because we are still pinned.
        assert_eq!(
            dropped.load(Ordering::SeqCst),
            0,
            "retired node freed under an active pin"
        );
        drop(guard);
        reclaimer.join().expect("reclaimer thread panicked");

        // Quiescent: one more pass must flush the node exactly once.
        let _ = domain.try_reclaim();
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
        assert_eq!(domain.stats().in_limbo, 0);
    });
}

#[test]
fn pin_established_after_the_bag_closed_never_blocks_it() {
    la_sync::model(|| {
        let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(2))));
        let dropped = Arc::new(AtomicUsize::new(0));

        // Retire and close against an empty snapshot — sequentially.
        domain.retire(Box::new(DropFlag(Arc::clone(&dropped))));

        // A late pinner races the reclaimer's passes.  Whatever the
        // interleaving, the bag was closed against a snapshot that either
        // misses this pin (late pins never block old bags) or the pass ran
        // before the close (and the close-pass pair below still frees it).
        let pinner = la_sync::thread::spawn({
            let domain = Arc::clone(&domain);
            move || {
                let mut rng = default_rng(11);
                let guard = domain.pin(&mut rng);
                drop(guard);
            }
        });

        let _ = domain.try_reclaim();
        let _ = domain.try_reclaim();
        pinner.join().expect("pinner thread panicked");

        // The late pin is gone; the node must be reclaimable now.  (It may
        // already be free if the passes above never saw the pin.)
        let _ = domain.try_reclaim();
        assert_eq!(dropped.load(Ordering::SeqCst), 1);
    });
}
