//! The synchronization facade the lock-free core is written against.
//!
//! Every crate holding `unsafe` concurrent code in this workspace —
//! `levelarray::{epoch_chain, elastic, packed, probe_core, registry,
//! slot}`, `la_reclaim::{domain, stack}`, `la_flatcombine::engine` —
//! imports its atomics, `UnsafeCell` wrapper, and thread primitives from
//! here instead of `std`:
//!
//! * **normal builds** re-export `std::sync::atomic` / `std::thread`
//!   unchanged and [`cell::CausalCell`] compiles down to a plain
//!   `UnsafeCell` with `#[inline]` accessors — zero cost;
//! * **`RUSTFLAGS="--cfg la_loom"` builds** route everything through the
//!   vendored [`loom`] model checker, which exhaustively enumerates thread
//!   interleavings (and stale-read branches of non-SeqCst loads) under a
//!   preemption bound — see `crates/levelarray/tests/loom_chain.rs` and
//!   `make loom`.
//!
//! [`model`] is the entry point tests use: under `la_loom` it is loom's
//! exhaustive explorer; in normal builds it simply runs the closure once,
//! so the same model source doubles as a smoke test.

/// Atomic integers, pointers, fences and `Ordering`.
pub mod atomic {
    #[cfg(not(la_loom))]
    pub use std::sync::atomic::{
        compiler_fence, fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };

    #[cfg(la_loom)]
    pub use loom::sync::atomic::{
        compiler_fence, fence, AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
}

/// `UnsafeCell` with model-audited access (`with`/`with_mut`).
pub mod cell {
    #[cfg(la_loom)]
    pub use loom::cell::CausalCell;

    #[cfg(not(la_loom))]
    mod plain {
        use std::cell::UnsafeCell;

        /// Std-mode stand-in for loom's `CausalCell`: a transparent
        /// `UnsafeCell` whose `with`/`with_mut` hand out the raw pointer
        /// with no auditing (and no overhead).
        #[derive(Debug)]
        pub struct CausalCell<T> {
            data: UnsafeCell<T>,
        }

        impl<T> CausalCell<T> {
            pub const fn new(value: T) -> Self {
                CausalCell {
                    data: UnsafeCell::new(value),
                }
            }

            #[inline(always)]
            pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
                f(self.data.get())
            }

            #[inline(always)]
            pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
                f(self.data.get())
            }
        }
    }

    #[cfg(not(la_loom))]
    pub use plain::CausalCell;
}

/// Thread spawn/join/yield.
pub mod thread {
    #[cfg(not(la_loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(la_loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` under the model checker (`la_loom` builds: every interleaving
/// within the configured bounds) or once directly (normal builds).
#[cfg(la_loom)]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    loom::model(f)
}

/// Runs `f` under the model checker (`la_loom` builds: every interleaving
/// within the configured bounds) or once directly (normal builds).
#[cfg(not(la_loom))]
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    f()
}

/// Whether this build routes synchronization through the model checker.
pub const fn is_modeled() -> bool {
    cfg!(la_loom)
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_runs_the_closure() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static RAN: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RAN.fetch_add(1, Ordering::SeqCst);
        });
        assert!(RAN.load(Ordering::SeqCst) >= 1);
    }

    #[test]
    fn causal_cell_round_trips() {
        let cell = super::cell::CausalCell::new(5u32);
        cell.with_mut(|p| unsafe { *p += 1 });
        assert_eq!(cell.with(|p| unsafe { *p }), 6);
    }
}
