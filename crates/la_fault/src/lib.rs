//! Deterministic, seedable failpoints for crash-robustness testing.
//!
//! The workspace's lock-free hot paths thread [`fail_point!`] calls through
//! their dangerous windows — between winning a slot CAS and returning the
//! name, between pinning an epoch and tagging an acquisition, inside the
//! flat-combining combiner slice.  In a normal build the macro expands to
//! nothing (the `la_fault` cfg is off and the branch is a constant
//! `false`), so the production binary carries no overhead.  Under
//! `RUSTFLAGS="--cfg la_fault"` every site reports to this crate, which
//! decides — deterministically, from a seed — whether to inject a fault:
//!
//! * **Delay** — spin for a configured number of iterations, widening race
//!   windows.
//! * **EarlyReturn** — make the site's operation report failure (only
//!   honored by sites that opt in via the two-argument macro form).
//! * **Panic** — unwind with a [`FaultPanic`] payload, exercising the RAII
//!   rollback guards.
//! * **Die** — unwind with a [`ThreadDeath`] payload, modeling a client
//!   crash.  Unwinding (rather than aborting) is deliberate: it lets the
//!   drop-order rollback run exactly as a real `catch_unwind`-isolated
//!   worker crash would, while *abrupt* death (no unwind at all) is modeled
//!   one layer up by a leased client that simply stops heartbeating.
//! * **Pause** — park the thread until [`release_paused`] is called; the
//!   deterministic way to manufacture a stuck pin for watchdog tests.
//!
//! Faults come from two sources, checked in order: explicit **triggers**
//! ([`arm_site`]: "the `nth` hit of site S performs action A"), and a
//! seeded probabilistic **plan** ([`FaultPlan`] via [`configure`]) whose
//! per-site decisions derive from `SplitMix64(seed ^ hash(site) ^ hit)` —
//! the same seed always yields the same storm.  While *armed* (any plan or
//! un-fired trigger installed), hit counters are kept per site even when no
//! fault fires, so tests can assert site coverage — a count-only plan
//! ([`FaultPlan::count_only`]) arms the sites without injecting anything.
//! Unarmed, a site is a single atomic load: nothing is counted and
//! the global state lock is never touched, so an instrumented build's
//! concurrency stays honest on the hot paths.
//!
//! The crate itself always compiles (its unit tests run without the cfg);
//! only the macro's expansion is gated, so enabling faults never changes
//! the *types* flowing through the instrumented code.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![forbid(unsafe_code)]

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Spin for this many `spin_loop` iterations, then continue normally.
    Delay(u32),
    /// Ask the site to report failure (two-argument `fail_point!` form).
    EarlyReturn,
    /// Unwind with a [`FaultPanic`] payload.
    Panic,
    /// Unwind with a [`ThreadDeath`] payload — simulated client crash.
    Die,
    /// Park the thread until [`release_paused`]; manufactures stuck pins.
    Pause,
}

/// Seeded probabilistic fault plan; probabilities are per-mille per hit.
///
/// A hit draws one uniform value in `0..1000`; the bands are checked in
/// order `die`, `panic`, `early_return`, `delay`, so the probabilities are
/// additive and their sum must stay ≤ 1000.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Seed for the per-hit decision stream.
    pub seed: u64,
    /// Per-mille probability of [`FaultAction::Die`].
    pub die_per_mille: u32,
    /// Per-mille probability of [`FaultAction::Panic`].
    pub panic_per_mille: u32,
    /// Per-mille probability of [`FaultAction::EarlyReturn`].
    pub early_return_per_mille: u32,
    /// Per-mille probability of [`FaultAction::Delay`].
    pub delay_per_mille: u32,
    /// Spin count used when a plan-driven delay fires.
    pub delay_spins: u32,
    /// When set, only sites whose name contains this substring are eligible.
    pub site_filter: Option<String>,
}

impl FaultPlan {
    /// A plan that injects nothing but still counts hits.
    #[must_use]
    pub fn count_only(seed: u64) -> Self {
        Self {
            seed,
            die_per_mille: 0,
            panic_per_mille: 0,
            early_return_per_mille: 0,
            delay_per_mille: 0,
            delay_spins: 0,
            site_filter: None,
        }
    }

    /// The canonical crash-storm mix used by `make fault-storm`: mostly
    /// clean hits, occasional delays, rare panics and thread deaths.
    #[must_use]
    pub fn storm(seed: u64) -> Self {
        Self {
            seed,
            die_per_mille: 4,
            panic_per_mille: 8,
            early_return_per_mille: 0,
            delay_per_mille: 40,
            delay_spins: 64,
            site_filter: None,
        }
    }

    /// Restrict the plan to sites whose name contains `needle`.
    #[must_use]
    pub fn only_sites(mut self, needle: &str) -> Self {
        self.site_filter = Some(needle.to_string());
        self
    }
}

/// Panic payload for [`FaultAction::Panic`] injections.
#[derive(Clone, Copy, Debug)]
pub struct FaultPanic {
    /// The failpoint that fired.
    pub site: &'static str,
}

/// Panic payload for [`FaultAction::Die`] injections — simulated client
/// death.  Rollback guards treat it exactly like any other unwind; the
/// distinction exists so harnesses can tell injected crashes from genuine
/// assertion failures.
#[derive(Clone, Copy, Debug)]
pub struct ThreadDeath {
    /// The failpoint at which the simulated client died.
    pub site: &'static str,
}

/// True when a caught panic payload came from an injected fault
/// ([`FaultPanic`] or [`ThreadDeath`]) rather than a real bug.
#[must_use]
pub fn is_injected(payload: &(dyn Any + Send)) -> bool {
    payload.is::<FaultPanic>() || payload.is::<ThreadDeath>()
}

/// The site name carried by an injected-fault payload, if it is one.
#[must_use]
pub fn injected_site(payload: &(dyn Any + Send)) -> Option<&'static str> {
    if let Some(p) = payload.downcast_ref::<FaultPanic>() {
        Some(p.site)
    } else {
        payload.downcast_ref::<ThreadDeath>().map(|d| d.site)
    }
}

#[derive(Debug)]
struct Trigger {
    site: &'static str,
    nth: u64,
    action: FaultAction,
    fired: bool,
}

#[derive(Debug, Default)]
struct State {
    plan: Option<FaultPlan>,
    triggers: Vec<Trigger>,
    hits: HashMap<&'static str, u64>,
}

#[derive(Debug, Default)]
struct PauseState {
    paused: usize,
    release_gen: u64,
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::default()))
}

/// Whether any plan or trigger is installed.  [`fire_and_act`] checks this
/// *before* touching the state mutex: a `--cfg la_fault` build threads a
/// fail point through every hot-path operation, and an unarmed site must
/// not serialize the whole process on one lock (that would make the
/// instrumented build concurrency-blind, the opposite of its purpose).
/// Consequence: hit counters only accumulate while armed.
static ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

fn sync_armed(st: &State) {
    ARMED.store(
        st.plan.is_some() || !st.triggers.is_empty(),
        std::sync::atomic::Ordering::Release,
    );
}

fn pause_state() -> &'static (Mutex<PauseState>, Condvar) {
    static PAUSE: OnceLock<(Mutex<PauseState>, Condvar)> = OnceLock::new();
    PAUSE.get_or_init(|| (Mutex::new(PauseState::default()), Condvar::new()))
}

fn lock_state() -> std::sync::MutexGuard<'static, State> {
    // A panic injected *by* this crate can poison nothing here (the lock is
    // always released before acting), but a caller's panic while holding a
    // different lock must not cascade into fault bookkeeping.
    state()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn site_hash(site: &str) -> u64 {
    // FNV-1a: stable across runs and platforms, unlike `DefaultHasher`.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Install (replace) the probabilistic fault plan.
pub fn configure(plan: FaultPlan) {
    let mut st = lock_state();
    st.plan = Some(plan);
    sync_armed(&st);
}

/// Arm a one-shot trigger: the `nth` hit (1-based) of `site` performs
/// `action`.  Triggers take precedence over the plan and fire at most once.
pub fn arm_site(site: &'static str, nth: u64, action: FaultAction) {
    assert!(nth >= 1, "trigger hits are 1-based");
    let mut st = lock_state();
    st.triggers.push(Trigger {
        site,
        nth,
        action,
        fired: false,
    });
    sync_armed(&st);
}

/// Clear the plan, all triggers, and all hit counters, and wake any
/// [`FaultAction::Pause`]d threads.  Call between test scenarios.
pub fn reset() {
    {
        let mut st = lock_state();
        st.plan = None;
        st.triggers.clear();
        st.hits.clear();
        sync_armed(&st);
    }
    release_paused();
}

/// Hit count recorded for `site` since the last [`reset`].  Hits are only
/// recorded while armed (see the crate docs); unarmed traffic is invisible.
#[must_use]
pub fn hits(site: &str) -> u64 {
    lock_state().hits.get(site).copied().unwrap_or(0)
}

/// Every `(site, hits)` pair recorded since the last [`reset`], sorted by
/// site name for stable reporting.
#[must_use]
pub fn all_hits() -> Vec<(String, u64)> {
    let st = lock_state();
    let mut v: Vec<_> = st
        .hits
        .iter()
        .map(|(s, &n)| ((*s).to_string(), n))
        .collect();
    drop(st);
    v.sort();
    v
}

/// Total hits across all sites since the last [`reset`].
#[must_use]
pub fn hits_total() -> u64 {
    lock_state().hits.values().sum()
}

/// Number of threads currently parked by [`FaultAction::Pause`].
#[must_use]
pub fn paused_count() -> usize {
    let (lock, _) = pause_state();
    lock.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .paused
}

/// Wake every thread currently parked by [`FaultAction::Pause`].
pub fn release_paused() {
    let (lock, cvar) = pause_state();
    let mut st = lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    st.release_gen += 1;
    drop(st);
    cvar.notify_all();
}

fn park_until_released() {
    let (lock, cvar) = pause_state();
    let mut st = lock
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let my_gen = st.release_gen;
    st.paused += 1;
    while st.release_gen == my_gen {
        st = cvar
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    st.paused -= 1;
}

thread_local! {
    static SUPPRESS_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// Scoped injection suppression for the current thread; see [`suppress`].
#[derive(Debug)]
pub struct SuppressGuard(());

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Disable fault injection on the current thread until the returned guard
/// drops.  Rollback handlers hold one while they undo partial work: a
/// *second* injected fault inside recovery code would either abort the
/// process (panic while unwinding) or leak the very state the handler is
/// cleaning up.  Suppressed hits are invisible — not counted, no action.
#[must_use]
pub fn suppress() -> SuppressGuard {
    SUPPRESS_DEPTH.with(|d| d.set(d.get() + 1));
    SuppressGuard(())
}

/// Decide and perform the fault for one hit of `site`.
///
/// Returns `true` when the site should take its early-return path (the
/// two-argument [`fail_point!`] form); sites without one ignore the value.
/// Called by the macro expansion — tests may also call it directly.
///
/// Never acts while the thread is already unwinding (a nested panic would
/// abort the process mid-rollback) or inside a [`suppress`] scope.
pub fn fire_and_act(site: &'static str) -> bool {
    if !ARMED.load(std::sync::atomic::Ordering::Acquire) {
        return false;
    }
    if std::thread::panicking() || SUPPRESS_DEPTH.with(std::cell::Cell::get) > 0 {
        return false;
    }
    let action = {
        let mut st = lock_state();
        let hit = {
            let e = st.hits.entry(site).or_insert(0);
            *e += 1;
            *e
        };
        let trigger = st
            .triggers
            .iter_mut()
            .find(|t| !t.fired && t.site == site && t.nth == hit)
            .map(|t| {
                t.fired = true;
                t.action
            });
        trigger.or_else(|| {
            let plan = st.plan.as_ref()?;
            if let Some(filter) = &plan.site_filter {
                if !site.contains(filter.as_str()) {
                    return None;
                }
            }
            let draw = splitmix64(plan.seed ^ site_hash(site) ^ hit.wrapping_mul(0x9e37)) % 1000;
            let draw = u32::try_from(draw).expect("per-mille draw fits in u32");
            let mut band = plan.die_per_mille;
            if draw < band {
                return Some(FaultAction::Die);
            }
            band += plan.panic_per_mille;
            if draw < band {
                return Some(FaultAction::Panic);
            }
            band += plan.early_return_per_mille;
            if draw < band {
                return Some(FaultAction::EarlyReturn);
            }
            band += plan.delay_per_mille;
            if draw < band {
                return Some(FaultAction::Delay(plan.delay_spins));
            }
            None
        })
        // The lock drops here — every action below runs unlocked so a
        // panic or park never wedges other sites' bookkeeping.
    };
    match action {
        None => false,
        Some(FaultAction::Delay(spins)) => {
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            false
        }
        Some(FaultAction::EarlyReturn) => true,
        Some(FaultAction::Panic) => std::panic::panic_any(FaultPanic { site }),
        Some(FaultAction::Die) => std::panic::panic_any(ThreadDeath { site }),
        Some(FaultAction::Pause) => {
            park_until_released();
            false
        }
    }
}

/// Read a [`FaultPlan`] from `LA_FAULT_*` environment variables and install
/// it.  Returns `true` when a plan was armed (`LA_FAULT_SEED` present).
///
/// Variables: `LA_FAULT_SEED` (required, u64), `LA_FAULT_DIE_PM`,
/// `LA_FAULT_PANIC_PM`, `LA_FAULT_EARLY_PM`, `LA_FAULT_DELAY_PM` (per-mille,
/// default the [`FaultPlan::storm`] mix), `LA_FAULT_DELAY_SPINS`, and
/// `LA_FAULT_SITES` (substring filter).
pub fn configure_from_env() -> bool {
    let Some(seed) = std::env::var("LA_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    else {
        return false;
    };
    let pm = |key: &str, default: u32| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let storm = FaultPlan::storm(seed);
    let plan = FaultPlan {
        seed,
        die_per_mille: pm("LA_FAULT_DIE_PM", storm.die_per_mille),
        panic_per_mille: pm("LA_FAULT_PANIC_PM", storm.panic_per_mille),
        early_return_per_mille: pm("LA_FAULT_EARLY_PM", storm.early_return_per_mille),
        delay_per_mille: pm("LA_FAULT_DELAY_PM", storm.delay_per_mille),
        delay_spins: pm("LA_FAULT_DELAY_SPINS", storm.delay_spins),
        site_filter: std::env::var("LA_FAULT_SITES")
            .ok()
            .filter(|s| !s.is_empty()),
    };
    configure(plan);
    true
}

/// Install a panic hook that stays silent for injected faults
/// ([`FaultPanic`] / [`ThreadDeath`]) and defers to the previous hook for
/// everything else.  Storm tests call this once so thousands of injected
/// unwinds do not flood stderr while real assertion failures still print.
pub fn install_quiet_hook() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<FaultPanic>() || info.payload().is::<ThreadDeath>() {
                return;
            }
            previous(info);
        }));
    });
}

/// Inject faults at a named site.
///
/// `fail_point!("crate::site")` performs whatever action is armed for the
/// site (delay, panic, death, pause) and otherwise falls through.
/// `fail_point!("crate::site", expr)` additionally supports
/// [`FaultAction::EarlyReturn`]: when the early-return band fires, the
/// enclosing function returns `expr`.
///
/// Expands to nothing unless the build sets `--cfg la_fault`; the check is
/// `cfg!(la_fault)` *in the calling crate*, so every crate that uses the
/// macro must register `la_fault` with `[lints.rust.unexpected_cfgs]`
/// (inherited from the workspace here).
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if cfg!(la_fault) {
            let _ = $crate::fire_and_act($site);
        }
    };
    ($site:expr, $ret:expr) => {
        if cfg!(la_fault) && $crate::fire_and_act($site) {
            return $ret;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The fault state is process-global; serialize the tests that mutate it.
    fn serial() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_sites_are_free_and_uncounted() {
        let _g = serial();
        reset();
        // Unarmed, the fast path skips the state lock entirely — nothing is
        // recorded.  That lock-freedom is what keeps an instrumented build's
        // concurrency honest, so it is asserted, not just an optimization.
        for _ in 0..5 {
            assert!(!fire_and_act("t::a"));
        }
        assert_eq!(hits_total(), 0);
        // A count-only plan arms the sites without injecting anything; the
        // same hits now count.
        configure(FaultPlan::count_only(1));
        for _ in 0..5 {
            assert!(!fire_and_act("t::a"));
        }
        assert_eq!(hits("t::a"), 5);
        assert_eq!(hits("t::other"), 0);
        assert_eq!(hits_total(), 5);
        reset();
        assert_eq!(hits("t::a"), 0);
    }

    #[test]
    fn triggers_fire_on_the_exact_hit_and_only_once() {
        let _g = serial();
        reset();
        arm_site("t::tr", 3, FaultAction::EarlyReturn);
        assert!(!fire_and_act("t::tr"));
        assert!(!fire_and_act("t::tr"));
        assert!(fire_and_act("t::tr"));
        assert!(!fire_and_act("t::tr"));
        reset();
    }

    #[test]
    fn trigger_panic_carries_the_site() {
        let _g = serial();
        reset();
        arm_site("t::boom", 1, FaultAction::Panic);
        let err = std::panic::catch_unwind(|| fire_and_act("t::boom")).unwrap_err();
        assert!(is_injected(err.as_ref()));
        assert_eq!(injected_site(err.as_ref()), Some("t::boom"));
        reset();
    }

    #[test]
    fn die_is_distinguishable_from_panic() {
        let _g = serial();
        reset();
        arm_site("t::die", 1, FaultAction::Die);
        let err = std::panic::catch_unwind(|| fire_and_act("t::die")).unwrap_err();
        assert!(err.is::<ThreadDeath>());
        assert!(!err.is::<FaultPanic>());
        assert!(is_injected(err.as_ref()));
        reset();
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let _g = serial();
        let run = |seed: u64| -> Vec<bool> {
            reset();
            configure(FaultPlan {
                early_return_per_mille: 500,
                ..FaultPlan::count_only(seed)
            });
            let outcomes = (0..64).map(|_| fire_and_act("t::det")).collect();
            reset();
            outcomes
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed must replay the same storm");
        assert_ne!(a, c, "different seeds should diverge");
        assert!(a.iter().any(|&x| x), "500‰ must fire within 64 hits");
        assert!(!a.iter().all(|&x| x), "500‰ must also miss within 64 hits");
    }

    #[test]
    fn site_filter_masks_other_sites() {
        let _g = serial();
        reset();
        configure(FaultPlan {
            early_return_per_mille: 1000,
            ..FaultPlan::count_only(7)
        });
        assert!(fire_and_act("t::anything"));
        configure(
            FaultPlan {
                early_return_per_mille: 1000,
                ..FaultPlan::count_only(7)
            }
            .only_sites("elastic"),
        );
        assert!(!fire_and_act("t::probe"));
        assert!(fire_and_act("t::elastic::tag"));
        reset();
    }

    #[test]
    fn pause_parks_until_released() {
        let _g = serial();
        reset();
        arm_site("t::pause", 1, FaultAction::Pause);
        let h = std::thread::spawn(|| fire_and_act("t::pause"));
        while paused_count() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(paused_count(), 1);
        release_paused();
        assert!(!h.join().unwrap());
        assert_eq!(paused_count(), 0);
        reset();
    }

    #[test]
    fn suppression_hides_hits_entirely() {
        let _g = serial();
        reset();
        arm_site("t::sup", 1, FaultAction::Panic);
        {
            let _s = suppress();
            assert!(!fire_and_act("t::sup"));
        }
        assert_eq!(hits("t::sup"), 0, "suppressed hits must not count");
        // The trigger is still armed for the first *visible* hit.
        assert!(std::panic::catch_unwind(|| fire_and_act("t::sup")).is_err());
        reset();
    }

    #[test]
    fn no_injection_while_unwinding() {
        let _g = serial();
        reset();
        arm_site("t::drop", 1, FaultAction::Panic);
        struct FiresInDrop;
        impl Drop for FiresInDrop {
            fn drop(&mut self) {
                // Runs while the thread is unwinding: must be a no-op, or
                // the nested panic would abort the whole test process.
                assert!(!fire_and_act("t::drop"));
            }
        }
        let err = std::panic::catch_unwind(|| {
            let _f = FiresInDrop;
            panic!("outer");
        })
        .unwrap_err();
        assert!(!is_injected(err.as_ref()));
        reset();
    }

    #[test]
    fn env_plan_requires_a_seed() {
        let _g = serial();
        reset();
        // The test harness does not set LA_FAULT_SEED.
        assert!(!configure_from_env());
        reset();
    }
}
