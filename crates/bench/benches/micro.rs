//! Criterion micro-benchmarks: per-operation costs of the activity arrays and
//! of the applications built on top of them.
//!
//! These complement the figure harnesses: Figure 2 measures end-to-end
//! workload behaviour, while these benches isolate the latency of a single
//! `Get`+`Free` pair, a `Collect`, and the application fast paths
//! (reclamation pin/unpin, flat-combining operations, reader registration) at
//! a fixed occupancy.

//! Set `MICRO_QUICK=1` to shrink the warm-up and measurement windows to a
//! smoke-test size (`make bench-smoke` uses this to *execute* the wiring
//! rather than collect publishable numbers).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use la_baselines::{LinearProbingArray, LinearScanArray, RandomArray};
use la_coordination::ReaderRegistry;
use la_flatcombine::FcCounter;
use la_reclaim::{ReclaimDomain, TreiberStack};
use larng::default_rng;
use levelarray::{
    ActivityArray, ElasticLevelArray, GrowthPolicy, LevelArray, LevelArrayConfig, Name,
    ShardedLevelArray, SlotLayout, TasKind,
};

/// Warm-up and measurement windows: full-size by default, tiny under
/// `MICRO_QUICK=1` (the `make bench-smoke` mode).
fn windows() -> (Duration, Duration) {
    let quick = std::env::var("MICRO_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    if quick {
        (Duration::from_millis(50), Duration::from_millis(150))
    } else {
        (Duration::from_millis(500), Duration::from_secs(2))
    }
}

/// Occupies `fraction` of the structure's contention bound and returns the
/// held names so the benchmark runs at a realistic load.
fn prefill(array: &dyn ActivityArray, fraction: f64, seed: u64) -> Vec<Name> {
    let mut rng = default_rng(seed);
    let target = ((array.max_participants() as f64) * fraction) as usize;
    (0..target).map(|_| array.get(&mut rng).name()).collect()
}

fn bench_get_free(c: &mut Criterion) {
    let n = 256;
    let mut group = c.benchmark_group("get_free_50pct");
    let (warm_up, measurement) = windows();
    group.measurement_time(measurement);
    group.warm_up_time(warm_up);
    group.sample_size(30);

    let arrays: Vec<(&str, Box<dyn ActivityArray>)> = vec![
        ("LevelArray", Box::new(LevelArray::new(n))),
        (
            "LevelArray-swap",
            Box::new(
                LevelArrayConfig::new(n)
                    .tas_kind(TasKind::Swap)
                    .build()
                    .unwrap(),
            ),
        ),
        (
            "LevelArray-packed",
            Box::new(
                LevelArrayConfig::new(n)
                    .slot_layout(SlotLayout::Packed)
                    .build()
                    .unwrap(),
            ),
        ),
        (
            "LevelArray-hybrid",
            Box::new(LevelArrayConfig::new(n).hybrid_layout().build().unwrap()),
        ),
        (
            // Free→Get hint cache on: at 50% occupancy the hinted slot is
            // re-won with one CAS, so this cell shows the fast-path floor.
            "LevelArray-hint",
            Box::new(LevelArrayConfig::new(n).free_hint(true).build().unwrap()),
        ),
        (
            "ShardedLevelArray-s4",
            Box::new(ShardedLevelArray::new(n, 4)),
        ),
        (
            // Fully provisioned single epoch: isolates the epoch-chain
            // overhead (read lock + tag) against the plain LevelArray.
            "ElasticLevelArray-e4",
            Box::new(ElasticLevelArray::new(
                n,
                GrowthPolicy::Doubling { max_epochs: 4 },
            )),
        ),
        ("Random", Box::new(RandomArray::new(n))),
        ("LinearProbing", Box::new(LinearProbingArray::new(n))),
        ("LinearScan", Box::new(LinearScanArray::new(n))),
    ];
    for (label, array) in &arrays {
        let _held = prefill(array.as_ref(), 0.5, 1);
        let mut rng = default_rng(2);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let got = array.get(&mut rng);
                array.free(got.name());
                got.probes()
            })
        });
    }
    group.finish();
}

fn bench_batched(c: &mut Criterion) {
    let n = 256;
    let k = 16;
    let mut group = c.benchmark_group("batched_k16_50pct");
    let (warm_up, measurement) = windows();
    group.measurement_time(measurement);
    group.warm_up_time(warm_up);
    group.sample_size(30);

    // One iteration = a k-name acquire + release round.  The batched rows go
    // through get_many/free_many (one multi-claim RMW per probed word on the
    // packed layout, one fetch_and per released word); the singleton rows run
    // the same round as k independent get/free pairs.
    let arrays: Vec<(&str, Box<dyn ActivityArray>)> = vec![
        ("LevelArray", Box::new(LevelArray::new(n))),
        (
            "LevelArray-packed",
            Box::new(
                LevelArrayConfig::new(n)
                    .slot_layout(SlotLayout::Packed)
                    .build()
                    .unwrap(),
            ),
        ),
        (
            "LevelArray-hybrid",
            Box::new(LevelArrayConfig::new(n).hybrid_layout().build().unwrap()),
        ),
        (
            "ShardedLevelArray-s4",
            Box::new(ShardedLevelArray::new(n, 4)),
        ),
        (
            "ElasticLevelArray-e4",
            Box::new(ElasticLevelArray::new(
                n,
                GrowthPolicy::Doubling { max_epochs: 4 },
            )),
        ),
    ];
    for (label, array) in &arrays {
        let _held = prefill(array.as_ref(), 0.5, 7);
        let mut rng = default_rng(8);
        let mut out = Vec::with_capacity(k);
        let mut names: Vec<Name> = Vec::with_capacity(k);
        group.bench_function(BenchmarkId::new("batched", label), |b| {
            b.iter(|| {
                out.clear();
                names.clear();
                array.get_many(&mut rng, k, &mut out);
                names.extend(out.iter().map(|got| got.name()));
                array.free_many(&names);
                names.len()
            })
        });
        group.bench_function(BenchmarkId::new("singleton", label), |b| {
            b.iter(|| {
                names.clear();
                for _ in 0..k {
                    names.push(array.get(&mut rng).name());
                }
                for &name in &names {
                    array.free(name);
                }
                names.len()
            })
        });
    }
    group.finish();
}

fn bench_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect");
    let (warm_up, measurement) = windows();
    group.measurement_time(measurement);
    group.warm_up_time(warm_up);
    group.sample_size(30);
    for n in [64usize, 256, 1024] {
        let array = LevelArray::new(n);
        let _held = prefill(&array, 0.5, 3);
        group.bench_with_input(BenchmarkId::new("LevelArray", n), &n, |b, _| {
            b.iter(|| array.collect().len())
        });
    }
    // The slot-layout ablation: the same scan into a reused buffer
    // (collect_into), so the cell isolates the memory actually touched —
    // one word per slot vs one bit per slot.
    for layout in ["word-per-slot", "packed", "hybrid"] {
        let label = match layout {
            "word-per-slot" => "LevelArray-collect_into",
            "packed" => "LevelArray-packed-collect_into",
            _ => "LevelArray-hybrid-collect_into",
        };
        for n in [256usize, 1024] {
            let config = match layout {
                "word-per-slot" => LevelArrayConfig::new(n).slot_layout(SlotLayout::WordPerSlot),
                "packed" => LevelArrayConfig::new(n).slot_layout(SlotLayout::Packed),
                // Default crossover: batch 0 word-per-slot, tail packed.
                _ => LevelArrayConfig::new(n).hybrid_layout(),
            };
            let array = config.build().unwrap();
            let _held = prefill(&array, 0.5, 3);
            let mut out = Vec::with_capacity(array.capacity());
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    out.clear();
                    array.collect_into(&mut out);
                    out.len()
                })
            });
        }
    }
    group.finish();
}

fn bench_applications(c: &mut Criterion) {
    let mut group = c.benchmark_group("applications");
    let (warm_up, measurement) = windows();
    group.measurement_time(measurement);
    group.warm_up_time(warm_up);
    group.sample_size(30);

    // Memory reclamation: pin/unpin plus one push/pop cycle.
    {
        let domain = Arc::new(ReclaimDomain::new(Arc::new(LevelArray::new(64))));
        let stack = TreiberStack::new(Arc::clone(&domain));
        let mut rng = default_rng(4);
        let mut i = 0u64;
        group.bench_function("reclaim_push_pop", |b| {
            b.iter(|| {
                stack.push(i, &mut rng);
                i += 1;
                let popped = stack.pop(&mut rng);
                if i % 1024 == 0 {
                    domain.try_reclaim();
                }
                popped
            })
        });
        domain.try_reclaim();
    }

    // Flat combining: uncontended fetch_add through the combiner.
    {
        let counter = FcCounter::new(Arc::new(LevelArray::new(64)));
        let mut rng = default_rng(5);
        let session = counter.join(&mut rng);
        group.bench_function("flatcombine_fetch_add", |b| b.iter(|| session.fetch_add(1)));
    }

    // Reader registry: enter/exit a read-side critical section.
    {
        let registry = ReaderRegistry::new(Arc::new(LevelArray::new(64)));
        let mut rng = default_rng(6);
        group.bench_function("reader_registry_enter_exit", |b| {
            b.iter(|| {
                let guard = registry.enter(&mut rng);
                guard.probes()
            })
        });
    }

    group.finish();
}

criterion_group!(
    benches,
    bench_get_free,
    bench_batched,
    bench_collect,
    bench_applications
);
criterion_main!(benches);
