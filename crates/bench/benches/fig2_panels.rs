//! Reproduces **Figure 2** of the paper: throughput, average number of
//! trials, standard deviation of trials, and worst-case number of trials as a
//! function of the thread count, for LevelArray, Random and LinearProbing —
//! plus this reproduction's ShardedLevelArray cell (`FIG2_SHARDS` shards,
//! default 4), which targets the cache-line contention the single array hits
//! at high thread counts.
//!
//! The paper runs each cell for 10 seconds on an 80-hardware-thread machine
//! with `N = 1000 n` and `L = 2N` at 50 % pre-fill; this harness keeps the
//! same workload *shape* but scales the volume so the whole figure regenerates
//! in about a minute on a laptop.  Scale it up with environment variables:
//!
//! * `FIG2_THREADS` — comma-separated thread counts (default: 1,2,4 and the
//!   host parallelism).
//! * `FIG2_OPS` — measured Get+Free pairs per thread (default 200 000; the
//!   paper's billion-operation claim corresponds to several hundred million —
//!   set `FIG2_OPS=10000000` and a large thread list to approach it).
//! * `FIG2_EMULATED` — slots held per thread, the paper's `N/n` (default 32).
//! * `FIG2_PREFILL` — pre-fill fraction (default 0.5).
//! * `FIG2_SHARDS` — shard count of the ShardedLevelArray cell (default 4).
//! * `FIG2_ELASTIC_EPOCHS` — epoch cap of the Elastic cell (default 4; the
//!   cell starts at a quarter of the contention bound and must grow through
//!   epochs mid-measurement).
//! * `BENCH_JSON` — append one machine-readable record per cell to this
//!   file (see `la_bench::json`); `make bench-diff` compares such files.
//! * `BENCH_REPEAT` — run each cell this many times and keep the
//!   median-throughput run (default 1; `make bench-json` uses 5 to damp
//!   scheduler noise in the committed baselines).

use la_bench::{Algorithm, Cell, JsonSink, Table, WorkloadConfig};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn thread_counts() -> Vec<usize> {
    if let Ok(list) = std::env::var("FIG2_THREADS") {
        let parsed: Vec<usize> = list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .filter(|&n| n > 0)
            .collect();
        if !parsed.is_empty() {
            return parsed;
        }
    }
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let mut counts = vec![1, 2, 4];
    if !counts.contains(&host) {
        counts.push(host);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn main() {
    // `cargo bench -- --test` style filter arguments are ignored; the harness
    // always regenerates the whole figure.
    let ops_per_thread: u64 = env_or("FIG2_OPS", 200_000);
    let emulated: usize = env_or("FIG2_EMULATED", 32);
    let prefill: f64 = env_or("FIG2_PREFILL", 0.5);
    let shards: usize = env_or("FIG2_SHARDS", 4);
    let elastic_epochs: usize = env_or("FIG2_ELASTIC_EPOCHS", 4);
    let repeat: usize = env_or("BENCH_REPEAT", 1);
    let threads = thread_counts();
    let mut sink = JsonSink::from_env();

    println!(
        "# Figure 2 — LevelArray vs ShardedLevelArray(s={shards}) vs \
         Elastic(e<={elastic_epochs}) vs Random vs LinearProbing"
    );
    println!(
        "# workload: N/n = {emulated}, L = 2N, prefill = {:.0}%, {} measured ops/thread",
        prefill * 100.0,
        ops_per_thread
    );
    println!();

    let mut throughput = Table::new(&["threads", "algorithm", "total ops", "ops/s"]);
    let mut average = Table::new(&["threads", "algorithm", "avg trials"]);
    let mut stddev = Table::new(&["threads", "algorithm", "stddev trials"]);
    let mut worst = Table::new(&[
        "threads",
        "algorithm",
        "worst (avg over threads)",
        "worst (absolute)",
    ]);

    let mut algorithms = Algorithm::figure2_set();
    // Honor FIG2_SHARDS / FIG2_ELASTIC_EPOCHS for the extension cells.
    for algorithm in &mut algorithms {
        match algorithm {
            Algorithm::ShardedLevelArray { shards: s } => *s = shards,
            Algorithm::Elastic { max_epochs } => *max_epochs = elastic_epochs,
            _ => {}
        }
    }

    for &n in &threads {
        for &algorithm in &algorithms {
            let config = WorkloadConfig {
                threads: n,
                emulated_per_thread: emulated,
                space_factor: 2.0,
                prefill,
                target_ops_per_thread: ops_per_thread,
                seed: 0xF162 + n as u64,
            };
            let result = la_bench::workload::run_workload_repeated(algorithm, &config, repeat);
            if let Some(sink) = sink.as_mut() {
                let key = format!("fig2/threads={n}/{}", result.algorithm);
                sink.write(&result.json_record("fig2_panels", key));
            }
            throughput.push_row(vec![
                n.into(),
                result.algorithm.clone().into(),
                result.total_ops.into(),
                Cell::FloatPrec(result.throughput(), 0),
            ]);
            average.push_row(vec![
                n.into(),
                result.algorithm.clone().into(),
                Cell::FloatPrec(result.stats.mean_probes(), 3),
            ]);
            stddev.push_row(vec![
                n.into(),
                result.algorithm.clone().into(),
                Cell::FloatPrec(result.stats.stddev_probes(), 3),
            ]);
            worst.push_row(vec![
                n.into(),
                result.algorithm.clone().into(),
                Cell::FloatPrec(result.mean_worst_case(), 2),
                u64::from(result.absolute_worst_case()).into(),
            ]);
        }
    }

    println!("## Panel 1 — Throughput\n\n{}", throughput.to_markdown());
    println!(
        "## Panel 2 — Average number of trials\n\n{}",
        average.to_markdown()
    );
    println!(
        "## Panel 3 — Standard deviation\n\n{}",
        stddev.to_markdown()
    );
    println!(
        "## Panel 4 — Worst-case number of trials\n\n{}",
        worst.to_markdown()
    );
}
