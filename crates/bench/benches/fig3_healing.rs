//! Reproduces **Figure 3** of the paper: the self-healing property.
//!
//! The array starts in an unbalanced state (batch 0 a quarter full, batch 1
//! half full — overcrowded), a typical register/deregister workload runs, and
//! the per-batch fill is sampled every 4000 operations.  The paper's plot
//! shows the distribution smoothly returning to the balanced profile within
//! about 32 000 operations; the table printed here is the same data, one row
//! per snapshot ("state" in the paper's axis labels).
//!
//! A second cell runs the same protocol on the `ShardedLevelArray`
//! (per-shard skew, balance judged on the batch-aggregated census) and a
//! third on the `ElasticLevelArray` (skew in the newest epoch, doubling
//! growth armed), to show the self-healing property survives both
//! decompositions.
//!
//! Environment variables:
//!
//! * `FIG3_N` — contention bound of the array (default 512).
//! * `FIG3_OPS` — total operations (default 32 000, the paper's horizon).
//! * `FIG3_SNAPSHOT` — operations between snapshots (default 4 000).
//! * `FIG3_SEED` — RNG seed (default 3).
//! * `FIG3_SHARDS` — shard count of the sharded cell (default 4).
//! * `FIG3_ELASTIC_EPOCHS` — epoch cap of the elastic cell (default 4).
//! * `BENCH_JSON` — append one machine-readable record per cell (healing
//!   records carry `ops_to_balance`/`finally_balanced` instead of
//!   throughput, so `bench_diff` joins but does not rate them).

use la_bench::{Cell, JsonRecord, JsonSink, Table};
use la_sim::{HealingExperiment, HealingReport, UnbalanceSpec};
use levelarray::{GrowthPolicy, LevelArrayConfig};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn print_report(report: &HealingReport) {
    println!(
        "# initially balanced: {} | finally balanced: {} | ops until stably balanced: {}",
        report.initially_balanced,
        report.finally_balanced,
        report
            .ops_to_balance
            .map(|v| v.to_string())
            .unwrap_or_else(|| "never".to_string())
    );
    println!();

    let batches = report
        .samples
        .first()
        .map(|s| s.batch_fill.len())
        .unwrap_or(0);
    let mut header: Vec<String> = vec!["state (ops)".to_string(), "balanced".to_string()];
    header.extend((0..batches).map(|b| format!("batch {b} fill")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut table = Table::new(&header_refs);
    for sample in &report.samples {
        let mut row: Vec<Cell> = vec![
            sample.ops_completed.into(),
            if sample.fully_balanced { "yes" } else { "no" }.into(),
        ];
        row.extend(sample.batch_fill.iter().map(|&f| Cell::FloatPrec(f, 3)));
        table.push_row(row);
    }
    println!("{}", table.to_markdown());
}

fn record(sink: &mut Option<JsonSink>, key: &str, report: &HealingReport) {
    if let Some(sink) = sink.as_mut() {
        sink.write(
            &JsonRecord::new()
                .field("key", key)
                .field("bench", "fig3_healing")
                .field("initially_balanced", report.initially_balanced)
                .field("finally_balanced", report.finally_balanced)
                .field("ops_to_balance", report.ops_to_balance)
                .field("samples", report.samples.len()),
        );
    }
}

fn main() {
    let n: usize = env_or("FIG3_N", 512);
    let total_ops: u64 = env_or("FIG3_OPS", 32_000);
    let snapshot_every: u64 = env_or("FIG3_SNAPSHOT", 4_000);
    let seed: u64 = env_or("FIG3_SEED", 3);
    let shards: usize = env_or("FIG3_SHARDS", 4);
    let elastic_epochs: usize = env_or("FIG3_ELASTIC_EPOCHS", 4);
    let mut sink = JsonSink::from_env();

    let experiment = HealingExperiment {
        array: LevelArrayConfig::new(n),
        workers: (n / 2).max(1),
        total_ops,
        snapshot_every,
        spec: UnbalanceSpec::paper_figure3(),
        seed,
        ghost_release_probability: 0.5,
    };

    println!("# Figure 3 — Self-healing: per-batch fill over time");
    println!(
        "# n = {n}, initial skew = {{batch 0: 25%, batch 1: 50%}}, snapshot every {snapshot_every} ops"
    );
    println!();
    println!("## LevelArray");
    let report = experiment.run();
    record(&mut sink, "fig3/levelarray", &report);
    print_report(&report);

    println!("## ShardedLevelArray (s = {shards}, per-shard skew, batch-aggregated census)");
    let report = experiment.run_sharded(shards);
    record(&mut sink, &format!("fig3/sharded-s{shards}"), &report);
    print_report(&report);

    println!(
        "## ElasticLevelArray (e <= {elastic_epochs}, newest-epoch skew, \
         batch-aggregated census)"
    );
    let elastic = HealingExperiment {
        array: LevelArrayConfig::new(n).growth(GrowthPolicy::Doubling {
            max_epochs: elastic_epochs,
        }),
        ..experiment
    };
    let report = elastic.run_elastic();
    record(&mut sink, "fig3/elastic", &report);
    print_report(&report);
}
