//! Reproduces the parameter sweeps described in the text of the paper's §6
//! (and the ablations called out in DESIGN.md §7):
//!
//! 1. **Pre-fill sweep** — the paper states the Figure-2 results hold for
//!    pre-fill percentages between 0 % and 90 %.
//! 2. **Array-size sweep** — likewise for `L` between `2N` and `4N`.
//! 3. **Deterministic comparison** — the left-to-right LinearScan is "at least
//!    two orders of magnitude worse ... on all measures" and is therefore left
//!    off the paper's graphs; this harness includes it so the claim can be
//!    checked.
//! 4. **Ablations** — probes-per-batch (`c_i`) and the TAS primitive
//!    (`compare_exchange` vs `swap`), which the paper discusses qualitatively.
//! 5. **Shard-count sweep** — the ShardedLevelArray against its own shard
//!    count (1 shard degenerates to the plain layout), the knob behind the
//!    ROADMAP's cache-line-contention item.
//! 6. **Epoch-cap sweep** — the ElasticLevelArray against its own epoch cap.
//! 7. **Growth-storm sweep** — zero-prefill churn on a deeply
//!    under-provisioned elastic array, so the measured `Get`s repeatedly
//!    cross forced growth *and* retirement on the lock-free epoch chain.
//! 8. **Slot-layout ablation (Get side)** — the multi-threaded workload over
//!    the word-per-slot, bit-packed and hybrid slot representations,
//!    measuring what the packed layout's denser false sharing costs a `Get`
//!    — at the base thread count and again at ≥8 threads, where the
//!    contended batch-0 cache lines separate the layouts (the hybrid
//!    layout's whole argument).
//! 9. **Collect-latency sweep (scan side)** — single-threaded `Collect`
//!    latency against occupancy for all three layouts: the packed layout
//!    scans 1/32 of the memory, which is the whole point of the knob; the
//!    two sections together are the §6-style both-sides measurement of the
//!    trade.  A `packed-scalar` reference cell walks the same bit pattern
//!    with the pre-batching word-at-a-time loop, so the committed table
//!    always carries the batched-vs-scalar ratio the vectorised scans claim.
//! 10. **Free→Get hint micro** — the same-thread free-then-get churn pair on
//!     a nearly full, tightly sized array, hint cache off vs on: off pays
//!     the full probe sequence per Get, on retries the just-freed slot with
//!     one cache-hot CAS.
//! 11. **Topology sweeps** (`make bench-topology`) — shard-group scaling of
//!     the hierarchical (elastic-of-sharded) array against its flat-epoch
//!     baseline, and the packed-vs-word false-sharing tax, both under a
//!     ≥8-thread contended `Get` storm over a bound large enough that the
//!     flat epoch's probe working set outgrows cache while a shard stays
//!     hot.  The committed records behind the `shard_group` default.
//! 12. **Batched-ops micro** (`make bench-batch`) — `get_many`/`free_many`
//!     at batch size `k` against the equivalent `k`-singleton loops, per
//!     slot layout.  The batched kernels claim up to `k` free bits of one
//!     probed word with ONE compare-exchange and release a sorted batch
//!     with one `fetch_and` per word, so the packed layout is where the
//!     word-level batching pays; the word-per-slot rows price the
//!     loop-based equivalent.
//! 13. **Crash-storm churn** (`make fault-storm`) — contended get/free churn
//!     with every operation under `catch_unwind` and inline orphan recovery.
//!     Normal builds price the guards alone (`storm=guards`, the committed
//!     baseline cell); `--cfg la_fault` builds arm the seeded fault plan and
//!     price survival (`storm=armed`).
//!
//! Environment variables: `SWEEP_THREADS` (default: min(4, host)),
//! `SWEEP_OPS` (default 50 000 measured ops/thread), `SWEEP_EMULATED`
//! (default 32), `SWEEP_COLLECT_N` / `SWEEP_COLLECT_ITERS` (collect-cell
//! contention bound and scan count, defaults 4096 / 10 000),
//! `SWEEP_HINT_N` / `SWEEP_HINT_PAIRS` (hint-cell contention bound and
//! measured pair count, defaults 256 / 200 000),
//! `SWEEP_TOPOLOGY_EMULATED` / `SWEEP_TOPOLOGY_OPS` (topology-storm quota
//! and measured ops; `MICRO_QUICK=1` shrinks both to smoke size),
//! `SWEEP_BATCH_K` / `SWEEP_BATCH_N` / `SWEEP_BATCH_ROUNDS` (batched-ops
//! batch size, contention bound and measured rounds, defaults 16 / 256 /
//! 20 000), `SWEEP_FAULT_THREADS` / `SWEEP_FAULT_OPS` / `LA_FAULT_SEED`
//! (crash-storm worker count, per-worker ops and plan seed, defaults
//! 4 / 100 000 / `0xF417`), `SWEEP_ONLY` to run a single section group
//! (`core` = sections 1–10, `topology` = section 11, `batch` = section 12,
//! `fault` = section 13), `BENCH_JSON` to
//! append one machine-readable record per cell (see `la_bench::json`), and
//! `BENCH_REPEAT` to keep the median-throughput run of that many
//! repetitions per cell.

use std::time::Instant;

use la_bench::{Algorithm, Cell, JsonRecord, JsonSink, Table, WorkloadConfig, WorkloadResult};
use larng::default_rng;
use levelarray::{ActivityArray, LevelArrayConfig, Name, PackedSlots, SlotLayout, TasKind};

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn record(sink: &mut Option<JsonSink>, result: &WorkloadResult, key: String) {
    if let Some(sink) = sink.as_mut() {
        sink.write(&result.json_record("sweeps", key));
    }
}

fn result_row(result: &la_bench::WorkloadResult, extra: Vec<Cell>) -> Vec<Cell> {
    let mut row = extra;
    row.extend([
        Cell::FloatPrec(result.throughput(), 0),
        Cell::FloatPrec(result.stats.mean_probes(), 3),
        Cell::FloatPrec(result.stats.stddev_probes(), 3),
        Cell::FloatPrec(result.mean_worst_case(), 2),
        u64::from(result.absolute_worst_case()).into(),
        result.get_latency.quantile_ns(0.99).into(),
        result.get_latency.quantile_ns(0.999).into(),
    ]);
    row
}

const METRIC_COLUMNS: [&str; 7] = [
    "ops/s",
    "avg trials",
    "stddev",
    "worst (avg)",
    "worst (abs)",
    "p99 ns",
    "p99.9 ns",
];

fn main() {
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    let threads: usize = env_or("SWEEP_THREADS", host.min(4));
    let ops: u64 = env_or("SWEEP_OPS", 50_000);
    let emulated: usize = env_or("SWEEP_EMULATED", 32);
    let repeat: usize = env_or("BENCH_REPEAT", 1);
    let only: Option<String> = std::env::var("SWEEP_ONLY").ok().filter(|s| !s.is_empty());
    let enabled = |tag: &str| match only.as_deref() {
        Some(o) => o == tag,
        None => true,
    };
    let mut sink = JsonSink::from_env();

    let base = WorkloadConfig {
        threads,
        emulated_per_thread: emulated,
        space_factor: 2.0,
        prefill: 0.5,
        target_ops_per_thread: ops,
        seed: 0x5EEB,
    };

    println!("# §6 sweeps and ablations (threads = {threads}, N/n = {emulated}, {ops} ops/thread)");
    println!();

    if enabled("core") {
        core_sweeps(&base, repeat, &mut sink);
    }
    if enabled("topology") {
        topology_sweeps(&base, repeat, &mut sink);
    }
    if enabled("batch") {
        batch_sweeps(repeat, &mut sink);
    }
    if enabled("fault") {
        fault_sweeps(repeat, &mut sink);
    }
}

/// Sections 1–10: the classic §6 sweeps and ablations.
fn core_sweeps(base: &WorkloadConfig, repeat: usize, sink: &mut Option<JsonSink>) {
    let threads = base.threads;
    let ops = base.target_ops_per_thread;

    // 1. Pre-fill sweep.
    let mut header = vec!["prefill %", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut prefill_table = Table::new(&header);
    for prefill in [0.0, 0.25, 0.5, 0.75, 0.9] {
        for algorithm in Algorithm::figure2_set() {
            let config = WorkloadConfig {
                prefill,
                ..base.clone()
            };
            let result = la_bench::workload::run_workload_repeated(algorithm, &config, repeat);
            record(
                sink,
                &result,
                format!("sweeps/prefill={prefill}/{}", result.algorithm),
            );
            prefill_table.push_row(result_row(
                &result,
                vec![
                    Cell::FloatPrec(prefill * 100.0, 0),
                    result.algorithm.clone().into(),
                ],
            ));
        }
    }
    println!(
        "## Pre-fill sweep (SWEEP-PREFILL)\n\n{}",
        prefill_table.to_markdown()
    );

    // 2. Array-size sweep (L/N).
    let mut header = vec!["L/N", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut size_table = Table::new(&header);
    for space_factor in [2.0, 3.0, 4.0] {
        for algorithm in Algorithm::figure2_set() {
            let config = WorkloadConfig {
                space_factor,
                ..base.clone()
            };
            let result = la_bench::workload::run_workload_repeated(algorithm, &config, repeat);
            record(
                sink,
                &result,
                format!("sweeps/space={space_factor}/{}", result.algorithm),
            );
            size_table.push_row(result_row(
                &result,
                vec![
                    Cell::FloatPrec(space_factor, 1),
                    result.algorithm.clone().into(),
                ],
            ));
        }
    }
    println!(
        "## Array-size sweep (SWEEP-PREFILL, L ∈ [2N, 4N])\n\n{}",
        size_table.to_markdown()
    );

    // 3. Deterministic comparison (TAB-DETERMINISTIC).
    let mut header = vec!["algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut det_table = Table::new(&header);
    let det_config = WorkloadConfig {
        // The deterministic scan is O(held) per Get, so keep the cell small
        // enough to finish while still showing the gap.
        target_ops_per_thread: (ops / 5).max(1_000),
        ..base.clone()
    };
    for algorithm in [
        Algorithm::LevelArray,
        Algorithm::Random,
        Algorithm::LinearProbing,
        Algorithm::LinearScan,
    ] {
        let result = la_bench::workload::run_workload_repeated(algorithm, &det_config, repeat);
        record(
            sink,
            &result,
            format!("sweeps/deterministic/{}", result.algorithm),
        );
        det_table.push_row(result_row(&result, vec![result.algorithm.clone().into()]));
    }
    println!(
        "## Deterministic LinearScan comparison (TAB-DETERMINISTIC)\n\n{}",
        det_table.to_markdown()
    );

    // 4. Ablations: probes per batch and TAS primitive.
    let mut header = vec!["variant"];
    header.extend(METRIC_COLUMNS);
    let mut ablation_table = Table::new(&header);
    for algorithm in [
        Algorithm::LevelArray,
        Algorithm::LevelArrayProbes(2),
        Algorithm::LevelArrayProbes(4),
        Algorithm::LevelArrayProbes(16),
        Algorithm::LevelArraySwapTas,
    ] {
        let result = la_bench::workload::run_workload_repeated(algorithm, base, repeat);
        record(
            sink,
            &result,
            format!("sweeps/ablation/{}", result.algorithm),
        );
        ablation_table.push_row(result_row(&result, vec![result.algorithm.clone().into()]));
    }
    println!(
        "## LevelArray ablations (DESIGN.md §7)\n\n{}",
        ablation_table.to_markdown()
    );

    // 5. Shard-count sweep: how the sharded variant scales with its own knob.
    let mut header = vec!["shards", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut shard_table = Table::new(&header);
    for shards in [1usize, 2, 4, 8] {
        let algorithm = Algorithm::ShardedLevelArray { shards };
        let result = la_bench::workload::run_workload_repeated(algorithm, base, repeat);
        record(
            sink,
            &result,
            format!("sweeps/shards={shards}/{}", result.algorithm),
        );
        shard_table.push_row(result_row(
            &result,
            vec![shards.into(), result.algorithm.clone().into()],
        ));
    }
    println!(
        "## Shard-count sweep (ShardedLevelArray)\n\n{}",
        shard_table.to_markdown()
    );

    // 6. Epoch-cap sweep: the elastic chain against its own knob.  Every
    // cell starts at an eighth of the contention bound; deeper caps admit
    // more headroom, the minimum cap of 3 (2.625n total slots) forces heavy
    // fallback probing of old epochs near full load.
    let mut header = vec!["max epochs", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut elastic_table = Table::new(&header);
    for max_epochs in [3usize, 4, 6, 8] {
        let algorithm = Algorithm::Elastic { max_epochs };
        let result = la_bench::workload::run_workload_repeated(algorithm, base, repeat);
        record(
            sink,
            &result,
            format!("sweeps/epochs={max_epochs}/{}", result.algorithm),
        );
        elastic_table.push_row(result_row(
            &result,
            vec![max_epochs.into(), result.algorithm.clone().into()],
        ));
    }
    println!(
        "## Epoch-cap sweep (ElasticLevelArray)\n\n{}",
        elastic_table.to_markdown()
    );

    // 7. Growth-storm sweep: Get hammered *across* forced growth and
    // retirement.  Zero pre-fill makes every churn round acquire the full
    // quota (doubling the chain through ~log2(divisor) epochs) and then
    // drain it completely (auto-retiring the old epochs), so the measured
    // operations repeatedly cross the lock-free chain's growth/retirement
    // seam instead of settling into a steady state.  Deeper divisors mean
    // more forced doublings per storm.
    let mut header = vec!["initial bound", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut storm_table = Table::new(&header);
    let storm_base = WorkloadConfig {
        prefill: 0.0,
        ..base.clone()
    };
    for divisor in [4usize, 16, 64] {
        let algorithm = Algorithm::ElasticStorm { divisor };
        let result = la_bench::workload::run_workload_repeated(algorithm, &storm_base, repeat);
        record(
            sink,
            &result,
            format!("sweeps/storm={divisor}/{}", result.algorithm),
        );
        storm_table.push_row(result_row(
            &result,
            vec![
                format!("n/{divisor}").into(),
                result.algorithm.clone().into(),
            ],
        ));
    }
    println!(
        "## Growth-storm sweep (ElasticLevelArray, zero pre-fill)\n\n{}",
        storm_table.to_markdown()
    );

    // 8. Slot-layout ablation, Get side: the full multi-threaded workload
    // over the three slot representations.  The packed layout packs 512
    // slots per cache line, so this is where its denser false sharing would
    // show; the hybrid layout keeps the contended batch-0 head word-per-slot
    // and packs only the tail and backup.
    const LAYOUT_ABLATION: [(&str, Algorithm); 3] = [
        ("word-per-slot", Algorithm::LevelArray),
        ("packed", Algorithm::LevelArrayPacked),
        ("hybrid", Algorithm::LevelArrayHybrid),
    ];
    let mut header = vec!["layout", "threads", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut layout_table = Table::new(&header);
    for (layout, algorithm) in LAYOUT_ABLATION {
        let result = la_bench::workload::run_workload_repeated(algorithm, base, repeat);
        record(
            sink,
            &result,
            format!("sweeps/layout={layout}/{}", result.algorithm),
        );
        layout_table.push_row(result_row(
            &result,
            vec![
                layout.into(),
                threads.into(),
                result.algorithm.clone().into(),
            ],
        ));
    }
    // The contended cell: the same ablation at >= 8 threads, where the
    // cache-line traffic of concurrent Gets — the trade the hybrid layout is
    // built around — actually bites.
    let contended_threads = threads.max(8);
    let contended = WorkloadConfig {
        threads: contended_threads,
        ..base.clone()
    };
    for (layout, algorithm) in LAYOUT_ABLATION {
        let result = la_bench::workload::run_workload_repeated(algorithm, &contended, repeat);
        record(
            sink,
            &result,
            format!(
                "sweeps/layout={layout}/threads={contended_threads}/{}",
                result.algorithm
            ),
        );
        layout_table.push_row(result_row(
            &result,
            vec![
                layout.into(),
                contended_threads.into(),
                result.algorithm.clone().into(),
            ],
        ));
    }
    println!(
        "## Slot-layout ablation, Get side (SlotLayout)\n\n{}",
        layout_table.to_markdown()
    );

    // 9. Collect-latency sweep, scan side: the single-threaded latency of one
    // Collect pass at fixed occupancies, for both layouts.  This is the
    // paper's §1 pitch — Collect reads a small, cache-friendly region — taken
    // to its memory floor: the packed layout snapshots one word per 64 slots.
    // collect_into scans into a reused buffer, so the measured loop is the
    // scan itself, not the allocator.
    let collect_n: usize = env_or("SWEEP_COLLECT_N", 4096);
    let collect_iters: u32 = env_or("SWEEP_COLLECT_ITERS", 10_000);
    let mut collect_table = Table::new(&[
        "layout",
        "n",
        "occupancy",
        "collects/s",
        "ns/collect",
        "held seen",
    ]);
    // Warm, then median-of-repeat damping, exactly like the workload cells:
    // a single collect is a microsecond-scale measurement, far too exposed
    // to frequency scaling for a one-shot number to diff.
    let median_scan = |out: &mut Vec<Name>, pass: &mut dyn FnMut(&mut Vec<Name>)| {
        for _ in 0..collect_iters / 10 + 1 {
            out.clear();
            pass(out);
        }
        let mut runs: Vec<(f64, usize)> = (0..repeat.max(1))
            .map(|_| {
                let started = Instant::now();
                let mut seen = 0usize;
                for _ in 0..collect_iters {
                    out.clear();
                    pass(out);
                    seen += out.len();
                }
                (started.elapsed().as_secs_f64(), seen)
            })
            .collect();
        runs.sort_by(|a, b| a.0.total_cmp(&b.0));
        runs[runs.len() / 2]
    };
    let emit_collect = |sink: &mut Option<JsonSink>,
                        table: &mut Table,
                        label: &str,
                        occupancy: f64,
                        elapsed_s: f64,
                        seen: usize| {
        let per_collect_ns = elapsed_s * 1e9 / f64::from(collect_iters);
        let collects_per_s = if elapsed_s == 0.0 {
            0.0
        } else {
            f64::from(collect_iters) / elapsed_s
        };
        if let Some(sink) = sink.as_mut() {
            sink.write(
                &JsonRecord::new()
                    .field(
                        "key",
                        format!("sweeps/collect/n={collect_n}/occ={occupancy}/{label}"),
                    )
                    .field("bench", "sweeps")
                    .field("algorithm", format!("Collect({label})"))
                    .field("slots", collect_n as u64)
                    .field("occupancy", occupancy)
                    .field("collect_iters", u64::from(collect_iters))
                    .field("throughput", collects_per_s)
                    .field("collect_ns", per_collect_ns),
            );
        }
        table.push_row(vec![
            label.into(),
            collect_n.into(),
            Cell::FloatPrec(occupancy, 2),
            Cell::FloatPrec(collects_per_s, 0),
            Cell::FloatPrec(per_collect_ns, 0),
            (seen as u64 / u64::from(collect_iters)).into(),
        ]);
    };
    let layout_configs: [(&str, LevelArrayConfig); 3] = [
        (
            "word-per-slot",
            LevelArrayConfig::new(collect_n).slot_layout(SlotLayout::WordPerSlot),
        ),
        (
            "packed",
            LevelArrayConfig::new(collect_n).slot_layout(SlotLayout::Packed),
        ),
        ("hybrid", LevelArrayConfig::new(collect_n).hybrid_layout()),
    ];
    for (label, config) in &layout_configs {
        for occupancy in [0.1, 0.5, 0.9] {
            let array = config.clone().build().expect("valid configuration");
            let mut rng = default_rng(0xC011EC7);
            let target = ((collect_n as f64) * occupancy) as usize;
            let held: Vec<_> = (0..target).map(|_| array.get(&mut rng).name()).collect();

            let mut out = Vec::with_capacity(collect_n);
            let (elapsed_s, seen) = median_scan(&mut out, &mut |out| array.collect_into(out));
            for name in held {
                array.free(name);
            }
            emit_collect(sink, &mut collect_table, label, occupancy, elapsed_s, seen);
        }
    }
    // The scalar reference: the pre-batching word-at-a-time walk over the
    // exact bit pattern of the packed cell, so the committed table always
    // carries the batched-vs-scalar ratio the vectorised scans claim.
    for occupancy in [0.1, 0.5, 0.9] {
        let array = LevelArrayConfig::new(collect_n)
            .slot_layout(SlotLayout::Packed)
            .build()
            .expect("valid configuration");
        let mut rng = default_rng(0xC011EC7);
        let target = ((collect_n as f64) * occupancy) as usize;
        let held: Vec<_> = (0..target).map(|_| array.get(&mut rng).name()).collect();
        let reference = PackedSlots::new(array.capacity());
        for name in &held {
            assert!(reference.try_acquire(name.index(), TasKind::CompareExchange));
        }

        let mut out = Vec::with_capacity(collect_n);
        let len = reference.len();
        let (elapsed_s, seen) = median_scan(&mut out, &mut |out| {
            reference.for_each_held_scalar(0..len, |idx| out.push(Name::new(idx)));
        });
        for name in held {
            array.free(name);
        }
        emit_collect(
            sink,
            &mut collect_table,
            "packed-scalar",
            occupancy,
            elapsed_s,
            seen,
        );
    }
    println!(
        "## Collect-latency sweep, scan side (SlotLayout)\n\n{}",
        collect_table.to_markdown()
    );

    // 10. Free→Get hint micro: the same-thread free-then-get churn pair on a
    // nearly full array sized with almost no slack, so the probe sequence a
    // hint-less Get has to run is expensive — the shape a thread pool's
    // register/deregister churn takes under peak load.  The hint-on cell
    // retries the just-freed slot with one cache-hot CAS instead.
    let hint_n: usize = env_or("SWEEP_HINT_N", 256).max(2);
    let hint_pairs: u32 = env_or("SWEEP_HINT_PAIRS", 200_000);
    let mut hint_table = Table::new(&["hint", "n", "pairs/s", "ns/pair", "avg probes"]);
    for (label, enabled) in [("off", false), ("on", true)] {
        let array = LevelArrayConfig::new(hint_n)
            .space_factor(1.15)
            .free_hint(enabled)
            .build()
            .expect("valid configuration");
        let mut rng = default_rng(0xF1EE7);
        // Hold all but one slot of the bound: every measured Get probes a
        // nearly full array unless the hint short-circuits it.
        let held: Vec<_> = (0..hint_n - 1)
            .map(|_| array.get(&mut rng).name())
            .collect();
        // Warm.
        for _ in 0..1_000 {
            let got = array.get(&mut rng);
            array.free(got.name());
        }
        let mut probe_sum = 0u64;
        let mut runs: Vec<f64> = (0..repeat.max(1))
            .map(|_| {
                let started = Instant::now();
                for _ in 0..hint_pairs {
                    let got = array.get(&mut rng);
                    probe_sum += u64::from(got.probes());
                    array.free(got.name());
                }
                started.elapsed().as_secs_f64()
            })
            .collect();
        runs.sort_by(f64::total_cmp);
        let elapsed_s = runs[runs.len() / 2];
        let total_pairs = u64::from(hint_pairs) * repeat.max(1) as u64;
        let mean_probes = probe_sum as f64 / total_pairs as f64;
        for name in held {
            array.free(name);
        }

        let pair_ns = elapsed_s * 1e9 / f64::from(hint_pairs);
        let pairs_per_s = if elapsed_s == 0.0 {
            0.0
        } else {
            f64::from(hint_pairs) / elapsed_s
        };
        if let Some(sink) = sink.as_mut() {
            sink.write(
                &JsonRecord::new()
                    .field("key", format!("sweeps/hint/n={hint_n}/{label}"))
                    .field("bench", "sweeps")
                    .field("algorithm", format!("FreeGetPair(hint={label})"))
                    .field("contention", hint_n as u64)
                    .field("pairs", u64::from(hint_pairs))
                    .field("throughput", pairs_per_s)
                    .field("pair_ns", pair_ns)
                    .field("mean_probes", mean_probes),
            );
        }
        hint_table.push_row(vec![
            label.into(),
            hint_n.into(),
            Cell::FloatPrec(pairs_per_s, 0),
            Cell::FloatPrec(pair_ns, 1),
            Cell::FloatPrec(mean_probes, 3),
        ]);
    }
    println!(
        "## Free→Get hint micro (free_hint)\n\n{}",
        hint_table.to_markdown()
    );
}

/// Section 11: the topology sweeps behind `make bench-topology`.
///
/// Both cells run a ≥8-thread contended `Get` storm (75% pre-fill) over a
/// bound large enough that a flat epoch's random-probe working set outgrows
/// the fast cache levels while one shard group stays hot under the sticky
/// home routing — the locality the hierarchical composition buys even when
/// the threads time-share cores:
///
/// * **Shard-group scaling** — the hierarchical array against its own
///   `shard_group` knob, with the flat elastic array (`shard_group = 0`) as
///   the baseline the ISSUE's acceptance compares against.
/// * **False-sharing tax** — word-per-slot vs bit-packed slots for both the
///   hierarchical and the flat composition: packing 64 slots per atomic
///   word makes concurrent `Get`s collide on cache lines, and the storm
///   prices that.
fn topology_sweeps(base: &WorkloadConfig, repeat: usize, sink: &mut Option<JsonSink>) {
    let quick = std::env::var("MICRO_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let threads = base.threads.max(8);
    let emulated: usize = env_or("SWEEP_TOPOLOGY_EMULATED", if quick { 64 } else { 512 });
    let ops: u64 = env_or(
        "SWEEP_TOPOLOGY_OPS",
        if quick {
            2_000
        } else {
            base.target_ops_per_thread
        },
    );
    let prefill: f64 = env_or("SWEEP_TOPOLOGY_PREFILL", 0.9);
    // Tighter than the paper's L/N ∈ [2, 4] on purpose: at 90% pre-fill and
    // 1.5 slots per participant the probe sequence does real work per Get,
    // so the storm prices *where* those probes land (a flat epoch's
    // 100-KB-scale working set vs one cache-resident shard) instead of the
    // fixed per-op overhead around a single lucky probe.
    let space_factor: f64 = env_or("SWEEP_TOPOLOGY_SPACE", 1.5);
    let storm = WorkloadConfig {
        threads,
        emulated_per_thread: emulated,
        prefill,
        space_factor,
        target_ops_per_thread: ops,
        ..base.clone()
    };
    let n = storm.logical_participants();

    // Shard-group scaling: 0 (flat epochs) is the comparison baseline.
    let groups: Vec<usize> = std::env::var("SWEEP_TOPOLOGY_GROUPS")
        .ok()
        .map(|s| s.split(',').filter_map(|g| g.trim().parse().ok()).collect())
        .filter(|g: &Vec<usize>| !g.is_empty())
        .unwrap_or_else(|| vec![0, 16, 64, 256]);
    let mut header = vec!["shard group", "epoch shards", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut scaling_table = Table::new(&header);
    for group in groups {
        let algorithm = Algorithm::Hierarchical { shard_group: group };
        let result = la_bench::workload::run_workload_repeated(algorithm, &storm, repeat);
        record(
            sink,
            &result,
            format!("sweeps/topology/group={group}/{}", result.algorithm),
        );
        let shards = if group == 0 {
            1
        } else {
            n.div_ceil(group).max(1)
        };
        scaling_table.push_row(result_row(
            &result,
            vec![group.into(), shards.into(), result.algorithm.clone().into()],
        ));
    }
    println!(
        "## Hierarchical shard-group scaling (threads = {threads}, N = {n}, prefill {prefill})\n\n{}",
        scaling_table.to_markdown()
    );

    // False-sharing tax: packed vs word slots under the same storm.
    let mut header = vec!["layout", "algorithm"];
    header.extend(METRIC_COLUMNS);
    let mut tax_table = Table::new(&header);
    for (layout, algorithm) in [
        ("word-per-slot", Algorithm::Hierarchical { shard_group: 64 }),
        ("packed", Algorithm::HierarchicalPacked { shard_group: 64 }),
        ("word-per-slot", Algorithm::Hierarchical { shard_group: 0 }),
        ("packed", Algorithm::HierarchicalPacked { shard_group: 0 }),
    ] {
        let result = la_bench::workload::run_workload_repeated(algorithm, &storm, repeat);
        record(
            sink,
            &result,
            format!("sweeps/topology/layout={layout}/{}", result.algorithm),
        );
        tax_table.push_row(result_row(
            &result,
            vec![layout.into(), result.algorithm.clone().into()],
        ));
    }
    println!(
        "## Packed-vs-word false-sharing tax (threads = {threads}, N = {n})\n\n{}",
        tax_table.to_markdown()
    );
}

/// Section 12: the batched-ops micro behind `make bench-batch`.
///
/// Single-threaded churn at 50% background occupancy: each round acquires a
/// batch of `k` names and releases it again, either through the batched
/// kernels (`get_many` + `free_many` — one multi-claim CAS per probed word,
/// one `fetch_and` per released word) or through the equivalent
/// `k`-singleton loops.  Per slot layout, because the batching argument is a
/// *word-level* one: packed words carry 64 slots per RMW, word-per-slot
/// falls back to the per-index loop and prices the pure call-overhead
/// saving.
fn batch_sweeps(repeat: usize, sink: &mut Option<JsonSink>) {
    let quick = std::env::var("MICRO_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let k: usize = env_or("SWEEP_BATCH_K", 16).max(1);
    let n: usize = env_or("SWEEP_BATCH_N", 256).max(2 * k);
    let rounds: u32 = env_or("SWEEP_BATCH_ROUNDS", if quick { 500 } else { 20_000 });

    let layout_configs: [(&str, LevelArrayConfig); 3] = [
        (
            "word-per-slot",
            LevelArrayConfig::new(n).slot_layout(SlotLayout::WordPerSlot),
        ),
        (
            "packed",
            LevelArrayConfig::new(n).slot_layout(SlotLayout::Packed),
        ),
        ("hybrid", LevelArrayConfig::new(n).hybrid_layout()),
    ];
    let mut batch_table = Table::new(&["layout", "variant", "k", "ops/s", "ns/op"]);
    for (layout, config) in &layout_configs {
        for (variant, batched) in [("singleton", false), ("batched", true)] {
            let array = config.clone().build().expect("valid configuration");
            let mut rng = default_rng(0xBA7C4);
            // Half the bound stays held as background load, so every round's
            // probes land in a realistically mixed bit pattern.
            let held: Vec<Name> = (0..n / 2).map(|_| array.get(&mut rng).name()).collect();
            let mut out = Vec::with_capacity(k);
            let mut names: Vec<Name> = Vec::with_capacity(k);
            let mut round = |rng: &mut larng::DefaultRng| {
                if batched {
                    out.clear();
                    let won = array.get_many(rng, k, &mut out);
                    debug_assert_eq!(won, k);
                    names.clear();
                    names.extend(out.iter().map(|got| got.name()));
                    array.free_many(&names);
                } else {
                    names.clear();
                    for _ in 0..k {
                        names.push(array.get(rng).name());
                    }
                    for &name in &names {
                        array.free(name);
                    }
                }
            };
            // Warm, then keep the median run, like every other cell here.
            for _ in 0..(rounds / 10 + 1) {
                round(&mut rng);
            }
            let mut runs: Vec<f64> = (0..repeat.max(1))
                .map(|_| {
                    let started = Instant::now();
                    for _ in 0..rounds {
                        round(&mut rng);
                    }
                    started.elapsed().as_secs_f64()
                })
                .collect();
            runs.sort_by(f64::total_cmp);
            let elapsed_s = runs[runs.len() / 2];
            for name in held {
                array.free(name);
            }

            // One round = k acquisitions + k releases.
            let ops = 2 * k as u64 * u64::from(rounds);
            let ops_per_s = if elapsed_s == 0.0 {
                0.0
            } else {
                ops as f64 / elapsed_s
            };
            let op_ns = elapsed_s * 1e9 / ops as f64;
            if let Some(sink) = sink.as_mut() {
                sink.write(
                    &JsonRecord::new()
                        .field("key", format!("sweeps/batch/k={k}/{layout}/{variant}"))
                        .field("bench", "sweeps")
                        .field("algorithm", format!("BatchChurn({layout}, {variant})"))
                        .field("contention", n as u64)
                        .field("batch_k", k as u64)
                        .field("rounds", u64::from(rounds))
                        .field("throughput", ops_per_s)
                        .field("op_ns", op_ns),
                );
            }
            batch_table.push_row(vec![
                (*layout).into(),
                variant.into(),
                k.into(),
                Cell::FloatPrec(ops_per_s, 0),
                Cell::FloatPrec(op_ns, 1),
            ]);
        }
    }
    println!(
        "## Batched get_many/free_many vs k-singleton loops (n = {n}, k = {k})\n\n{}",
        batch_table.to_markdown()
    );
}

/// Section 13: the crash-storm cell behind `make fault-storm`.
///
/// A contended get/free churn in which every operation runs under
/// `catch_unwind` and recovery — the retry/orphan/sweep protocol a
/// crash-robust client needs — is part of the measured path.  In a normal
/// build the failpoints are compiled out, so the cell prices the *guards
/// alone* (key `sweeps/fault/storm=guards`): that is the baseline recorded
/// in `bench/baselines/`, and drift on it is the cost of the robustness
/// layer itself.  Under `RUSTFLAGS="--cfg la_fault"` the cell arms
/// [`la_fault::FaultPlan::storm`] (seed `LA_FAULT_SEED`, default `0xF417`)
/// and prices survival instead (key `sweeps/fault/storm=armed`) — the two
/// keys are distinct on purpose, so an armed run never diffs against the
/// guards-only baseline.
fn fault_sweeps(repeat: usize, sink: &mut Option<JsonSink>) {
    let quick = std::env::var("MICRO_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
    let threads: usize = env_or("SWEEP_FAULT_THREADS", 4).max(1);
    let ops: u64 = env_or("SWEEP_FAULT_OPS", if quick { 5_000 } else { 100_000 });
    let seed: u64 = env_or("LA_FAULT_SEED", 0xF417);
    let armed = cfg!(la_fault);
    let mode = if armed { "armed" } else { "guards" };
    if armed {
        la_fault::reset();
        la_fault::install_quiet_hook();
        la_fault::configure(la_fault::FaultPlan::storm(seed));
    }

    let array = levelarray::ShardedLevelArray::new(threads * 16, threads.min(4));
    let mut deaths_total = 0u64;
    let mut rollbacks_total = 0u64;
    let mut runs: Vec<f64> = Vec::with_capacity(repeat.max(1));
    for rep in 0..repeat.max(1) {
        let started = Instant::now();
        let (deaths, rollbacks) = std::thread::scope(|scope| {
            let array = &array;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        let mut rng = default_rng(seed ^ (0xFA17 * (t as u64 + 1) + rep as u64));
                        let mut deaths = 0u64;
                        let mut rollbacks = 0u64;
                        let mut orphans: Vec<Name> = Vec::new();
                        let catching = |f: &mut dyn FnMut()| {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
                        };
                        for _ in 0..ops {
                            let mut held: Option<Name> = None;
                            match catching(&mut || {
                                held = array.try_get(&mut rng).map(|got| got.name());
                            }) {
                                Ok(()) => {}
                                Err(payload) => {
                                    // A simulated death mid-acquisition held
                                    // nothing; any other injected unwind
                                    // rolled back.  Both cost one lost op.
                                    if payload.downcast_ref::<la_fault::ThreadDeath>().is_some() {
                                        deaths += 1;
                                    } else {
                                        rollbacks += 1;
                                    }
                                    continue;
                                }
                            }
                            let Some(name) = held else { continue };
                            loop {
                                match catching(&mut || array.free(name)) {
                                    Ok(()) => break,
                                    Err(payload) => {
                                        if payload.downcast_ref::<la_fault::ThreadDeath>().is_some()
                                        {
                                            // The client died holding a name:
                                            // its successor inherits it as an
                                            // orphan to sweep.
                                            deaths += 1;
                                            orphans.push(name);
                                            break;
                                        }
                                        // `free` is all-or-nothing: retry.
                                        rollbacks += 1;
                                    }
                                }
                            }
                            // The recovery sweep is part of the measured
                            // path: a crash-robust client pays it inline.
                            if orphans.len() >= 8 {
                                while let Some(orphan) = orphans.last().copied() {
                                    match catching(&mut || array.free(orphan)) {
                                        Ok(()) => {
                                            orphans.pop();
                                        }
                                        Err(payload) => {
                                            if payload
                                                .downcast_ref::<la_fault::ThreadDeath>()
                                                .is_some()
                                            {
                                                deaths += 1;
                                                break;
                                            }
                                            rollbacks += 1;
                                        }
                                    }
                                }
                            }
                        }
                        // Final drain so the array ends each run empty.
                        for orphan in orphans {
                            loop {
                                if catching(&mut || array.free(orphan)).is_ok() {
                                    break;
                                }
                            }
                        }
                        (deaths, rollbacks)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fault-storm worker panicked"))
                .fold((0u64, 0u64), |(d, r), (dd, rr)| (d + dd, r + rr))
        });
        runs.push(started.elapsed().as_secs_f64());
        deaths_total += deaths;
        rollbacks_total += rollbacks;
        assert!(
            array.collect().is_empty(),
            "fault-storm cell leaked names between runs"
        );
    }
    if armed {
        la_fault::reset();
    }
    runs.sort_by(f64::total_cmp);
    let elapsed_s = runs[runs.len() / 2];
    let total_ops = ops * threads as u64;
    let ops_per_s = if elapsed_s == 0.0 {
        0.0
    } else {
        total_ops as f64 / elapsed_s
    };

    if let Some(sink) = sink.as_mut() {
        sink.write(
            &JsonRecord::new()
                .field("key", format!("sweeps/fault/storm={mode}"))
                .field("bench", "sweeps")
                .field("algorithm", format!("FaultStorm({mode})"))
                .field("threads", threads as u64)
                .field("total_ops", total_ops)
                .field("elapsed_s", elapsed_s)
                .field("throughput", ops_per_s)
                .field("deaths", deaths_total)
                .field("rollbacks", rollbacks_total),
        );
    }
    let mut fault_table = Table::new(&["mode", "threads", "ops/s", "deaths", "rollbacks"]);
    fault_table.push_row(vec![
        mode.into(),
        threads.into(),
        Cell::FloatPrec(ops_per_s, 0),
        deaths_total.into(),
        rollbacks_total.into(),
    ]);
    println!(
        "## Crash-storm churn under panic guards (mode = {mode})\n\n{}",
        fault_table.to_markdown()
    );
}
