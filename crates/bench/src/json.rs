//! Machine-readable bench output: a dependency-free JSON-lines emitter and
//! the matching flat-object parser.
//!
//! Every bench target honors the `BENCH_JSON=<path>` environment variable:
//! when set, each measured cell appends one JSON object per line to the file
//! (creating it if needed), alongside the human-readable Markdown tables.
//! The records are flat — string keys, scalar values — so the
//! `bench_diff` binary (and any ad-hoc tooling) can parse them without a
//! JSON dependency, and `bench/baselines/` can hold committed reference
//! tables produced by the exact same pipeline.
//!
//! Each record carries a `key` field uniquely identifying its cell (e.g.
//! `fig2/threads=2/LevelArray`); `bench_diff` joins baseline and current
//! runs on it.

use std::fmt::Write as _;
use std::io::Write as _;

/// A scalar JSON value (the only kind bench records contain).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON string.
    Str(String),
    /// A JSON number holding an integer.
    Int(u64),
    /// A JSON number.
    Float(f64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

impl JsonValue {
    /// The value as an `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) if v.is_finite() => {
                let _ = write!(out, "{v}");
            }
            // JSON has no NaN/Inf; degrade to null rather than emit garbage.
            JsonValue::Float(_) => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Null => out.push_str("null"),
        }
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Int(v)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Int(v as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<Option<u64>> for JsonValue {
    fn from(v: Option<u64>) -> Self {
        v.map_or(JsonValue::Null, JsonValue::Int)
    }
}

/// One flat JSON object, serialized as a single line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonRecord {
    fields: Vec<(String, JsonValue)>,
}

impl JsonRecord {
    /// Starts an empty record.
    pub fn new() -> Self {
        JsonRecord::default()
    }

    /// Appends a field (builder style; keys are kept in insertion order).
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            JsonValue::Str(key.clone()).render(&mut out);
            out.push(':');
            value.render(&mut out);
        }
        out.push('}');
        out
    }
}

/// Parses one line produced by [`JsonRecord::to_line`] (any flat JSON object
/// with scalar values works).
///
/// # Errors
///
/// Returns a description of the first syntax problem encountered.
pub fn parse_record(line: &str) -> Result<JsonRecord, String> {
    let mut p = Parser {
        chars: line.trim().chars().collect(),
        pos: 0,
    };
    let record = p.object()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(record)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        self.skip_ws();
        match self.bump() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected '{want}', found {other:?}")),
        }
    }

    fn object(&mut self) -> Result<JsonRecord, String> {
        self.expect('{')?;
        let mut record = JsonRecord::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(record);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let value = self.value()?;
            record.fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(record),
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let digit = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t') => self.literal("true", JsonValue::Bool(true)),
            Some('f') => self.literal("false", JsonValue::Bool(false)),
            Some('n') => self.literal("null", JsonValue::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        for want in word.chars() {
            if self.bump() != Some(want) {
                return Err(format!("bad literal (expected {word})"));
            }
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == '-' || c == '+' || c == '.'
            || c == 'e' || c == 'E' || c.is_ascii_digit())
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::Int(v));
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// An append-mode sink for JSON-lines records, opened from `BENCH_JSON`.
#[derive(Debug)]
pub struct JsonSink {
    file: std::fs::File,
}

impl JsonSink {
    /// Opens the sink named by the `BENCH_JSON` environment variable, if set
    /// and non-empty.  The file is opened in append mode so the bench targets
    /// of one suite run can share it.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be opened (a misspelled directory should
    /// fail the run loudly, not silently drop the results).
    pub fn from_env() -> Option<JsonSink> {
        let path = std::env::var("BENCH_JSON").ok().filter(|p| !p.is_empty())?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("BENCH_JSON: cannot open {path}: {e}"));
        Some(JsonSink { file })
    }

    /// Appends one record as a line.
    ///
    /// # Panics
    ///
    /// Panics if the write fails.
    pub fn write(&mut self, record: &JsonRecord) {
        let mut line = record.to_line();
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .expect("BENCH_JSON: write failed");
    }
}

/// Reads every record of a JSON-lines file (blank lines are skipped).
///
/// # Errors
///
/// Returns the file-read error or the first parse error, with its line
/// number.
pub fn read_records(path: &str) -> Result<Vec<JsonRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| parse_record(line).map_err(|e| format!("{path}:{}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trips_through_the_parser() {
        let record = JsonRecord::new()
            .field("key", "fig2/threads=2/LevelArray")
            .field("throughput", 123456.75f64)
            .field("ops", 4000u64)
            .field("healed", true)
            .field("ops_to_balance", Option::<u64>::None)
            .field("label", "quote\" slash\\ tab\t");
        let line = record.to_line();
        let parsed = parse_record(&line).unwrap();
        assert_eq!(parsed, record);
        assert_eq!(
            parsed.get("key").unwrap().as_str(),
            Some("fig2/threads=2/LevelArray")
        );
        assert_eq!(parsed.get("throughput").unwrap().as_f64(), Some(123456.75));
        assert_eq!(parsed.get("ops").unwrap().as_f64(), Some(4000.0));
        assert_eq!(parsed.get("healed"), Some(&JsonValue::Bool(true)));
        assert_eq!(parsed.get("ops_to_balance"), Some(&JsonValue::Null));
        assert_eq!(parsed.get("missing"), None);
    }

    #[test]
    fn parser_accepts_whitespace_and_rejects_garbage() {
        let parsed = parse_record(r#" { "a" : 1 , "b" : -2.5e3 } "#).unwrap();
        assert_eq!(parsed.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(parsed.get("b").unwrap().as_f64(), Some(-2500.0));
        assert!(parse_record("{").is_err());
        assert!(parse_record(r#"{"a":}"#).is_err());
        assert!(parse_record(r#"{"a":1} extra"#).is_err());
        assert!(parse_record(r#"{"a":truthy}"#).is_err());
        assert_eq!(parse_record("{}").unwrap(), JsonRecord::new());
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        let line = JsonRecord::new().field("x", f64::NAN).to_line();
        assert_eq!(line, r#"{"x":null}"#);
    }

    #[test]
    fn sink_appends_lines_readable_by_read_records() {
        let dir = std::env::temp_dir().join(format!("la-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let path_str = path.to_str().unwrap().to_string();

        // `from_env` reads BENCH_JSON; set it just for this test (no other
        // test in this crate touches the variable).
        std::env::set_var("BENCH_JSON", &path_str);
        {
            let mut sink = JsonSink::from_env().expect("BENCH_JSON is set");
            sink.write(&JsonRecord::new().field("key", "a").field("v", 1u64));
            sink.write(&JsonRecord::new().field("key", "b").field("v", 2u64));
        }
        {
            let mut sink = JsonSink::from_env().expect("append mode reopens");
            sink.write(&JsonRecord::new().field("key", "c").field("v", 3u64));
        }
        std::env::remove_var("BENCH_JSON");
        assert!(JsonSink::from_env().is_none());

        let records = read_records(&path_str).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2].get("key").unwrap().as_str(), Some("c"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
