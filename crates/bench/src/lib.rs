//! # la-bench — the benchmark harness of the LevelArray reproduction
//!
//! This crate contains the *library* pieces of the harness (workload
//! description, multi-threaded runner, result formatting); the runnable
//! targets live under `benches/` so that `cargo bench --workspace` regenerates
//! every figure of the paper's evaluation section:
//!
//! | target | reproduces |
//! |--------|------------|
//! | `fig2_panels` | Figure 2: throughput, average trials, standard deviation, worst case vs. thread count for LevelArray / ShardedLevelArray / Random / LinearProbing |
//! | `fig3_healing` | Figure 3: per-batch fill over time starting from an unbalanced state, for the plain and the sharded layout |
//! | `sweeps` | §6 text: pre-fill 0–90 %, `L/N ∈ [2, 4]`, the deterministic LinearScan comparison, probe-count / TAS / shard-count ablations |
//! | `micro` | Criterion micro-benchmarks: per-operation Get/Free/Collect cost, application overheads |
//!
//! Every target accepts environment variables to scale the run (see each
//! target's module docs); the defaults are sized so that the whole suite
//! completes in a few minutes on a laptop.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod histogram;
pub mod json;
pub mod report;
pub mod workload;

pub use histogram::LatencyHistogram;
pub use json::{JsonRecord, JsonSink, JsonValue};
pub use report::{format_markdown_table, Cell, Table};
pub use workload::{Algorithm, WorkloadConfig, WorkloadResult};
