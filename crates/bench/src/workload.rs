//! The multi-threaded register/deregister workload of the paper's §6.
//!
//! Parameters mirror the paper's methodology:
//!
//! * `threads` (the paper's `n`) — OS threads spawned.
//! * `emulated_per_thread` (the paper's `N/n`) — how many slots each thread
//!   holds at once, emulating `N = threads * emulated_per_thread` logical
//!   participants.
//! * `space_factor` (the paper's `L/N`) — slots per logical participant,
//!   swept over `[2, 4]` in the paper.
//! * `prefill` — fraction of each thread's quota registered up front and held
//!   for the whole run, so the measured traffic executes on a loaded array.
//! * `target_ops_per_thread` — how many Get+Free operations each thread
//!   performs in its main loop (the paper runs for a fixed wall-clock time;
//!   a fixed operation count keeps runs reproducible and CI-friendly, and the
//!   runner reports elapsed time so throughput is still meaningful).

use std::sync::Arc;
use std::time::{Duration, Instant};

use la_baselines::{LinearProbingArray, LinearScanArray, RandomArray};
use larng::{default_rng, SeedSequence};
use levelarray::{
    ActivityArray, GetStats, GrowthPolicy, LevelArrayConfig, ProbePolicy, ShardedLevelArray,
    SlotLayout, TasKind,
};

/// Which algorithm a workload run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's contribution with its default configuration.
    LevelArray,
    /// LevelArray with `c_i` probes per batch (ablation).
    LevelArrayProbes(u32),
    /// LevelArray using `swap` instead of `compare_exchange` (ablation).
    LevelArraySwapTas,
    /// LevelArray storing its slots bit-packed, 64 per atomic word
    /// (ablation): `Collect` scans 32× less memory, concurrent `Get`s share
    /// denser cache lines — the layout sweep measures both sides.
    LevelArrayPacked,
    /// LevelArray with the hybrid slot layout (ablation): the contended
    /// batch-0 head stays word-per-slot, the tail and backup are bit-packed,
    /// so concurrent `Get`s keep uncrowded cache lines where the traffic is
    /// while `Collect` still scans most of the array 64 slots per word.
    LevelArrayHybrid,
    /// LevelArray with the Free→Get hint cache enabled (ablation): `free`
    /// arms a per-thread hint and the next same-thread `Get` retries that
    /// slot with one cache-hot CAS before probing.
    LevelArrayHinted,
    /// The contention bound split across cache-padded shards with work
    /// stealing on local exhaustion (the ROADMAP's sharded-arrays item).
    ShardedLevelArray {
        /// Number of shards the namespace is partitioned into.
        shards: usize,
    },
    /// The elastic variant: started deliberately *under-provisioned* at an
    /// eighth of the cell's contention bound, so the measured run grows
    /// through epochs while serving traffic (the ROADMAP's registry-growth
    /// item).  Use `max_epochs >= 3` so the chain can cover the full bound.
    Elastic {
        /// Maximum simultaneously live epochs of the doubling chain.
        max_epochs: usize,
    },
    /// The hierarchical composition: an `ElasticLevelArray` whose epochs are
    /// groups of cache-padded shard cores, `shard_group` participants per
    /// shard (`0` keeps the epochs flat — the comparison baseline).  Built
    /// at the *full* contention bound with growth headroom, so the measured
    /// `Get`s exercise steady-state contended routing through sticky
    /// topology homes rather than forced growth.
    Hierarchical {
        /// Participants per shard within each epoch (0 = flat epochs).
        shard_group: usize,
    },
    /// [`Algorithm::Hierarchical`] with bit-packed slots: the false-sharing
    /// tax cell.  64 slots share one atomic word, so concurrent `Get`s
    /// collide on cache lines the word-per-slot layout keeps separate; under
    /// a ≥8-thread `Get` storm the gap between this cell and the
    /// word-per-slot hierarchical cell *is* the tax.
    HierarchicalPacked {
        /// Participants per shard within each epoch (0 = flat epochs).
        shard_group: usize,
    },
    /// The growth-storm cell: an elastic array started at `1/divisor` of the
    /// cell's contention bound and driven with **zero pre-fill**, so every
    /// churn round acquires the full quota (forcing the chain to double
    /// repeatedly) and then drains it completely (letting the deferred
    /// retirement checks shrink the chain again).  The measured `Get`s
    /// therefore hammer the lock-free epoch chain *across* forced growth and
    /// retirement, not merely after a one-time warm-up — the seam the
    /// `ElasticLevelArray` retirement protocol is built for.
    ElasticStorm {
        /// How deeply under-provisioned the initial epoch is (`n / divisor`).
        /// The epoch cap is derived: `⌊log2 divisor⌋ + 1` doublings, enough
        /// headroom that a `Get` never fails even mid-storm.
        divisor: usize,
    },
    /// Uniform random probing over a flat array.
    Random,
    /// Linear probing from a random start.
    LinearProbing,
    /// Deterministic left-to-right scan.
    LinearScan,
}

impl Algorithm {
    /// The label used in tables (matches the paper's legend; the sharded
    /// variant reports its shard count).
    pub fn label(&self) -> String {
        match self {
            Algorithm::LevelArray => "LevelArray".to_string(),
            Algorithm::LevelArrayProbes(c) => format!("LevelArray(c={c})"),
            Algorithm::LevelArraySwapTas => "LevelArray(swap)".to_string(),
            Algorithm::LevelArrayPacked => "LevelArray(packed)".to_string(),
            Algorithm::LevelArrayHybrid => "LevelArray(hybrid)".to_string(),
            Algorithm::LevelArrayHinted => "LevelArray(hint)".to_string(),
            Algorithm::ShardedLevelArray { shards } => format!("ShardedLevelArray(s={shards})"),
            Algorithm::Elastic { max_epochs } => format!("Elastic(e<={max_epochs})"),
            Algorithm::Hierarchical { shard_group: 0 } => "Hierarchical(flat)".to_string(),
            Algorithm::Hierarchical { shard_group } => format!("Hierarchical(g={shard_group})"),
            Algorithm::HierarchicalPacked { shard_group: 0 } => {
                "Hierarchical(packed,flat)".to_string()
            }
            Algorithm::HierarchicalPacked { shard_group } => {
                format!("Hierarchical(packed,g={shard_group})")
            }
            Algorithm::ElasticStorm { divisor } => format!("ElasticStorm(n/{divisor})"),
            Algorithm::Random => "Random".to_string(),
            Algorithm::LinearProbing => "LinearProbing".to_string(),
            Algorithm::LinearScan => "LinearScan".to_string(),
        }
    }

    /// The three algorithms plotted in Figure 2, plus this reproduction's
    /// extension cells plotted alongside them: the sharded LevelArray and the
    /// elastic LevelArray (which starts under-provisioned and must grow
    /// through epochs mid-measurement).
    pub fn figure2_set() -> Vec<Algorithm> {
        vec![
            Algorithm::LevelArray,
            Algorithm::ShardedLevelArray { shards: 4 },
            Algorithm::Elastic { max_epochs: 4 },
            Algorithm::Random,
            Algorithm::LinearProbing,
        ]
    }

    /// Builds an instance from one shared typed configuration.
    ///
    /// The LevelArray variants apply their ablation on top of `config`; the
    /// flat baselines take `config.main_len()` slots for the same contention
    /// bound, so every algorithm is sized by the *same* rule
    /// ([`LevelArrayConfig::main_len`]) instead of re-deriving slot counts
    /// here.
    pub fn build(&self, config: &LevelArrayConfig) -> Arc<dyn ActivityArray> {
        let n = config.max_concurrency_value();
        let slots = config.main_len();
        match self {
            Algorithm::LevelArray => Arc::new(config.build().expect("valid configuration")),
            Algorithm::LevelArrayProbes(c) => Arc::new(
                config
                    .clone()
                    .probe_policy(ProbePolicy::Uniform(*c))
                    .build()
                    .expect("valid configuration"),
            ),
            Algorithm::LevelArraySwapTas => Arc::new(
                config
                    .clone()
                    .tas_kind(TasKind::Swap)
                    .build()
                    .expect("valid configuration"),
            ),
            Algorithm::LevelArrayPacked => Arc::new(
                config
                    .clone()
                    .slot_layout(SlotLayout::Packed)
                    .build()
                    .expect("valid configuration"),
            ),
            Algorithm::LevelArrayHybrid => Arc::new(
                config
                    .clone()
                    .hybrid_layout()
                    .build()
                    .expect("valid configuration"),
            ),
            Algorithm::LevelArrayHinted => Arc::new(
                config
                    .clone()
                    .free_hint(true)
                    .build()
                    .expect("valid configuration"),
            ),
            Algorithm::ShardedLevelArray { shards } => Arc::new(
                ShardedLevelArray::from_config(config, *shards).expect("valid configuration"),
            ),
            Algorithm::Elastic { max_epochs } => {
                // Start at an eighth of the bound.  The first epoch then has
                // 3n/8 slots (default space factor), below a single thread's
                // quota n/threads for the ≤2-thread cells, so growth is
                // *forced* even if the OS serializes the workers — the cell
                // measures elastic behavior, not thread-overlap luck.  The
                // doubling chain reaches full coverage by the second growth
                // event (3·(n/8)·(2³−1) = 2.625n slots), so a Get still
                // never fails; keep `max_epochs >= 3` for that headroom.
                let initial = (n / 8).max(1);
                Arc::new(
                    config
                        .clone()
                        .with_contention(initial)
                        .growth(GrowthPolicy::Doubling {
                            max_epochs: *max_epochs,
                        })
                        .build_elastic()
                        .expect("valid configuration"),
                )
            }
            Algorithm::Hierarchical { shard_group } => Arc::new(
                // Full bound, fixed growth: this cell measures steady-state
                // contended routing at *pinned* space.  Under a doubling
                // policy the flat composition quietly buys itself a roomier
                // epoch the first time a Get exhausts the cell — the sharded
                // backend's steal walk absorbs the same pressure without
                // growing — and the comparison stops being one of routing.
                // The Elastic/ElasticStorm cells own the growth axis.
                config
                    .clone()
                    .shard_group(*shard_group)
                    .growth(GrowthPolicy::Fixed)
                    .build_elastic()
                    .expect("valid configuration"),
            ),
            Algorithm::HierarchicalPacked { shard_group } => Arc::new(
                config
                    .clone()
                    .shard_group(*shard_group)
                    .slot_layout(SlotLayout::Packed)
                    .growth(GrowthPolicy::Fixed)
                    .build_elastic()
                    .expect("valid configuration"),
            ),
            Algorithm::ElasticStorm { divisor } => {
                // Deep under-provisioning: the chain must double through
                // ~log2(divisor) epochs before it covers the bound, and the
                // zero-prefill churn drains it back between rounds.  The cap
                // gives one doubling beyond coverage so a Get never fails
                // even while old epochs are sealed mid-retirement.
                let initial = (n / divisor).max(1);
                let max_epochs = (usize::BITS - divisor.leading_zeros()) as usize + 1;
                Arc::new(
                    config
                        .clone()
                        .with_contention(initial)
                        .growth(GrowthPolicy::Doubling { max_epochs })
                        .build_elastic()
                        .expect("valid configuration"),
                )
            }
            Algorithm::Random => Arc::new(RandomArray::with_slots(n, slots)),
            Algorithm::LinearProbing => Arc::new(LinearProbingArray::with_slots(n, slots)),
            Algorithm::LinearScan => Arc::new(LinearScanArray::with_slots(n, slots)),
        }
    }
}

/// Parameters of one workload cell (one point of one panel of Figure 2).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Number of OS threads (the paper's `n`, x-axis of Figure 2).
    pub threads: usize,
    /// Slots each thread holds at once (the paper's `N/n`; the paper uses
    /// `N = 1000 n`, which is far more slots than a laptop needs — the shape
    /// of the results is insensitive to this as long as it is ≥ 1).
    pub emulated_per_thread: usize,
    /// Array slots per logical participant (the paper's `L/N ∈ [2, 4]`).
    pub space_factor: f64,
    /// Fraction of each thread's quota registered up front and never freed.
    pub prefill: f64,
    /// Get+Free operations each thread performs in its measured main loop.
    pub target_ops_per_thread: u64,
    /// Master seed for all per-thread generators.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            threads: 4,
            emulated_per_thread: 8,
            space_factor: 2.0,
            prefill: 0.5,
            target_ops_per_thread: 100_000,
            seed: 0xB0B0,
        }
    }
}

impl WorkloadConfig {
    /// The total number of logical participants `N = threads * N/n`.
    pub fn logical_participants(&self) -> usize {
        self.threads * self.emulated_per_thread
    }

    /// The core-array configuration this cell drives: contention bound `N`
    /// with this cell's space factor.  Built once per cell and passed down to
    /// [`Algorithm::build`], so array sizing lives in `levelarray::config`
    /// alone.
    pub fn array_config(&self) -> LevelArrayConfig {
        LevelArrayConfig::new(self.logical_participants()).space_factor(self.space_factor)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range (zero threads/quota, space
    /// factor below 1, pre-fill outside `[0, 1)`).
    pub fn validate(&self) {
        assert!(self.threads > 0, "need at least one thread");
        assert!(
            self.emulated_per_thread > 0,
            "need a positive per-thread quota"
        );
        assert!(
            self.space_factor >= 1.0 && self.space_factor.is_finite(),
            "space factor must be >= 1"
        );
        assert!(
            (0.0..1.0).contains(&self.prefill),
            "prefill must be in [0, 1), got {}",
            self.prefill
        );
    }
}

/// The outcome of one workload cell.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// The algorithm exercised.
    pub algorithm: String,
    /// The configuration used.
    pub config: WorkloadConfig,
    /// Wall-clock time of the measured main loop.
    pub elapsed: Duration,
    /// Total Get+Free operations completed across all threads.
    pub total_ops: u64,
    /// Merged probe statistics over every measured Get.
    pub stats: GetStats,
    /// Per-thread worst-case probe counts (the paper averages these for the
    /// "worst case" panel to damp outlier executions).
    pub per_thread_max: Vec<u32>,
    /// Log-bucketed latency of every measured `Get`, merged over threads;
    /// the JSON record reports its p99 / p99.9 / max tail.
    pub get_latency: crate::histogram::LatencyHistogram,
}

impl WorkloadResult {
    /// Operations per second over the measured loop.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.total_ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// The paper's "worst case" metric: the per-thread maxima averaged over
    /// threads.
    pub fn mean_worst_case(&self) -> f64 {
        if self.per_thread_max.is_empty() {
            0.0
        } else {
            self.per_thread_max.iter().map(|&m| m as f64).sum::<f64>()
                / self.per_thread_max.len() as f64
        }
    }

    /// The absolute worst case over every operation of every thread.
    pub fn absolute_worst_case(&self) -> u32 {
        self.stats.max_probes()
    }

    /// The machine-readable form of this result for `BENCH_JSON` output:
    /// one flat record keyed by `key` (the cell's unique identifier within
    /// `bench`), carrying the quantities `bench_diff` compares plus the
    /// cell's workload shape.
    pub fn json_record(&self, bench: &str, key: String) -> crate::json::JsonRecord {
        crate::json::JsonRecord::new()
            .field("key", key)
            .field("bench", bench)
            .field("algorithm", self.algorithm.clone())
            .field("threads", self.config.threads)
            .field("emulated_per_thread", self.config.emulated_per_thread)
            .field("space_factor", self.config.space_factor)
            .field("prefill", self.config.prefill)
            .field("total_ops", self.total_ops)
            .field("elapsed_s", self.elapsed.as_secs_f64())
            .field("throughput", self.throughput())
            .field("mean_probes", self.stats.mean_probes())
            .field("stddev_probes", self.stats.stddev_probes())
            .field("worst_avg", self.mean_worst_case())
            .field("worst_abs", u64::from(self.absolute_worst_case()))
            .field("get_p99_ns", self.get_latency.quantile_ns(0.99))
            .field("get_p999_ns", self.get_latency.quantile_ns(0.999))
            .field("get_max_ns", self.get_latency.max_ns())
    }
}

/// One measured `Get` in this many has its latency recorded (see the
/// comment in the runner's main loop).
pub const LATENCY_SAMPLE_STRIDE: u64 = 16;

/// Runs one workload cell: `config.threads` threads hammering one shared
/// instance of `algorithm`.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`WorkloadConfig::validate`]).
pub fn run_workload(algorithm: Algorithm, config: &WorkloadConfig) -> WorkloadResult {
    config.validate();
    let array = algorithm.build(&config.array_config());
    let mut seeds = SeedSequence::new(config.seed);

    let quota = config.emulated_per_thread;
    let prefill_count = ((quota as f64) * config.prefill).floor() as usize;
    let churn = (quota - prefill_count).max(1);

    let mut per_thread_stats: Vec<(GetStats, crate::histogram::LatencyHistogram)> =
        Vec::with_capacity(config.threads);
    let started = Instant::now();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(config.threads);
        for _ in 0..config.threads {
            let array = Arc::clone(&array);
            let seed = seeds.next_seed();
            let target = config.target_ops_per_thread;
            handles.push(scope.spawn(move || {
                let mut rng = default_rng(seed);
                let mut stats = GetStats::new();
                let mut latency = crate::histogram::LatencyHistogram::new();

                // Pre-fill: register and hold (not measured).
                let held: Vec<_> = (0..prefill_count)
                    .map(|_| array.get(&mut rng).name())
                    .collect();

                // Main loop: churn the remaining quota.  Latency is sampled
                // one Get in LATENCY_SAMPLE_STRIDE: timing every operation
                // would put two clock reads (~40-60 ns on Linux) inside a
                // ~100 ns critical path and drown the differences the cells
                // exist to measure, while 1-in-16 keeps tens of thousands of
                // samples per cell — plenty for a p99.9.
                let mut ops = 0u64;
                let mut gets = 0u64;
                let mut churned = Vec::with_capacity(churn);
                while ops < target {
                    for _ in 0..churn {
                        let got = if gets % LATENCY_SAMPLE_STRIDE == 0 {
                            let get_started = Instant::now();
                            let got = array.get(&mut rng);
                            latency.record_duration(get_started.elapsed());
                            got
                        } else {
                            array.get(&mut rng)
                        };
                        gets += 1;
                        stats.record(&got);
                        churned.push(got.name());
                        ops += 1;
                    }
                    for name in churned.drain(..) {
                        array.free(name);
                        ops += 1;
                    }
                }

                // Tear down the pre-fill so the array is reusable.
                for name in held {
                    array.free(name);
                }
                (stats, latency)
            }));
        }
        for handle in handles {
            per_thread_stats.push(handle.join().expect("worker panicked"));
        }
    });
    let elapsed = started.elapsed();

    let mut merged = GetStats::new();
    let mut get_latency = crate::histogram::LatencyHistogram::new();
    let mut per_thread_max = Vec::with_capacity(per_thread_stats.len());
    for (stats, latency) in &per_thread_stats {
        merged.merge(stats);
        get_latency.merge(latency);
        per_thread_max.push(stats.max_probes());
    }
    let total_ops = merged.operations() * 2; // every measured Get has a Free

    WorkloadResult {
        algorithm: algorithm.label(),
        config: config.clone(),
        elapsed,
        total_ops,
        stats: merged,
        per_thread_max,
        get_latency,
    }
}

/// Runs one workload cell `repeats` times (clamped to at least once) and
/// returns the run with the *median throughput* — the standard damping for
/// scheduler noise when a cell's numbers feed a regression comparison
/// (`make bench-diff`).  The bench targets wire this to the `BENCH_REPEAT`
/// environment variable.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`WorkloadConfig::validate`]).
pub fn run_workload_repeated(
    algorithm: Algorithm,
    config: &WorkloadConfig,
    repeats: usize,
) -> WorkloadResult {
    let mut runs: Vec<WorkloadResult> = (0..repeats.max(1))
        .map(|_| run_workload(algorithm, config))
        .collect();
    runs.sort_by(|a, b| a.throughput().total_cmp(&b.throughput()));
    runs.swap_remove(runs.len() / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorkloadConfig {
        WorkloadConfig {
            threads: 2,
            emulated_per_thread: 4,
            space_factor: 2.0,
            prefill: 0.5,
            target_ops_per_thread: 2_000,
            seed: 7,
        }
    }

    #[test]
    fn every_algorithm_completes_the_workload() {
        for algorithm in [
            Algorithm::LevelArray,
            Algorithm::LevelArrayProbes(2),
            Algorithm::LevelArraySwapTas,
            Algorithm::LevelArrayPacked,
            Algorithm::LevelArrayHybrid,
            Algorithm::LevelArrayHinted,
            Algorithm::ShardedLevelArray { shards: 2 },
            Algorithm::ShardedLevelArray { shards: 4 },
            Algorithm::Elastic { max_epochs: 4 },
            Algorithm::Hierarchical { shard_group: 0 },
            Algorithm::Hierarchical { shard_group: 4 },
            Algorithm::HierarchicalPacked { shard_group: 4 },
            Algorithm::ElasticStorm { divisor: 8 },
            Algorithm::Random,
            Algorithm::LinearProbing,
            Algorithm::LinearScan,
        ] {
            let result = run_workload(algorithm, &small_config());
            assert!(result.total_ops >= 2 * 2_000, "{}", result.algorithm);
            assert!(result.stats.mean_probes() >= 1.0, "{}", result.algorithm);
            assert!(result.throughput() > 0.0, "{}", result.algorithm);
            assert_eq!(result.per_thread_max.len(), 2);
            assert!(result.mean_worst_case() >= 1.0);
            assert!(result.absolute_worst_case() >= 1);
            // Latency is sampled 1-in-LATENCY_SAMPLE_STRIDE with a coherent
            // tail.
            assert!(
                result.get_latency.count() >= result.stats.operations() / LATENCY_SAMPLE_STRIDE
                    && result.get_latency.count() <= result.stats.operations(),
                "{}: {} samples for {} gets",
                result.algorithm,
                result.get_latency.count(),
                result.stats.operations()
            );
            let (p99, p999, max) = result.get_latency.tail_ns();
            assert!(p99 <= p999 && p999 <= max, "{}", result.algorithm);
        }
    }

    #[test]
    fn levelarray_beats_baselines_on_worst_case_at_high_prefill() {
        // The paper's headline qualitative result: under load the LevelArray's
        // worst case is far below Random / LinearProbing.  Use a high pre-fill
        // to make the contrast visible even in a quick test, and aggregate a
        // few seeds: single-run worst cases are extreme-value statistics, so
        // one execution can tie on a lucky baseline run (this was a rare but
        // real flake with a single strict comparison).
        let worst_sum = |algorithm: Algorithm| -> u32 {
            [13u64, 14, 15]
                .iter()
                .map(|&seed| {
                    let config = WorkloadConfig {
                        threads: 2,
                        emulated_per_thread: 64,
                        space_factor: 2.0,
                        prefill: 0.9,
                        target_ops_per_thread: 20_000,
                        seed,
                    };
                    run_workload(algorithm, &config).absolute_worst_case()
                })
                .sum()
        };
        let level = worst_sum(Algorithm::LevelArray);
        let random = worst_sum(Algorithm::Random);
        let linear = worst_sum(Algorithm::LinearProbing);
        assert!(
            level < random,
            "LevelArray {level} vs Random {random} (summed over 3 seeds)"
        );
        assert!(
            level < linear,
            "LevelArray {level} vs LinearProbing {linear} (summed over 3 seeds)"
        );
    }

    #[test]
    fn logical_participants_and_labels() {
        let c = small_config();
        assert_eq!(c.logical_participants(), 8);
        assert_eq!(Algorithm::LevelArray.label(), "LevelArray");
        assert_eq!(Algorithm::LevelArrayProbes(3).label(), "LevelArray(c=3)");
        assert_eq!(Algorithm::LevelArrayPacked.label(), "LevelArray(packed)");
        assert_eq!(Algorithm::LevelArrayHybrid.label(), "LevelArray(hybrid)");
        assert_eq!(Algorithm::LevelArrayHinted.label(), "LevelArray(hint)");
        assert_eq!(
            Algorithm::ShardedLevelArray { shards: 4 }.label(),
            "ShardedLevelArray(s=4)"
        );
        assert_eq!(
            Algorithm::Elastic { max_epochs: 4 }.label(),
            "Elastic(e<=4)"
        );
        assert_eq!(
            Algorithm::ElasticStorm { divisor: 16 }.label(),
            "ElasticStorm(n/16)"
        );
        assert_eq!(
            Algorithm::Hierarchical { shard_group: 0 }.label(),
            "Hierarchical(flat)"
        );
        assert_eq!(
            Algorithm::Hierarchical { shard_group: 64 }.label(),
            "Hierarchical(g=64)"
        );
        assert_eq!(
            Algorithm::HierarchicalPacked { shard_group: 64 }.label(),
            "Hierarchical(packed,g=64)"
        );
        assert_eq!(Algorithm::figure2_set().len(), 5);
        assert!(Algorithm::figure2_set().contains(&Algorithm::ShardedLevelArray { shards: 4 }));
        assert!(Algorithm::figure2_set().contains(&Algorithm::Elastic { max_epochs: 4 }));
    }

    #[test]
    fn elastic_build_starts_small_and_grows_under_full_load() {
        let config = small_config();
        let array = Algorithm::Elastic { max_epochs: 4 }.build(&config.array_config());
        assert_eq!(array.algorithm_name(), "ElasticLevelArray");
        // Under-provisioned on purpose: an eighth of the logical participants.
        assert_eq!(
            array.max_participants(),
            (config.logical_participants() / 8).max(1)
        );
        // Holding the full quota — what the workload does at its peak — is
        // beyond the initial epoch, so the chain must grow to serve it.
        let mut rng = default_rng(9);
        let names: Vec<_> = (0..config.logical_participants())
            .map(|_| array.get(&mut rng).name())
            .collect();
        assert!(
            names.iter().any(|n| n.epoch() > 0),
            "growth must have tagged later names with a fresh epoch"
        );
        for name in names {
            array.free(name);
        }
        // And the full measured workload completes without a single failed
        // Get (get() would panic).
        let result = run_workload(Algorithm::Elastic { max_epochs: 4 }, &config);
        assert_eq!(result.algorithm, "Elastic(e<=4)");
        assert!(result.total_ops >= 2 * 2_000);
    }

    #[test]
    fn elastic_storm_builds_deeply_underprovisioned_and_survives_zero_prefill() {
        let config = WorkloadConfig {
            prefill: 0.0, // full-quota churn: acquire everything, drain everything
            ..small_config()
        };
        let array = Algorithm::ElasticStorm { divisor: 8 }.build(&config.array_config());
        assert_eq!(array.algorithm_name(), "ElasticLevelArray");
        assert_eq!(
            array.max_participants(),
            (config.logical_participants() / 8).max(1)
        );
        // The measured run crosses growth and drain boundaries repeatedly and
        // still never fails a Get (get() would panic).
        let result = run_workload(Algorithm::ElasticStorm { divisor: 8 }, &config);
        assert_eq!(result.algorithm, "ElasticStorm(n/8)");
        assert!(result.total_ops >= 2 * 2_000);
    }

    #[test]
    fn hierarchical_builds_at_full_bound_with_sharded_epochs() {
        let config = small_config();
        let array = Algorithm::Hierarchical { shard_group: 4 }.build(&config.array_config());
        assert_eq!(array.algorithm_name(), "ElasticLevelArray");
        // Full bound: steady-state cell, no forced growth.
        assert_eq!(array.max_participants(), config.logical_participants());
        let result = run_workload(Algorithm::Hierarchical { shard_group: 4 }, &config);
        assert_eq!(result.algorithm, "Hierarchical(g=4)");
        assert!(result.total_ops >= 2 * 2_000);
    }

    #[test]
    fn sharded_build_reports_shard_count_and_runs() {
        let config = small_config();
        let array = Algorithm::ShardedLevelArray { shards: 2 }.build(&config.array_config());
        assert_eq!(array.algorithm_name(), "ShardedLevelArray");
        // Capacity covers the logical participants with per-shard rounding.
        assert!(array.capacity() >= config.logical_participants() * 2);
        let result = run_workload(Algorithm::ShardedLevelArray { shards: 2 }, &config);
        assert_eq!(result.algorithm, "ShardedLevelArray(s=2)");
        assert!(result.total_ops >= 2 * 2_000);
    }

    #[test]
    #[should_panic(expected = "prefill must be in [0, 1)")]
    fn invalid_prefill_rejected() {
        let mut c = small_config();
        c.prefill = 1.0;
        run_workload(Algorithm::LevelArray, &c);
    }
}
