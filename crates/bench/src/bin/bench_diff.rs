//! Compares two `BENCH_JSON` result files and flags regressions.
//!
//! ```text
//! bench_diff <baseline.jsonl | baseline-dir> <current.jsonl>
//! ```
//!
//! When the baseline argument is a *directory*, the baseline file is
//! resolved per machine: `<dir>/<hostname>.json` if it exists (hostname from
//! `/proc/sys/kernel/hostname`, then `$HOSTNAME`), else `<dir>/smoke.json`
//! — so each reference machine can commit its own table under
//! `bench/baselines/` and `make bench-diff` picks the right one without any
//! configuration, while machines without a dedicated table still diff
//! against the shared smoke baseline (noisily, hence the non-blocking CI
//! step).
//!
//! Records are joined on their `key` field; for every key present in both
//! files the relative drift of `throughput` and `worst_avg` is computed
//! (skipping fields absent on either side, so healing records — which carry
//! `ops_to_balance` instead — are joined but only compared on what they
//! have).  A drift beyond the tolerance (default 20%, override with
//! `BENCH_DIFF_TOLERANCE=<fraction>`) **in the regressing direction** — a
//! throughput drop, a worst-case rise — is flagged, and the process exits
//! non-zero if anything was flagged; drift in the improving direction is
//! printed (`IMPROVED`) so a stale baseline is visible, but an optimisation
//! must not fail its own diff.  `make bench-diff` runs the reference cells
//! against the committed table in `bench/baselines/`.
//!
//! The worst-case metric compared is `worst_avg` — the per-thread maxima
//! averaged over threads, exactly the damping the paper applies to its
//! "worst case" panel, because the absolute single-operation maximum is an
//! extreme-value statistic too noisy to diff.  Worst-case drift is still a
//! handful of probes, so a purely relative test would flag 3 → 5 probes as
//! a 67% "regression"; the metric additionally gets an absolute slack
//! (default 3 probes, override with `BENCH_DIFF_WORST_SLACK=<probes>`) —
//! both thresholds must be exceeded to flag.
//!
//! Throughput is machine-dependent: treat a failure against a baseline
//! recorded on different hardware as a prompt to regenerate the baseline
//! (`rm bench/baselines/smoke.json && BENCH_JSON=$PWD/bench/baselines/smoke.json make bench-json`
//! on the reference machine — *not* the much smaller `bench-smoke` cells),
//! not necessarily as a regression.
//!
//! Throughput drift is additionally compensated for **uniform machine-speed
//! shift**: on a time-shared or frequency-scaled box (the 1-core CI VM in
//! particular) every cell speeds up or slows down together from run to run,
//! and that common component is machine state, not a code change.  The diff
//! computes each shared cell's raw throughput drift, takes the run median,
//! and flags a cell only when its drift deviates from that median beyond
//! the tolerance — so a uniformly 30%-slower run stays green while one cell
//! regressing 30% against an otherwise flat run still flags.  The raw and
//! median-relative drifts are both printed.  `worst_avg` is a probe count,
//! CPU-speed independent, and is compared absolutely as before.

use std::collections::BTreeMap;
use std::process::ExitCode;

use la_bench::json::{read_records, JsonRecord};

/// The metrics compared: cell throughput and the paper's damped worst case.
const METRICS: [&str; 2] = ["throughput", "worst_avg"];

fn index_by_key(records: Vec<JsonRecord>) -> BTreeMap<String, JsonRecord> {
    records
        .into_iter()
        .filter_map(|r| {
            let key = r.get("key")?.as_str()?.to_string();
            Some((key, r))
        })
        .collect()
}

/// The machine name baselines are keyed by: `/proc/sys/kernel/hostname`
/// (authoritative on Linux), then `$HOSTNAME`, then `"unknown"`.
fn hostname() -> String {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok().filter(|s| !s.is_empty()))
        .unwrap_or_else(|| "unknown".to_string())
}

/// Resolves the baseline argument: a file is used as-is; a directory is
/// resolved to its per-machine table (`<dir>/<hostname>.json`), falling back
/// to the shared `<dir>/smoke.json`.
fn resolve_baseline(arg: &str) -> String {
    if !std::fs::metadata(arg).map(|m| m.is_dir()).unwrap_or(false) {
        return arg.to_string();
    }
    let per_host = format!("{arg}/{}.json", hostname());
    if std::fs::metadata(&per_host).is_ok() {
        println!("bench_diff: using per-machine baseline {per_host}");
        per_host
    } else {
        let shared = format!("{arg}/smoke.json");
        println!(
            "bench_diff: no {per_host}, falling back to shared baseline {shared} \
             (regenerate per-machine with BENCH_JSON={per_host} make bench-json)"
        );
        shared
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_arg, current_path] = args.as_slice() else {
        eprintln!("usage: bench_diff <baseline.jsonl | baseline-dir> <current.jsonl>");
        return ExitCode::from(2);
    };
    let baseline_path = &resolve_baseline(baseline_arg);
    let tolerance: f64 = std::env::var("BENCH_DIFF_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.20);
    let worst_slack: f64 = std::env::var("BENCH_DIFF_WORST_SLACK")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);

    // A missing baseline is the first run on a fresh machine, not an error:
    // report, succeed, and let the caller's freshly recorded file *become*
    // the baseline.  (A baseline that exists but cannot be parsed is still
    // an error — silence there would mask corruption forever.)
    let baseline = match read_records(baseline_path) {
        Ok(records) => index_by_key(records),
        Err(_) if !std::path::Path::new(baseline_path).exists() => {
            println!(
                "bench_diff: no baseline at {baseline_path} — recording only \
                 (commit {current_path} there to start diffing)"
            );
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let current = match read_records(current_path) {
        Ok(records) => index_by_key(records),
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };

    // First pass: the run-median throughput drift across every shared cell.
    // The median captures the uniform machine-speed component of the run
    // (frequency scaling, a loaded 1-core VM); individual cells are then
    // judged *relative* to it.  The median is robust to the very
    // regressions this tool hunts — a genuine regression moves a few cells,
    // not the middle of the distribution.
    let mut throughput_drifts: Vec<f64> = baseline
        .iter()
        .filter_map(|(key, base)| {
            let cur = current.get(key)?;
            let b = base.get("throughput").and_then(|v| v.as_f64())?;
            let c = cur.get("throughput").and_then(|v| v.as_f64())?;
            (b > 0.0 && c > 0.0).then_some((c - b) / b)
        })
        .collect();
    throughput_drifts.sort_by(f64::total_cmp);
    let median_drift = throughput_drifts
        .get(throughput_drifts.len() / 2)
        .copied()
        .unwrap_or(0.0);
    if !throughput_drifts.is_empty() {
        println!(
            "bench_diff: run-median throughput drift {:+.1}% over {} cells \
             (compensated as uniform machine-speed shift)",
            median_drift * 100.0,
            throughput_drifts.len()
        );
    }

    let mut flagged = 0usize;
    let mut compared = 0usize;
    for (key, base) in &baseline {
        let Some(cur) = current.get(key) else {
            println!("MISSING  {key}: present in baseline only");
            continue;
        };
        for metric in METRICS {
            let (Some(b), Some(c)) = (
                base.get(metric).and_then(|v| v.as_f64()),
                cur.get(metric).and_then(|v| v.as_f64()),
            ) else {
                continue;
            };
            compared += 1;
            let drift = if b == 0.0 {
                if c == 0.0 {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                (c - b) / b
            };
            // Throughput is judged against the run median (a 1.0 + x ratio
            // divide, so a uniformly slower run cancels exactly); worst_avg
            // is a probe count and keeps its absolute drift.  The guard on
            // the median's sign only matters if the whole run collapsed
            // below -100%, which is not a compensable machine shift.
            let judged = if metric == "throughput" && median_drift > -1.0 && drift.is_finite() {
                (1.0 + drift) / (1.0 + median_drift) - 1.0
            } else {
                drift
            };
            // Direction-aware: only throughput *drops* and worst-case
            // *rises* regress; the improving direction is informational.
            let regressing = match metric {
                "throughput" => judged < -tolerance,
                _ => judged > tolerance,
            };
            let within_slack = metric == "worst_avg" && (c - b).abs() <= worst_slack;
            if regressing && !within_slack {
                flagged += 1;
                println!(
                    "DRIFT    {key}: {metric} {b:.2} -> {c:.2} ({:+.1}% raw, {:+.1}% vs run \
                     median, tolerance {:.0}%)",
                    drift * 100.0,
                    judged * 100.0,
                    tolerance * 100.0
                );
            } else if judged.abs() > tolerance && !within_slack {
                println!(
                    "IMPROVED {key}: {metric} {b:.2} -> {c:.2} ({:+.1}% raw, {:+.1}% vs run median)",
                    drift * 100.0,
                    judged * 100.0
                );
            }
        }
    }
    for key in current.keys() {
        if !baseline.contains_key(key) {
            println!("NEW      {key}: present in current only (baseline needs regenerating?)");
        }
    }

    println!(
        "bench_diff: {compared} metric comparisons over {} shared cells, {flagged} beyond {:.0}%",
        baseline.keys().filter(|k| current.contains_key(*k)).count(),
        tolerance * 100.0
    );
    if flagged > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
