//! Plain-text table formatting for the figure harnesses.
//!
//! The harness prints Markdown-flavoured tables (and TSV on request) so that
//! EXPERIMENTS.md can embed the output verbatim and successive runs can be
//! diffed textually — no plotting dependencies required.

use std::fmt::Write as _;

/// A single table cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A label.
    Text(String),
    /// An integer quantity.
    Int(u64),
    /// A real quantity printed with two decimals.
    Float(f64),
    /// A real quantity printed with a given number of decimals.
    FloatPrec(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.2}"),
            Cell::FloatPrec(v, p) => format!("{:.*}", *p, *v),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

/// A simple rectangular table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        format_markdown_table(&self.header, &self.rows)
    }

    /// Renders the table as tab-separated values (header included).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            let _ = writeln!(out, "{}", cells.join("\t"));
        }
        out
    }
}

/// Renders a Markdown table with aligned columns.
pub fn format_markdown_table(header: &[String], rows: &[Vec<Cell>]) -> String {
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|row| row.iter().map(Cell::render).collect())
        .collect();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &rendered {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let pad = |s: &str, w: usize| format!("{s:<w$}");
    let _ = writeln!(
        out,
        "| {} |",
        header
            .iter()
            .enumerate()
            .map(|(i, h)| pad(h, widths[i]))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let _ = writeln!(
        out,
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in &rendered {
        let _ = writeln!(
            out,
            "| {} |",
            row.iter()
                .enumerate()
                .map(|(i, c)| pad(c, widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_is_aligned_and_complete() {
        let mut table = Table::new(&["algorithm", "ops", "mean"]);
        table.push_row(vec!["LevelArray".into(), 1000u64.into(), 1.75f64.into()]);
        table.push_row(vec![
            "Random".into(),
            999u64.into(),
            Cell::FloatPrec(1.5, 3),
        ]);
        let md = table.to_markdown();
        assert!(md.contains("| algorithm"));
        assert!(md.contains("| LevelArray | 1000 | 1.75"));
        assert!(md.contains("1.500"));
        assert_eq!(md.lines().count(), 4);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn tsv_rendering() {
        let mut table = Table::new(&["a", "b"]);
        table.push_row(vec![1u64.into(), 2.5f64.into()]);
        let tsv = table.to_tsv();
        assert_eq!(tsv, "a\tb\n1\t2.50\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut table = Table::new(&["a", "b"]);
        table.push_row(vec![1u64.into()]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from("x"), Cell::Text("x".to_string()));
        assert_eq!(Cell::from(3usize), Cell::Int(3));
        assert_eq!(Cell::from(2.0f64).render(), "2.00");
        assert_eq!(Cell::FloatPrec(2.0, 4).render(), "2.0000");
    }
}
