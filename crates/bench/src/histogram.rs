//! A dependency-free log-bucketed latency histogram.
//!
//! The workload runner times a 1-in-16 sample of the measured `Get`s (see
//! `workload::LATENCY_SAMPLE_STRIDE`) and feeds the nanosecond latency into
//! one of these per worker thread; the per-thread histograms
//! are merged after the join and the tail quantiles (p99 / p99.9 / max) go
//! into the cell's `BENCH_JSON` record next to the probe-count statistics.
//! Mean probe counts hide exactly the events the paper's worst-case panels
//! care about — a `Get` that fell through to the backup array, a `Get` that
//! stalled behind a growth episode of the elastic chain — and a log-bucketed
//! histogram captures that tail in 65 counters with a constant-time record
//! path, the same design vendored criterion uses for its timing loops.
//!
//! Buckets are powers of two: bucket `i` (for `i >= 1`) covers latencies in
//! `[2^(i-1), 2^i)` nanoseconds, bucket 0 holds exact zeros.  Quantiles
//! therefore come back as the *upper bound* of the bucket the quantile falls
//! in — at most 2× the true value, which is far below run-to-run scheduler
//! noise for tail latencies — except the final occupied bucket, which is
//! clamped to the exact observed maximum.

use std::time::Duration;

/// Number of counters: bucket 0 for zero plus one per possible bit length
/// of a `u64` nanosecond count.
const BUCKETS: usize = 65;

/// A log-bucketed histogram of nanosecond latencies.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    /// The bucket a nanosecond value falls in: its bit length (0 for 0).
    fn bucket(ns: u64) -> usize {
        (u64::BITS - ns.leading_zeros()) as usize
    }

    /// Records one latency in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Records one latency given as a [`Duration`] (saturating at `u64` ns —
    /// 584 years — which no real measurement reaches).
    pub fn record_duration(&mut self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds another histogram into this one (used to merge the per-thread
    /// histograms after the workload join).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The exact maximum recorded latency in nanoseconds (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The latency in nanoseconds below which a `quantile` fraction of the
    /// samples fall: the upper bound of the bucket holding that rank,
    /// clamped to the exact maximum.  Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= quantile <= 1.0`.
    pub fn quantile_ns(&self, quantile: f64) -> u64 {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "quantile must be in [0, 1], got {quantile}"
        );
        if self.total == 0 {
            return 0;
        }
        // Rank of the sample the quantile lands on, 1-based, at least 1 so
        // q=0 returns the first occupied bucket.
        let rank = ((quantile * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// The conventional tail triple `(p99, p99.9, max)` in nanoseconds.
    pub fn tail_ns(&self) -> (u64, u64, u64) {
        (
            self.quantile_ns(0.99),
            self.quantile_ns(0.999),
            self.max_ns(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
        assert_eq!(h.tail_ns(), (0, 0, 0));
    }

    #[test]
    fn buckets_are_bit_lengths() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(1023), 10);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 64);
    }

    #[test]
    fn quantiles_return_bucket_upper_bounds() {
        let mut h = LatencyHistogram::new();
        // 98 fast samples in [64, 128), one slow in [1024, 2048), one exact
        // maximum.
        for _ in 0..98 {
            h.record(100);
        }
        h.record(1500);
        h.record(3000);
        assert_eq!(h.count(), 100);
        assert_eq!(h.max_ns(), 3000);
        // p50 and p98 land in the fast bucket, upper bound 127.
        assert_eq!(h.quantile_ns(0.5), 127);
        assert_eq!(h.quantile_ns(0.98), 127);
        // p99 is the 99th sample: the [1024, 2048) bucket.
        assert_eq!(h.quantile_ns(0.99), 2047);
        // p99.9 rounds up to the last sample, clamped to the exact max.
        assert_eq!(h.quantile_ns(0.999), 3000);
        assert_eq!(h.quantile_ns(1.0), 3000);
        assert_eq!(h.tail_ns(), (2047, 3000, 3000));
    }

    #[test]
    fn top_bucket_is_clamped_to_the_exact_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        assert_eq!(h.quantile_ns(0.99), 1_000_000);
    }

    #[test]
    fn zero_latencies_have_their_own_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_accumulates_counts_and_max() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..50 {
            a.record(10);
        }
        for _ in 0..50 {
            b.record(10_000);
        }
        b.record_duration(Duration::from_micros(100));
        a.merge(&b);
        assert_eq!(a.count(), 101);
        assert_eq!(a.max_ns(), 100_000);
        // Half the mass is in the slow bucket, so the median moved there.
        assert!(a.quantile_ns(0.75) >= 8191);
        assert!(a.quantile_ns(0.25) <= 15);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().quantile_ns(1.5);
    }
}
