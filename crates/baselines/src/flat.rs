//! Shared storage for the flat (un-levelled) baselines: a plain array of
//! test-and-set slots with the bookkeeping every baseline needs (collect,
//! occupancy census, bounds-checked free).

use levelarray::occupancy::{OccupancySnapshot, Region, RegionOccupancy};
use levelarray::slot::{Slot, TasKind};
use levelarray::Name;

/// A flat array of TAS slots used as the backing store of the baseline
/// algorithms.  The probing *strategy* lives in the wrapping types; this type
/// only provides safe slot access and the census operations.
#[derive(Debug)]
pub struct FlatSlots {
    slots: Box<[Slot]>,
    max_participants: usize,
    tas_kind: TasKind,
}

impl FlatSlots {
    /// Creates a flat store of `len` slots for a structure with contention
    /// bound `max_participants`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `max_participants == 0`.
    pub fn new(len: usize, max_participants: usize) -> Self {
        assert!(len > 0, "a flat activity array needs at least one slot");
        assert!(max_participants > 0, "contention bound must be at least 1");
        FlatSlots {
            slots: (0..len).map(|_| Slot::new()).collect(),
            max_participants,
            tas_kind: TasKind::CompareExchange,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Always `false`: the constructor rejects empty stores.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The contention bound the store was created for.
    pub fn max_participants(&self) -> usize {
        self.max_participants
    }

    /// Attempts to win slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn try_acquire(&self, idx: usize) -> bool {
        self.slots[idx].try_acquire(self.tas_kind)
    }

    /// Whether slot `idx` is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn is_held(&self, idx: usize) -> bool {
        self.slots[idx].is_held()
    }

    /// Releases `name`, panicking on double frees or out-of-range names (the
    /// same contract as [`levelarray::ActivityArray::free`]).
    pub fn free(&self, name: Name) {
        // Flat baselines hand out dense epoch-0 names; an epoch-tagged name
        // (from an elastic array) must not alias a slot via its index.
        assert_eq!(
            name.epoch(),
            0,
            "a flat baseline hands out only epoch-0 names, got {name}"
        );
        let idx = name.index();
        assert!(
            idx < self.slots.len(),
            "name {idx} out of range for an array of {} slots",
            self.slots.len()
        );
        assert!(
            self.slots[idx].release(),
            "double free: name {idx} was not held when free() was called"
        );
    }

    /// Scans the array and returns every held name, in index order.
    pub fn collect(&self) -> Vec<Name> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_held())
            .map(|(idx, _)| Name::new(idx))
            .collect()
    }

    /// A single-region occupancy census.
    pub fn occupancy(&self) -> OccupancySnapshot {
        let occupied = self.slots.iter().filter(|s| s.is_held()).count();
        OccupancySnapshot::new(vec![RegionOccupancy::new(
            Region::Whole,
            self.slots.len(),
            occupied,
        )])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_free_collect_cycle() {
        let flat = FlatSlots::new(8, 4);
        assert_eq!(flat.len(), 8);
        assert!(!flat.is_empty());
        assert_eq!(flat.max_participants(), 4);
        assert!(flat.try_acquire(3));
        assert!(!flat.try_acquire(3));
        assert!(flat.is_held(3));
        assert_eq!(flat.collect(), vec![Name::new(3)]);
        assert_eq!(flat.occupancy().total_occupied(), 1);
        flat.free(Name::new(3));
        assert!(flat.collect().is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let flat = FlatSlots::new(4, 4);
        assert!(flat.try_acquire(0));
        flat.free(Name::new(0));
        flat.free(Name::new(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_free_panics() {
        let flat = FlatSlots::new(4, 4);
        flat.free(Name::new(9));
    }

    #[test]
    #[should_panic(expected = "epoch-0")]
    fn epoch_tagged_free_panics() {
        let flat = FlatSlots::new(4, 4);
        flat.free(Name::with_epoch(2, 0));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_store_rejected() {
        let _ = FlatSlots::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_contention_rejected() {
        let _ = FlatSlots::new(4, 0);
    }

    #[test]
    fn occupancy_is_a_single_whole_region() {
        let flat = FlatSlots::new(10, 5);
        for i in 0..4 {
            assert!(flat.try_acquire(i));
        }
        let snap = flat.occupancy();
        assert_eq!(snap.regions().len(), 1);
        assert_eq!(snap.regions()[0].region(), Region::Whole);
        assert_eq!(snap.total_capacity(), 10);
        assert_eq!(snap.total_occupied(), 4);
    }
}
