//! The "Random" baseline (paper §6): probe uniformly random slots of a flat
//! array until one is won.
//!
//! This strategy has constant expected cost while the array is sparsely
//! occupied, but its *worst case* is unbounded: with `f` the fill fraction,
//! each probe fails independently with probability `f`, so over long
//! executions some operations take a long time — exactly the instability the
//! paper's Figure 2 (standard deviation and worst-case panels) demonstrates.

use larng::RandomSource;
use levelarray::{Acquired, ActivityArray, Name, OccupancySnapshot};

use crate::flat::FlatSlots;

/// Flat array with uniformly random probing.
///
/// # Examples
///
/// ```
/// use la_baselines::RandomArray;
/// use levelarray::ActivityArray;
/// use larng::default_rng;
///
/// let array = RandomArray::new(8);      // 2n slots for n = 8, like the paper
/// let mut rng = default_rng(1);
/// let got = array.get(&mut rng);
/// array.free(got.name());
/// ```
#[derive(Debug)]
pub struct RandomArray {
    slots: FlatSlots,
}

impl RandomArray {
    /// Creates an array with the paper's default size of `2n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0`.
    pub fn new(max_concurrency: usize) -> Self {
        Self::with_slots(max_concurrency, 2 * max_concurrency.max(1))
    }

    /// Creates an array with an explicit number of slots (the paper's `L`).
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0` or `slots < max_concurrency` (the
    /// structure could otherwise deadlock a well-behaved caller).
    pub fn with_slots(max_concurrency: usize, slots: usize) -> Self {
        assert!(
            slots >= max_concurrency,
            "need at least as many slots ({slots}) as concurrent holders ({max_concurrency})"
        );
        RandomArray {
            slots: FlatSlots::new(slots, max_concurrency),
        }
    }
}

impl ActivityArray for RandomArray {
    fn algorithm_name(&self) -> &'static str {
        "Random"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        let len = self.slots.len();
        let mut probes = 0u32;
        loop {
            // One "round" of random probing: up to `len` attempts.
            for _ in 0..len {
                probes += 1;
                let idx = rng.gen_index(len);
                if self.slots.try_acquire(idx) {
                    return Some(Acquired::new(Name::new(idx), probes, Some(0), false));
                }
            }
            // A full round failed.  If the array is genuinely full, give up —
            // this keeps `try_get` from spinning forever when the caller has
            // exceeded the contention bound.  (The paper's version simply
            // loops; a saturated array is outside its model.)
            if (0..len).all(|idx| self.slots.is_held(idx)) {
                return None;
            }
        }
    }

    fn free(&self, name: Name) {
        self.slots.free(name);
    }

    fn collect(&self) -> Vec<Name> {
        self.slots.collect()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn max_participants(&self) -> usize {
        self.slots.max_participants()
    }

    fn occupancy(&self) -> OccupancySnapshot {
        self.slots.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::{default_rng, SequenceRng};
    use std::collections::HashSet;

    #[test]
    fn basic_cycle_and_uniqueness() {
        let array = RandomArray::new(16);
        let mut rng = default_rng(1);
        let mut names = HashSet::new();
        for _ in 0..16 {
            assert!(names.insert(array.get(&mut rng).name()));
        }
        assert_eq!(array.collect().len(), 16);
        for name in names {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn probes_count_failed_attempts() {
        // Slot 0 occupied; script the probes to hit 0 then 1.
        let array = RandomArray::with_slots(2, 4);
        assert!(array.slots.try_acquire(0));
        let mut rng = SequenceRng::for_indices(&[0, 1], 4);
        let got = array.get(&mut rng);
        assert_eq!(got.name().index(), 1);
        assert_eq!(got.probes(), 2);
    }

    #[test]
    fn exhausted_array_returns_none() {
        let array = RandomArray::with_slots(2, 2);
        let mut rng = default_rng(3);
        let a = array.get(&mut rng);
        let b = array.get(&mut rng);
        assert_ne!(a.name(), b.name());
        assert!(array.try_get(&mut rng).is_none());
        array.free(a.name());
        assert!(array.try_get(&mut rng).is_some());
        let _ = b;
    }

    #[test]
    fn default_size_is_twice_n() {
        let array = RandomArray::new(10);
        assert_eq!(array.capacity(), 20);
        assert_eq!(array.max_participants(), 10);
        assert_eq!(array.algorithm_name(), "Random");
    }

    #[test]
    #[should_panic(expected = "at least as many slots")]
    fn undersized_array_rejected() {
        let _ = RandomArray::with_slots(4, 2);
    }

    #[test]
    fn occupancy_matches_collect() {
        let array = RandomArray::new(8);
        let mut rng = default_rng(4);
        for _ in 0..5 {
            let _ = array.get(&mut rng);
        }
        assert_eq!(array.occupancy().total_occupied(), array.collect().len());
    }
}
