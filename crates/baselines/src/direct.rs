//! The trivial "slot = thread id" registry the paper's introduction dismisses
//! (§1, footnote 1).
//!
//! If every thread simply uses its own identifier as the index of a dedicated
//! slot, `Get` and `Free` are a single uncontended store — but the slot array
//! must be as large as the *identifier space* `N`, and `Collect` must scan all
//! of it, even when only a handful of threads are active.  The LevelArray (and
//! the other baselines) instead keep the namespace proportional to the
//! contention bound `n ≤ N`, which is the whole point of renaming.
//!
//! [`DirectMapArray`] is used in two ways by this workspace:
//!
//! * as a **correctness oracle** in differential tests (its behaviour is
//!   trivially correct), and
//! * in the `sweeps` benchmark, to quantify how much slower its `Collect`
//!   becomes as the id space grows past the true contention.

use levelarray::occupancy::{OccupancySnapshot, Region, RegionOccupancy};
use levelarray::slot::{Slot, TasKind};
use levelarray::Name;

/// A registry with one dedicated slot per thread identifier.
///
/// This type does **not** implement [`levelarray::ActivityArray`]: its `Get`
/// needs the caller's identity rather than a random-number generator, which is
/// exactly why it solves a different (easier, but less useful) problem than
/// renaming.
///
/// # Examples
///
/// ```
/// use la_baselines::DirectMapArray;
///
/// let registry = DirectMapArray::new(128);   // id space of 128 threads
/// registry.register(17).unwrap();
/// assert!(registry.is_registered(17));
/// assert_eq!(registry.collect(), vec![levelarray::Name::new(17)]);
/// registry.deregister(17).unwrap();
/// ```
#[derive(Debug)]
pub struct DirectMapArray {
    slots: Box<[Slot]>,
}

/// Errors returned by [`DirectMapArray`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectMapError {
    /// The identifier is outside the id space the registry was built for.
    IdOutOfRange {
        /// The offending identifier.
        id: usize,
        /// The registry's id-space size.
        id_space: usize,
    },
    /// `register` was called for an id that is already registered.
    AlreadyRegistered(usize),
    /// `deregister` was called for an id that is not registered.
    NotRegistered(usize),
}

impl std::fmt::Display for DirectMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectMapError::IdOutOfRange { id, id_space } => {
                write!(f, "thread id {id} outside the id space of {id_space}")
            }
            DirectMapError::AlreadyRegistered(id) => {
                write!(f, "thread id {id} is already registered")
            }
            DirectMapError::NotRegistered(id) => write!(f, "thread id {id} is not registered"),
        }
    }
}

impl std::error::Error for DirectMapError {}

impl DirectMapArray {
    /// Creates a registry for identifiers `0..id_space`.
    ///
    /// # Panics
    ///
    /// Panics if `id_space == 0`.
    pub fn new(id_space: usize) -> Self {
        assert!(
            id_space > 0,
            "id space must contain at least one identifier"
        );
        DirectMapArray {
            slots: (0..id_space).map(|_| Slot::new()).collect(),
        }
    }

    /// The size of the identifier space (and therefore of the array and of
    /// every `collect` scan).
    pub fn id_space(&self) -> usize {
        self.slots.len()
    }

    /// Registers thread `id`.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is out of range or already registered.
    pub fn register(&self, id: usize) -> Result<Name, DirectMapError> {
        let slot = self.slot(id)?;
        if slot.try_acquire(TasKind::CompareExchange) {
            Ok(Name::new(id))
        } else {
            Err(DirectMapError::AlreadyRegistered(id))
        }
    }

    /// Deregisters thread `id`.
    ///
    /// # Errors
    ///
    /// Returns an error if `id` is out of range or not registered.
    pub fn deregister(&self, id: usize) -> Result<(), DirectMapError> {
        let slot = self.slot(id)?;
        if slot.release() {
            Ok(())
        } else {
            Err(DirectMapError::NotRegistered(id))
        }
    }

    /// Whether thread `id` is currently registered (out-of-range ids are
    /// reported as not registered).
    pub fn is_registered(&self, id: usize) -> bool {
        self.slots.get(id).map(Slot::is_held).unwrap_or(false)
    }

    /// Scans the whole id space and returns the registered ids — Θ(N) work
    /// regardless of how few threads are active.
    pub fn collect(&self) -> Vec<Name> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.is_held())
            .map(|(id, _)| Name::new(id))
            .collect()
    }

    /// Single-region occupancy census over the id space.
    pub fn occupancy(&self) -> OccupancySnapshot {
        let occupied = self.slots.iter().filter(|s| s.is_held()).count();
        OccupancySnapshot::new(vec![RegionOccupancy::new(
            Region::Whole,
            self.slots.len(),
            occupied,
        )])
    }

    fn slot(&self, id: usize) -> Result<&Slot, DirectMapError> {
        self.slots.get(id).ok_or(DirectMapError::IdOutOfRange {
            id,
            id_space: self.slots.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_deregister_cycle() {
        let registry = DirectMapArray::new(8);
        assert_eq!(registry.register(3), Ok(Name::new(3)));
        assert!(registry.is_registered(3));
        assert_eq!(registry.collect(), vec![Name::new(3)]);
        assert_eq!(registry.deregister(3), Ok(()));
        assert!(!registry.is_registered(3));
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn double_register_and_double_deregister_are_errors() {
        let registry = DirectMapArray::new(4);
        registry.register(1).unwrap();
        assert_eq!(
            registry.register(1),
            Err(DirectMapError::AlreadyRegistered(1))
        );
        registry.deregister(1).unwrap();
        assert_eq!(
            registry.deregister(1),
            Err(DirectMapError::NotRegistered(1))
        );
    }

    #[test]
    fn out_of_range_ids_are_errors() {
        let registry = DirectMapArray::new(4);
        assert_eq!(
            registry.register(9),
            Err(DirectMapError::IdOutOfRange { id: 9, id_space: 4 })
        );
        assert_eq!(
            registry.deregister(9),
            Err(DirectMapError::IdOutOfRange { id: 9, id_space: 4 })
        );
        assert!(!registry.is_registered(9));
    }

    #[test]
    fn collect_scans_the_whole_id_space() {
        let registry = DirectMapArray::new(1000);
        registry.register(0).unwrap();
        registry.register(999).unwrap();
        assert_eq!(registry.collect(), vec![Name::new(0), Name::new(999)]);
        assert_eq!(registry.occupancy().total_capacity(), 1000);
        assert_eq!(registry.occupancy().total_occupied(), 2);
        assert_eq!(registry.id_space(), 1000);
    }

    #[test]
    fn error_display() {
        assert!(DirectMapError::AlreadyRegistered(3)
            .to_string()
            .contains('3'));
        assert!(DirectMapError::NotRegistered(4).to_string().contains('4'));
        assert!(DirectMapError::IdOutOfRange { id: 9, id_space: 4 }
            .to_string()
            .contains("id space"));
    }

    #[test]
    #[should_panic(expected = "at least one identifier")]
    fn empty_id_space_rejected() {
        let _ = DirectMapArray::new(0);
    }
}
