//! The "LinearProbing" baseline (paper §6): pick a uniformly random starting
//! slot, then probe linearly to the right (wrapping around) until a slot is
//! won.
//!
//! Linear probing enjoys excellent cache behaviour — successive probes touch
//! adjacent slots — which is why its throughput in the paper's Figure 2 edges
//! out the other algorithms.  Its weakness is *primary clustering*: occupied
//! slots form runs, so a probe that lands in a run pays for the whole run,
//! which inflates the standard deviation and the worst case over long
//! executions (exactly what Figure 2's lower panels show).

use larng::RandomSource;
use levelarray::{Acquired, ActivityArray, Name, OccupancySnapshot};

use crate::flat::FlatSlots;

/// Flat array probed linearly from a random starting position.
///
/// # Examples
///
/// ```
/// use la_baselines::LinearProbingArray;
/// use levelarray::ActivityArray;
/// use larng::default_rng;
///
/// let array = LinearProbingArray::new(8);
/// let mut rng = default_rng(1);
/// let got = array.get(&mut rng);
/// array.free(got.name());
/// ```
#[derive(Debug)]
pub struct LinearProbingArray {
    slots: FlatSlots,
}

impl LinearProbingArray {
    /// Creates an array with the paper's default size of `2n` slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0`.
    pub fn new(max_concurrency: usize) -> Self {
        Self::with_slots(max_concurrency, 2 * max_concurrency.max(1))
    }

    /// Creates an array with an explicit number of slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0` or `slots < max_concurrency`.
    pub fn with_slots(max_concurrency: usize, slots: usize) -> Self {
        assert!(
            slots >= max_concurrency,
            "need at least as many slots ({slots}) as concurrent holders ({max_concurrency})"
        );
        LinearProbingArray {
            slots: FlatSlots::new(slots, max_concurrency),
        }
    }
}

impl ActivityArray for LinearProbingArray {
    fn algorithm_name(&self) -> &'static str {
        "LinearProbing"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        let len = self.slots.len();
        let start = rng.gen_index(len);
        for offset in 0..len {
            let idx = (start + offset) % len;
            if self.slots.try_acquire(idx) {
                return Some(Acquired::new(
                    Name::new(idx),
                    offset as u32 + 1,
                    Some(0),
                    false,
                ));
            }
        }
        // Wrapped all the way around without winning: the array was full (or
        // every slot was transiently held) — report exhaustion.
        None
    }

    fn free(&self, name: Name) {
        self.slots.free(name);
    }

    fn collect(&self) -> Vec<Name> {
        self.slots.collect()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn max_participants(&self) -> usize {
        self.slots.max_participants()
    }

    fn occupancy(&self) -> OccupancySnapshot {
        self.slots.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::{default_rng, SequenceRng};
    use std::collections::HashSet;

    #[test]
    fn basic_cycle_and_uniqueness() {
        let array = LinearProbingArray::new(16);
        let mut rng = default_rng(1);
        let mut names = HashSet::new();
        for _ in 0..16 {
            assert!(names.insert(array.get(&mut rng).name()));
        }
        assert_eq!(array.collect().len(), 16);
        for name in names {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn probes_walk_rightward_through_a_cluster() {
        let array = LinearProbingArray::with_slots(4, 8);
        // Build a cluster at slots 2, 3, 4.
        for idx in 2..5 {
            assert!(array.slots.try_acquire(idx));
        }
        // Start the probe at slot 2: it must walk the cluster and win slot 5.
        let mut rng = SequenceRng::for_indices(&[2], 8);
        let got = array.get(&mut rng);
        assert_eq!(got.name().index(), 5);
        assert_eq!(got.probes(), 4);
    }

    #[test]
    fn wrap_around_reaches_slots_before_the_start() {
        let array = LinearProbingArray::with_slots(2, 4);
        // Occupy everything except slot 0; start at slot 3 -> wraps to 0.
        for idx in 1..4 {
            assert!(array.slots.try_acquire(idx));
        }
        let mut rng = SequenceRng::for_indices(&[3], 4);
        let got = array.get(&mut rng);
        assert_eq!(got.name().index(), 0);
        assert_eq!(got.probes(), 2);
    }

    #[test]
    fn full_array_returns_none_after_one_sweep() {
        let array = LinearProbingArray::with_slots(2, 2);
        let mut rng = default_rng(2);
        let _a = array.get(&mut rng);
        let _b = array.get(&mut rng);
        assert!(array.try_get(&mut rng).is_none());
    }

    #[test]
    fn default_size_is_twice_n() {
        let array = LinearProbingArray::new(10);
        assert_eq!(array.capacity(), 20);
        assert_eq!(array.algorithm_name(), "LinearProbing");
    }

    #[test]
    #[should_panic(expected = "at least as many slots")]
    fn undersized_array_rejected() {
        let _ = LinearProbingArray::with_slots(4, 2);
    }
}
