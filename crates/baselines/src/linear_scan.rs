//! The deterministic left-to-right scan baseline (Moir–Anderson style
//! long-lived renaming, paper §3 and §6).
//!
//! Every `Get` probes slot 0, then slot 1, and so on until it wins.  The
//! acquired names are as small as possible (good for namespace adaptivity) but
//! the cost of a `Get` is linear in the number of currently held slots — and
//! because *every* process hammers the same low-indexed slots, contention on
//! those cache lines is severe.  The paper reports this baseline to be at
//! least two orders of magnitude slower than the randomized algorithms on all
//! measures, and leaves it off Figure 2; the `sweeps` benchmark binary
//! reproduces that comparison.

use larng::RandomSource;
use levelarray::{Acquired, ActivityArray, Name, OccupancySnapshot};

use crate::flat::FlatSlots;

/// Flat array probed deterministically from index 0.
///
/// # Examples
///
/// ```
/// use la_baselines::LinearScanArray;
/// use levelarray::ActivityArray;
/// use larng::default_rng;
///
/// let array = LinearScanArray::new(8);
/// let mut rng = default_rng(1);           // the rng is accepted but unused
/// let got = array.get(&mut rng);
/// assert_eq!(got.name().index(), 0);      // deterministic: lowest free slot
/// array.free(got.name());
/// ```
#[derive(Debug)]
pub struct LinearScanArray {
    slots: FlatSlots,
}

impl LinearScanArray {
    /// Creates an array with the paper's default size of `2n` slots.  (The
    /// deterministic scan only ever needs `n` slots; the extra space keeps the
    /// comparison with the randomized algorithms apples-to-apples.)
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0`.
    pub fn new(max_concurrency: usize) -> Self {
        Self::with_slots(max_concurrency, 2 * max_concurrency.max(1))
    }

    /// Creates an array with an explicit number of slots.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0` or `slots < max_concurrency`.
    pub fn with_slots(max_concurrency: usize, slots: usize) -> Self {
        assert!(
            slots >= max_concurrency,
            "need at least as many slots ({slots}) as concurrent holders ({max_concurrency})"
        );
        LinearScanArray {
            slots: FlatSlots::new(slots, max_concurrency),
        }
    }
}

impl ActivityArray for LinearScanArray {
    fn algorithm_name(&self) -> &'static str {
        "LinearScan"
    }

    fn try_get(&self, _rng: &mut dyn RandomSource) -> Option<Acquired> {
        for idx in 0..self.slots.len() {
            if self.slots.try_acquire(idx) {
                return Some(Acquired::new(
                    Name::new(idx),
                    idx as u32 + 1,
                    Some(0),
                    false,
                ));
            }
        }
        None
    }

    fn free(&self, name: Name) {
        self.slots.free(name);
    }

    fn collect(&self) -> Vec<Name> {
        self.slots.collect()
    }

    fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn max_participants(&self) -> usize {
        self.slots.max_participants()
    }

    fn occupancy(&self) -> OccupancySnapshot {
        self.slots.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;

    #[test]
    fn always_acquires_the_lowest_free_slot() {
        let array = LinearScanArray::new(4);
        let mut rng = default_rng(1);
        let a = array.get(&mut rng);
        let b = array.get(&mut rng);
        let c = array.get(&mut rng);
        assert_eq!(a.name().index(), 0);
        assert_eq!(b.name().index(), 1);
        assert_eq!(c.name().index(), 2);
        // Free the middle one; the next Get reuses it.
        array.free(b.name());
        let d = array.get(&mut rng);
        assert_eq!(d.name().index(), 1);
    }

    #[test]
    fn probe_count_is_linear_in_the_prefix_occupancy() {
        let array = LinearScanArray::new(8);
        let mut rng = default_rng(2);
        for _ in 0..5 {
            let _ = array.get(&mut rng);
        }
        let got = array.get(&mut rng);
        assert_eq!(got.name().index(), 5);
        assert_eq!(got.probes(), 6);
    }

    #[test]
    fn exhaustion_returns_none() {
        let array = LinearScanArray::with_slots(2, 2);
        let mut rng = default_rng(3);
        let _ = array.get(&mut rng);
        let _ = array.get(&mut rng);
        assert!(array.try_get(&mut rng).is_none());
    }

    #[test]
    fn names_are_adaptive_to_contention() {
        // With k holders the largest handed-out name is k - 1 — the namespace
        // adaptivity the deterministic algorithm buys with its linear cost.
        let array = LinearScanArray::new(32);
        let mut rng = default_rng(4);
        let names: Vec<_> = (0..10).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(names.iter().map(|n| n.index()).max(), Some(9));
    }

    #[test]
    fn metadata() {
        let array = LinearScanArray::new(10);
        assert_eq!(array.algorithm_name(), "LinearScan");
        assert_eq!(array.capacity(), 20);
        assert_eq!(array.max_participants(), 10);
        assert_eq!(array.occupancy().total_capacity(), 20);
    }
}
