//! Baseline activity-array implementations the paper compares against (§6).
//!
//! All baselines implement the same [`levelarray::ActivityArray`] trait as the
//! LevelArray itself, so the benchmark harness and the simulator can treat the
//! algorithms uniformly.
//!
//! * [`RandomArray`] — "Random" in Figure 2: probe uniformly random slots of a
//!   flat array until one is won.
//! * [`LinearProbingArray`] — "LinearProbing" in Figure 2: pick a random start
//!   and probe linearly (with wrap-around) until a slot is won.
//! * [`LinearScanArray`] — the deterministic Moir–Anderson-style array: always
//!   probe from index 0 rightward.  The paper reports it is at least two
//!   orders of magnitude slower on every measure and leaves it off the graphs;
//!   the harness includes it in the `sweeps` binary.
//! * [`DirectMapArray`] — the trivial "slot = thread id" solution the paper's
//!   introduction dismisses because `Collect` then costs Θ(|id space|) rather
//!   than Θ(n).  It does not implement the trait (it needs an explicit id);
//!   it exists as a correctness oracle and to quantify that footnote.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod direct;
pub mod flat;
pub mod linear_probing;
pub mod linear_scan;
pub mod random;

pub use direct::DirectMapArray;
pub use linear_probing::LinearProbingArray;
pub use linear_scan::LinearScanArray;
pub use random::RandomArray;

#[cfg(test)]
mod tests {
    use super::*;
    use levelarray::ActivityArray;

    #[test]
    fn baselines_are_send_sync_and_object_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RandomArray>();
        assert_send_sync::<LinearProbingArray>();
        assert_send_sync::<LinearScanArray>();
        assert_send_sync::<DirectMapArray>();

        let boxed: Vec<Box<dyn ActivityArray>> = vec![
            Box::new(RandomArray::new(4)),
            Box::new(LinearProbingArray::new(4)),
            Box::new(LinearScanArray::new(4)),
        ];
        for array in &boxed {
            assert!(array.capacity() >= 4);
        }
    }
}
