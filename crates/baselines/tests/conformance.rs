//! Trait-conformance suite: every `ActivityArray` implementation (the
//! LevelArray and all baselines) must satisfy the renaming contract of paper
//! §2 — uniqueness of held names, validity of `Collect`, exhaustion behaviour,
//! and double-free detection — under identical test drivers.

use la_baselines::{LinearProbingArray, LinearScanArray, RandomArray};
use larng::{default_rng, SeedSequence};
use levelarray::{ActivityArray, LevelArray, Name};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Builds one instance of every implementation for contention bound `n`.
fn all_algorithms(n: usize) -> Vec<Box<dyn ActivityArray>> {
    vec![
        Box::new(LevelArray::new(n)),
        Box::new(RandomArray::new(n)),
        Box::new(LinearProbingArray::new(n)),
        Box::new(LinearScanArray::new(n)),
    ]
}

#[test]
fn names_are_unique_while_held() {
    for array in all_algorithms(32) {
        let mut rng = default_rng(1);
        let mut held = HashSet::new();
        for _ in 0..32 {
            let got = array.get(&mut rng);
            assert!(
                held.insert(got.name()),
                "{}: duplicate name {}",
                array.algorithm_name(),
                got.name()
            );
        }
        assert_eq!(array.collect().len(), 32, "{}", array.algorithm_name());
        for name in held {
            array.free(name);
        }
        assert!(array.collect().is_empty(), "{}", array.algorithm_name());
    }
}

#[test]
fn collect_returns_exactly_the_held_set_sequentially() {
    for array in all_algorithms(16) {
        let mut rng = default_rng(2);
        let mut held: Vec<Name> = Vec::new();
        for step in 0..200u32 {
            if step % 3 != 2 && held.len() < 16 {
                held.push(array.get(&mut rng).name());
            } else if let Some(name) = held.pop() {
                array.free(name);
            }
            let mut collected = array.collect();
            collected.sort();
            let mut expected = held.clone();
            expected.sort();
            assert_eq!(collected, expected, "{}", array.algorithm_name());
            assert_eq!(
                array.occupancy().total_occupied(),
                held.len(),
                "{}",
                array.algorithm_name()
            );
        }
    }
}

#[test]
fn capacity_is_reported_consistently() {
    for n in [1usize, 2, 7, 64] {
        for array in all_algorithms(n) {
            assert!(
                array.capacity() >= array.max_participants(),
                "{}: capacity {} below contention bound {}",
                array.algorithm_name(),
                array.capacity(),
                array.max_participants()
            );
            assert_eq!(array.max_participants(), n, "{}", array.algorithm_name());
            assert_eq!(
                array.occupancy().total_capacity(),
                array.capacity(),
                "{}",
                array.algorithm_name()
            );
        }
    }
}

#[test]
fn names_stay_inside_the_dense_namespace() {
    for array in all_algorithms(16) {
        let mut rng = default_rng(3);
        for _ in 0..16 {
            let got = array.get(&mut rng);
            assert!(
                got.name().index() < array.capacity(),
                "{}: name {} >= capacity {}",
                array.algorithm_name(),
                got.name(),
                array.capacity()
            );
            assert!(got.probes() >= 1);
        }
    }
}

#[test]
fn double_free_panics_for_every_algorithm() {
    for array in all_algorithms(4) {
        let mut rng = default_rng(4);
        let got = array.get(&mut rng);
        array.free(got.name());
        let label = array.algorithm_name();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            array.free(got.name());
        }));
        assert!(result.is_err(), "{label}: double free did not panic");
    }
}

#[test]
fn exhaustion_is_reported_not_hung() {
    // Keep acquiring without freeing until the structure reports exhaustion;
    // it must do so without hanging and without handing out duplicates.
    for array in all_algorithms(4) {
        let mut rng = default_rng(5);
        let mut held = HashSet::new();
        for _ in 0..10_000 {
            match array.try_get(&mut rng) {
                Some(got) => {
                    assert!(held.insert(got.name()), "{}", array.algorithm_name());
                }
                None => break,
            }
        }
        assert!(
            held.len() >= array.max_participants(),
            "{}: gave up after only {} acquisitions",
            array.algorithm_name(),
            held.len()
        );
        assert!(held.len() <= array.capacity(), "{}", array.algorithm_name());
        assert!(
            array.try_get(&mut rng).is_none(),
            "{}",
            array.algorithm_name()
        );
    }
}

#[test]
fn concurrent_unique_ownership_for_every_algorithm() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 4);
    for array in all_algorithms(threads) {
        let array: Arc<dyn ActivityArray> = Arc::from(array);
        let ownership: Arc<Vec<AtomicBool>> = Arc::new(
            (0..array.capacity())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        let mut seeds = SeedSequence::new(6);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let array = Arc::clone(&array);
                let ownership = Arc::clone(&ownership);
                let seed = seeds.next_seed();
                scope.spawn(move || {
                    let mut rng = default_rng(seed);
                    for _ in 0..5_000 {
                        let got = array.get(&mut rng);
                        let idx = got.name().index();
                        assert!(
                            !ownership[idx].swap(true, Ordering::SeqCst),
                            "{}: slot {idx} owned twice",
                            array.algorithm_name()
                        );
                        ownership[idx].store(false, Ordering::SeqCst);
                        array.free(got.name());
                    }
                });
            }
        });
        assert!(array.collect().is_empty(), "{}", array.algorithm_name());
    }
}
