//! Property-based tests for the baseline activity arrays, mirroring the core
//! crate's suite so that every implementation is held to the same contract.

use la_baselines::{DirectMapArray, LinearProbingArray, LinearScanArray, RandomArray};
use larng::default_rng;
use levelarray::{ActivityArray, Name};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn flat_algorithms(n: usize, slots: usize) -> Vec<Box<dyn ActivityArray>> {
    vec![
        Box::new(RandomArray::with_slots(n, slots)),
        Box::new(LinearProbingArray::with_slots(n, slots)),
        Box::new(LinearScanArray::with_slots(n, slots)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Uniqueness + exact collect under arbitrary sequential scripts, for any
    /// contention bound and any legal array size.
    #[test]
    fn sequential_contract(
        seed in any::<u64>(),
        n in 1usize..32,
        extra_slots in 0usize..64,
        script in proptest::collection::vec(any::<u8>(), 1..150),
    ) {
        let slots = 2 * n + extra_slots;
        for array in flat_algorithms(n, slots) {
            let mut rng = default_rng(seed);
            let mut held: Vec<Name> = Vec::new();
            for &step in &script {
                if (step % 2 == 0 && held.len() < n) || held.is_empty() {
                    let got = array.get(&mut rng);
                    prop_assert!(got.name().index() < array.capacity());
                    prop_assert!(!held.contains(&got.name()), "{}", array.algorithm_name());
                    held.push(got.name());
                } else {
                    array.free(held.swap_remove((step as usize) % held.len()));
                }
                let collected: BTreeSet<Name> = array.collect().into_iter().collect();
                let expected: BTreeSet<Name> = held.iter().copied().collect();
                prop_assert_eq!(collected, expected, "{}", array.algorithm_name());
            }
        }
    }

    /// The deterministic scan always hands out the smallest free index —
    /// checked against a straightforward model.
    #[test]
    fn linear_scan_matches_smallest_free_model(
        seed in any::<u64>(),
        n in 1usize..24,
        script in proptest::collection::vec(any::<u8>(), 1..100),
    ) {
        let array = LinearScanArray::new(n);
        let mut rng = default_rng(seed);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for &step in &script {
            if (step % 2 == 0 && model.len() < n) || model.is_empty() {
                let got = array.get(&mut rng);
                let expected = (0..).find(|i| !model.contains(i)).unwrap();
                prop_assert_eq!(got.name().index(), expected);
                model.insert(got.name().index());
            } else {
                let victim = *model.iter().nth((step as usize) % model.len()).unwrap();
                array.free(Name::new(victim));
                model.remove(&victim);
            }
        }
    }

    /// The direct-map registry behaves like a set keyed by thread id and its
    /// collect cost is the id space, independent of how many ids are active.
    #[test]
    fn direct_map_matches_set_semantics(
        id_space in 1usize..128,
        ops in proptest::collection::vec((any::<usize>(), any::<bool>()), 1..100),
    ) {
        let registry = DirectMapArray::new(id_space);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (raw_id, register) in ops {
            let id = raw_id % (id_space + 4); // occasionally out of range
            if register {
                match registry.register(id) {
                    Ok(name) => {
                        prop_assert_eq!(name.index(), id);
                        prop_assert!(id < id_space);
                        prop_assert!(model.insert(id));
                    }
                    Err(_) => prop_assert!(id >= id_space || model.contains(&id)),
                }
            } else {
                match registry.deregister(id) {
                    Ok(()) => prop_assert!(model.remove(&id)),
                    Err(_) => prop_assert!(id >= id_space || !model.contains(&id)),
                }
            }
            let collected: Vec<usize> =
                registry.collect().into_iter().map(|n| n.index()).collect();
            prop_assert_eq!(collected, model.iter().copied().collect::<Vec<_>>());
            prop_assert_eq!(registry.occupancy().total_capacity(), id_space);
        }
    }

    /// Probe accounting: on an empty flat array the first Get costs exactly
    /// one probe for Random and LinearProbing, and `index + 1` probes for the
    /// deterministic scan.
    #[test]
    fn probe_accounting_on_empty_arrays(seed in any::<u64>(), n in 1usize..64) {
        for array in flat_algorithms(n, 2 * n) {
            let mut rng = default_rng(seed);
            let got = array.get(&mut rng);
            if array.algorithm_name() == "LinearScan" {
                prop_assert_eq!(got.probes() as usize, got.name().index() + 1);
            } else {
                prop_assert_eq!(got.probes(), 1, "{}", array.algorithm_name());
            }
            array.free(got.name());
        }
    }
}
