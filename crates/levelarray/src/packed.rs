//! The bit-packed slot slab: 64 test-and-set registers per atomic word.
//!
//! A [`PackedSlots`] stores the one-bit held/free state of `len` slots in
//! `⌈len / 64⌉` `AtomicU64` words.  Acquire is a `fetch_or` on one bit (a
//! single wait-free RMW that can never fail spuriously), free is a
//! `fetch_and` clearing it, and the scan paths — `Collect`, the occupancy
//! censuses, `batchwise_occupancy` — snapshot each word *once* and walk its
//! set bits with `trailing_zeros`, so a scan touches 1/32 of the memory the
//! word-per-slot layout ([`crate::slot::Slot`]) reads for the same
//! information.  That is exactly the paper's pitch for the activity array
//! (§1: `Collect` reads a small, cache-friendly region) taken to its memory
//! floor.
//!
//! The trade-off is write-side density: 512 slots share each cache line, so
//! concurrent `Get`s invalidate each other's lines more often than under the
//! word-per-slot layout.  [`crate::slot::SlotLayout`] exposes the choice as a
//! configuration knob (including the hybrid split that keeps the contended
//! head word-per-slot), and the layout sweep in the `sweeps` bench measures
//! both sides of the trade.
//!
//! ## Batched scans
//!
//! The scan paths process `LANES` words per iteration: each chunk is
//! snapshotted with one acquire load per word, whole chunks of zeros are
//! skipped with a single OR-reduction, and popcounts are accumulated across
//! the chunk before touching any individual bit.  With the `simd` cargo
//! feature (nightly, `portable_simd`) the per-chunk popcount and
//! any-bit-set reductions use `std::simd` `u64xN` vectors; the scalar
//! fallback has identical semantics, and the one-word-at-a-time PR 5 walk is
//! kept as `*_scalar` oracles that the differential tests (and the
//! `collect-scalar` bench reference cell) run against.

use la_fault::fail_point;
use la_sync::atomic::{AtomicU64, Ordering};
use std::ops::Range;

use crate::name::Name;
use crate::slot::TasKind;

/// Number of slots stored per atomic word.
const BITS: usize = u64::BITS as usize;

/// Words snapshotted per batched scan step; also the `std::simd` lane count.
const LANES: usize = 8;

/// A precomputed word-aligned view of a slot range: the inclusive word
/// bounds plus the partial-word masks at both ends.  [`crate::probe_core`]
/// caches one per census region (batch and backup) so repeated censuses skip
/// the boundary arithmetic a fresh [`Range`] scan would re-derive per call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WordSpan {
    /// First overlapped word.
    first: usize,
    /// Last overlapped word (inclusive).
    last: usize,
    /// Mask selecting the in-range bits of the first word.
    head_mask: u64,
    /// Mask selecting the in-range bits of the last word.
    tail_mask: u64,
    /// Whether the source range was empty (the bounds are then meaningless).
    empty: bool,
}

impl WordSpan {
    /// Computes the word bounds and edge masks of `range`.
    pub(crate) fn new(range: Range<usize>) -> Self {
        if range.start >= range.end {
            return WordSpan {
                first: 0,
                last: 0,
                head_mask: 0,
                tail_mask: 0,
                empty: true,
            };
        }
        let first = range.start / BITS;
        let last = (range.end - 1) / BITS;
        let tail = range.end - last * BITS;
        WordSpan {
            first,
            last,
            head_mask: u64::MAX << (range.start % BITS),
            tail_mask: if tail < BITS {
                (1u64 << tail) - 1
            } else {
                u64::MAX
            },
            empty: false,
        }
    }

    /// Whether the span covers no slots.
    pub(crate) fn is_empty(&self) -> bool {
        self.empty
    }
}

/// A slab of one-bit test-and-set registers packed 64-per-word.
///
/// Indices are dense `0..len()`; all operations panic (in debug builds) or
/// touch an in-range word (in release builds) only for valid indices — the
/// callers in [`crate::probe_core`] validate names before indexing, exactly
/// as they do for the word-per-slot slab.
///
/// # Examples
///
/// ```
/// use levelarray::packed::PackedSlots;
/// use levelarray::TasKind;
///
/// let slab = PackedSlots::new(100);
/// assert!(slab.try_acquire(42, TasKind::CompareExchange));
/// assert!(!slab.try_acquire(42, TasKind::Swap), "second acquire must lose");
/// assert!(slab.is_held(42));
/// assert_eq!(slab.count_held(0..100), 1);
/// assert!(slab.release(42));
/// assert!(!slab.is_held(42));
/// ```
#[derive(Debug)]
pub struct PackedSlots {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl PackedSlots {
    /// Creates a slab of `len` free slots.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(BITS)).map(|_| AtomicU64::new(0)).collect();
        PackedSlots { words, len }
    }

    /// Number of slots (not words) in the slab.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(idx: usize) -> (usize, u64) {
        (idx / BITS, 1u64 << (idx % BITS))
    }

    /// Attempts to win slot `idx` with the requested primitive.  Returns
    /// `true` if this call transitioned the slot from free to held.
    ///
    /// Both kinds resolve the race with a single `fetch_or`, which — unlike a
    /// word-per-slot compare-exchange retry loop would be — is wait-free even
    /// when neighbouring bits of the word churn concurrently.  The [`TasKind`]
    /// distinction maps onto the bit representation as *test-then-set*
    /// ([`TasKind::CompareExchange`]: skip the RMW when the bit is visibly
    /// held, mirroring a failed compare-exchange performing no write) versus
    /// unconditional RMW ([`TasKind::Swap`]: always write, like `swap`).
    #[inline]
    pub fn try_acquire(&self, idx: usize, kind: TasKind) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        // Pre-RMW on purpose: a fault here unwinds before the bit is set, so
        // there is never a claimed-but-unreported slot at this layer.
        fail_point!("packed::try_acquire");
        let (word, bit) = Self::split(idx);
        if kind == TasKind::CompareExchange && self.words[word].load(Ordering::Acquire) & bit != 0 {
            return false;
        }
        self.words[word].fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Releases slot `idx`.  Returns `true` if the slot was held (the normal
    /// case); `false` means the caller released a free slot — a protocol
    /// violation the caller should treat as a bug.
    #[inline]
    pub fn release(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        let (word, bit) = Self::split(idx);
        self.words[word].fetch_and(!bit, Ordering::AcqRel) & bit != 0
    }

    /// Selects the lowest `k` set bits of `mask` (all of them when fewer are
    /// set).  `mask & mask.wrapping_neg()` isolates the lowest set bit, so
    /// the loop runs at most `k` times and never scans free positions.
    #[inline]
    fn lowest_k_bits(mut mask: u64, k: usize) -> u64 {
        if mask.count_ones() as usize <= k {
            return mask;
        }
        let mut selected = 0u64;
        for _ in 0..k {
            let low = mask & mask.wrapping_neg();
            selected |= low;
            mask ^= low;
        }
        selected
    }

    /// The batched multi-claim kernel: attempts to win up to `k` free slots
    /// inside `range` — which must lie within a single word — with **one**
    /// combined-mask RMW, reporting each win through `f` in rotation order
    /// (indices `start..range.end` first, then wrapping to
    /// `range.start..start`).  Returns the number of slots claimed.
    ///
    /// Under [`TasKind::CompareExchange`] the word is snapshotted, up to `k`
    /// zero bits are selected, and a single `compare_exchange` installs the
    /// combined mask; if a concurrent writer moved the word first, the call
    /// falls back to one per-bit test-and-set per window slot in the same
    /// rotation order — no retry loop, so the kernel stays wait-free.  Under
    /// [`TasKind::Swap`] a single `fetch_or` installs the mask
    /// unconditionally and the bits that were already held are simply not
    /// reported as wins (the same semantics as `swap` observing `HELD`).
    ///
    /// Single-threaded, both kinds claim exactly the first `min(k, free)`
    /// free slots of the window in rotation order — identical to a per-slot
    /// [`Self::try_acquire`] loop, which is what keeps the bit-packed layout
    /// in lockstep with the word-per-slot layout under the conformance suite.
    pub(crate) fn claim_word_window(
        &self,
        range: Range<usize>,
        start: usize,
        k: usize,
        kind: TasKind,
        f: &mut impl FnMut(usize),
    ) -> usize {
        if k == 0 || range.start >= range.end {
            return 0;
        }
        // Pre-RMW, like `try_acquire`: every reported win happens strictly
        // after this point, so an unwind here claims nothing.
        fail_point!("packed::claim_word");
        debug_assert!(range.end <= self.len, "range {range:?} out of {}", self.len);
        debug_assert!(
            range.start / BITS == (range.end - 1) / BITS,
            "window {range:?} spans more than one word"
        );
        debug_assert!(range.contains(&start), "start {start} outside {range:?}");
        let word = range.start / BITS;
        let base = word * BITS;
        let tail = range.end - base;
        let window_mask = (u64::MAX << (range.start % BITS))
            & if tail < BITS {
                (1u64 << tail) - 1
            } else {
                u64::MAX
            };
        let snap = self.words[word].load(Ordering::Acquire);
        let free = !snap & window_mask;
        if free == 0 {
            return 0;
        }
        // Rotation order: the probed index and everything above it first,
        // then wrap around to the window start.
        let pivot = u64::MAX << (start % BITS);
        let upper_sel = Self::lowest_k_bits(free & pivot, k);
        let lower_sel = Self::lowest_k_bits(free & !pivot, k - upper_sel.count_ones() as usize);
        let claim = upper_sel | lower_sel;
        let mut claimed = 0usize;
        let mut report = |sel: u64| {
            Self::walk_bits(base, sel, &mut |idx| {
                claimed += 1;
                f(idx);
            });
        };
        match kind {
            TasKind::CompareExchange => {
                if self.words[word]
                    .compare_exchange(snap, snap | claim, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    report(upper_sel);
                    report(lower_sel);
                } else {
                    // The word moved under us: claim bit-by-bit in the same
                    // rotation order, one wait-free RMW per slot.
                    for idx in (start..range.end).chain(range.start..start) {
                        if claimed == k {
                            break;
                        }
                        if self.try_acquire(idx, kind) {
                            claimed += 1;
                            f(idx);
                        }
                    }
                }
            }
            TasKind::Swap => {
                let prev = self.words[word].fetch_or(claim, Ordering::AcqRel);
                let wins = claim & !prev;
                report(upper_sel & wins);
                report(lower_sel & wins);
            }
        }
        claimed
    }

    /// The bulk-release kernel: clears the sorted slot indices in `indices`
    /// (each `base`-offset — packed-local index is `indices[i] - base`) with
    /// **one** `fetch_and` per touched word, merging every index of a word
    /// into a single clear mask.
    ///
    /// # Panics
    ///
    /// Panics if an index appears twice or names a slot that was not held
    /// (both are double frees), reporting the caller-namespace value.
    pub(crate) fn release_sorted(&self, indices: &[usize], base: usize) {
        let mut i = 0;
        while i < indices.len() {
            let word = (indices[i] - base) / BITS;
            let mut mask = 0u64;
            while i < indices.len() && (indices[i] - base) / BITS == word {
                let raw = indices[i];
                let local = raw - base;
                debug_assert!(
                    local < self.len,
                    "slot index {local} out of range {}",
                    self.len
                );
                let bit = 1u64 << (local % BITS);
                assert!(
                    mask & bit == 0,
                    "double free: name {raw} appears twice in free_many()"
                );
                mask |= bit;
                i += 1;
            }
            let prev = self.words[word].fetch_and(!mask, Ordering::AcqRel);
            let missed = mask & !prev;
            assert!(
                missed == 0,
                "double free: name {} was not held when free_many() was called",
                base + word * BITS + missed.trailing_zeros() as usize
            );
        }
    }

    /// Reads whether slot `idx` is currently held (an acquire load, not a
    /// snapshot — the same validity contract as [`crate::slot::Slot::is_held`]).
    #[inline]
    pub fn is_held(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        let (word, bit) = Self::split(idx);
        self.words[word].load(Ordering::Acquire) & bit != 0
    }

    /// Visits every word overlapping `range`, passing the index of the word's
    /// first slot and the word's snapshot masked down to the slots inside the
    /// range.  One acquire load per word.  This is the one-word-at-a-time
    /// reference walk; the public scan API batches `LANES` words per step
    /// and is checked against this walk by the differential tests.
    #[inline]
    fn for_each_word(&self, range: Range<usize>, mut f: impl FnMut(usize, u64)) {
        debug_assert!(range.end <= self.len, "range {range:?} out of {}", self.len);
        if range.start >= range.end {
            return;
        }
        let first = range.start / BITS;
        let last = (range.end - 1) / BITS;
        for word in first..=last {
            let mut mask = u64::MAX;
            if word == first {
                mask &= u64::MAX << (range.start % BITS);
            }
            if word == last {
                let tail = range.end - word * BITS;
                if tail < BITS {
                    mask &= (1u64 << tail) - 1;
                }
            }
            f(word * BITS, self.words[word].load(Ordering::Acquire) & mask);
        }
    }

    /// Precomputes the word-aligned view of `range` for repeated scans over
    /// the same region (the census table in [`crate::probe_core`]).
    pub(crate) fn span(&self, range: Range<usize>) -> WordSpan {
        debug_assert!(range.end <= self.len, "range {range:?} out of {}", self.len);
        WordSpan::new(range)
    }

    /// Snapshots `LANES` consecutive words, one acquire load each.
    #[inline]
    fn load_chunk(chunk: &[AtomicU64]) -> [u64; LANES] {
        debug_assert_eq!(chunk.len(), LANES);
        let mut snap = [0u64; LANES];
        for (dst, word) in snap.iter_mut().zip(chunk) {
            *dst = word.load(Ordering::Acquire);
        }
        snap
    }

    /// Popcount of one snapshot chunk (scalar fallback).
    #[cfg(not(feature = "simd"))]
    #[inline]
    fn chunk_popcount(snap: [u64; LANES]) -> usize {
        snap.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Popcount of one snapshot chunk via `std::simd` vector popcount.
    #[cfg(feature = "simd")]
    #[inline]
    fn chunk_popcount(snap: [u64; LANES]) -> usize {
        use std::simd::num::SimdUint;
        std::simd::Simd::<u64, LANES>::from_array(snap)
            .count_ones()
            .reduce_sum() as usize
    }

    /// Whether any bit of one snapshot chunk is set (scalar OR-reduction).
    #[cfg(not(feature = "simd"))]
    #[inline]
    fn chunk_any(snap: [u64; LANES]) -> bool {
        snap.iter().fold(0u64, |acc, w| acc | w) != 0
    }

    /// Whether any bit of one snapshot chunk is set (`std::simd` mask test).
    #[cfg(feature = "simd")]
    #[inline]
    fn chunk_any(snap: [u64; LANES]) -> bool {
        use std::simd::cmp::SimdPartialEq;
        let v = std::simd::Simd::<u64, LANES>::from_array(snap);
        v.simd_ne(std::simd::Simd::splat(0)).any()
    }

    /// Walks the set bits of one masked word snapshot in increasing order.
    #[inline]
    fn walk_bits(base: usize, mut bits: u64, f: &mut impl FnMut(usize)) {
        while bits != 0 {
            f(base + bits.trailing_zeros() as usize);
            bits &= bits - 1;
        }
    }

    /// The number of held slots in `range`: one load plus a `count_ones` per
    /// word, accumulated `LANES` words at a time (vectorised under the
    /// `simd` feature).
    #[inline]
    pub fn count_held(&self, range: Range<usize>) -> usize {
        let span = self.span(range);
        self.count_span(span)
    }

    /// [`Self::count_held`] over a precomputed [`WordSpan`].
    pub(crate) fn count_span(&self, span: WordSpan) -> usize {
        if span.is_empty() {
            return 0;
        }
        if span.first == span.last {
            let bits =
                self.words[span.first].load(Ordering::Acquire) & span.head_mask & span.tail_mask;
            return bits.count_ones() as usize;
        }
        let head = self.words[span.first].load(Ordering::Acquire) & span.head_mask;
        let tail = self.words[span.last].load(Ordering::Acquire) & span.tail_mask;
        let mut total = (head.count_ones() + tail.count_ones()) as usize;
        let mut interior = self.words[span.first + 1..span.last].chunks_exact(LANES);
        for chunk in interior.by_ref() {
            total += Self::chunk_popcount(Self::load_chunk(chunk));
        }
        for word in interior.remainder() {
            total += word.load(Ordering::Acquire).count_ones() as usize;
        }
        total
    }

    /// Calls `f` with the index of every held slot in `range`, in increasing
    /// order.  Words are snapshotted `LANES` at a time; all-free chunks are
    /// skipped with one OR-reduction before any bit is walked.
    #[inline]
    pub fn for_each_held(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        let span = self.span(range);
        if span.is_empty() {
            return;
        }
        if span.first == span.last {
            let bits =
                self.words[span.first].load(Ordering::Acquire) & span.head_mask & span.tail_mask;
            Self::walk_bits(span.first * BITS, bits, &mut f);
            return;
        }
        Self::walk_bits(
            span.first * BITS,
            self.words[span.first].load(Ordering::Acquire) & span.head_mask,
            &mut f,
        );
        let mut base = (span.first + 1) * BITS;
        let mut interior = self.words[span.first + 1..span.last].chunks_exact(LANES);
        for chunk in interior.by_ref() {
            let snap = Self::load_chunk(chunk);
            if Self::chunk_any(snap) {
                for bits in snap {
                    Self::walk_bits(base, bits, &mut f);
                    base += BITS;
                }
            } else {
                base += LANES * BITS;
            }
        }
        for word in interior.remainder() {
            Self::walk_bits(base, word.load(Ordering::Acquire), &mut f);
            base += BITS;
        }
        Self::walk_bits(
            span.last * BITS,
            self.words[span.last].load(Ordering::Acquire) & span.tail_mask,
            &mut f,
        );
    }

    /// Appends a [`Name`] for every held slot in `range` (offset by
    /// `name_base`) to `out`, in increasing order — the `Collect` hot path.
    ///
    /// Beyond the batched walk of [`Self::for_each_held`], this reserves the
    /// exact output size with a popcount pre-pass and writes names straight
    /// into the vector's spare capacity, so the per-name cost is one store
    /// instead of a length/capacity bookkeeping round-trip per `push`.
    #[inline]
    pub fn collect_into(&self, range: Range<usize>, name_base: usize, out: &mut Vec<Name>) {
        let held = self.count_held(range.clone());
        if held == 0 {
            return;
        }
        out.reserve(held);
        let spare = out.spare_capacity_mut();
        let mut written = 0usize;
        // A concurrent acquire between the popcount pre-pass and the walk can
        // surface more held slots than were reserved; those spill here.
        let mut overflow = Vec::new();
        self.for_each_held(range, |idx| {
            let name = Name::new(name_base + idx);
            if written < held {
                spare[written].write(name);
                written += 1;
            } else {
                overflow.push(name);
            }
        });
        // SAFETY: the first `written` spare slots were initialised above and
        // `written <= held <=` the reserved spare capacity.
        unsafe { out.set_len(out.len() + written) };
        out.extend(overflow);
    }

    /// One-word-at-a-time variant of [`Self::count_held`]: the PR 5 reference
    /// implementation, kept as the oracle for the differential tests and for
    /// the `collect-scalar` bench reference cell.
    #[doc(hidden)]
    pub fn count_held_scalar(&self, range: Range<usize>) -> usize {
        let mut count = 0usize;
        self.for_each_word(range, |_, bits| count += bits.count_ones() as usize);
        count
    }

    /// One-word-at-a-time variant of [`Self::for_each_held`] — see
    /// [`Self::count_held_scalar`].
    #[doc(hidden)]
    pub fn for_each_held_scalar(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        self.for_each_word(range, |base, bits| Self::walk_bits(base, bits, &mut f));
    }

    /// Whether any slot in the slab is held — the drained check of the
    /// elastic retirement protocol, at one load per word, reduced `LANES`
    /// words at a time.
    #[inline]
    pub fn any_held(&self) -> bool {
        let mut chunks = self.words.chunks_exact(LANES);
        for chunk in chunks.by_ref() {
            if Self::chunk_any(Self::load_chunk(chunk)) {
                return true;
            }
        }
        chunks
            .remainder()
            .iter()
            .any(|w| w.load(Ordering::Acquire) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn new_slab_is_all_free() {
        let s = PackedSlots::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert!(PackedSlots::new(0).is_empty());
        for idx in 0..130 {
            assert!(!s.is_held(idx));
        }
        assert_eq!(s.count_held(0..130), 0);
        assert!(!s.any_held());
    }

    #[test]
    fn acquire_release_cycle_both_kinds() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let s = PackedSlots::new(70);
            // Cross a word boundary on purpose.
            for idx in [0usize, 63, 64, 69] {
                assert!(s.try_acquire(idx, kind), "{kind:?} idx {idx}");
                assert!(s.is_held(idx));
                assert!(!s.try_acquire(idx, kind), "second acquire must lose");
                assert!(s.release(idx));
                assert!(!s.is_held(idx));
                assert!(s.try_acquire(idx, kind), "slot is reusable");
                assert!(s.release(idx));
            }
        }
    }

    #[test]
    fn release_of_free_slot_reports_false() {
        let s = PackedSlots::new(8);
        assert!(!s.release(3));
    }

    #[test]
    fn neighbours_do_not_interfere() {
        let s = PackedSlots::new(128);
        assert!(s.try_acquire(7, TasKind::CompareExchange));
        assert!(s.try_acquire(8, TasKind::Swap));
        assert!(s.release(7));
        assert!(s.is_held(8), "releasing 7 must not clear 8");
        assert!(!s.is_held(7));
        assert!(s.release(8));
    }

    #[test]
    fn count_and_iterate_respect_range_edges() {
        let s = PackedSlots::new(200);
        for idx in [0usize, 5, 63, 64, 100, 150, 199] {
            assert!(s.try_acquire(idx, TasKind::CompareExchange));
        }
        assert_eq!(s.count_held(0..200), 7);
        assert_eq!(s.count_held(0..64), 3);
        assert_eq!(s.count_held(64..200), 4);
        assert_eq!(s.count_held(5..6), 1);
        assert_eq!(s.count_held(6..63), 0);
        assert_eq!(s.count_held(63..65), 2);
        assert_eq!(s.count_held(10..10), 0);

        let mut seen = Vec::new();
        s.for_each_held(60..151, |idx| seen.push(idx));
        assert_eq!(seen, vec![63, 64, 100, 150]);
        assert!(s.any_held());
    }

    #[test]
    fn full_word_boundary_lengths() {
        // len == multiple of 64: the tail mask must not shift by 64.
        let s = PackedSlots::new(128);
        assert!(s.try_acquire(127, TasKind::Swap));
        assert_eq!(s.count_held(0..128), 1);
        let mut seen = Vec::new();
        s.for_each_held(64..128, |idx| seen.push(idx));
        assert_eq!(seen, vec![127]);
    }

    /// Exactly one of many concurrent acquirers can win a free slot, for both
    /// primitives, including when racers hammer neighbouring bits of the same
    /// word.
    #[test]
    fn concurrent_acquire_has_a_unique_winner() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let slab = Arc::new(PackedSlots::new(64));
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                for t in 0..8 {
                    let slab = Arc::clone(&slab);
                    let winners = Arc::clone(&winners);
                    scope.spawn(move || {
                        // Everyone fights for bit 5 while also churning a
                        // private neighbour bit in the same word.
                        let private = 10 + t;
                        for _ in 0..100 {
                            assert!(slab.try_acquire(private, kind));
                            assert!(slab.release(private));
                        }
                        if slab.try_acquire(5, kind) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1, "{kind:?}");
            assert_eq!(slab.count_held(0..64), 1, "{kind:?}");
        }
    }

    /// The batched scans (and the `simd` versions, when the feature is on)
    /// must agree exactly with the one-word-at-a-time reference walk on
    /// random occupancy patterns and random subranges, including all the
    /// word-boundary edge cases.
    #[test]
    fn batched_scans_match_scalar_reference() {
        use larng::RandomSource;
        let lens: &[usize] = if cfg!(miri) {
            &[1, 64, 65, 129, 700]
        } else {
            &[1, 63, 64, 65, 127, 128, 129, 512, 700, 1000, 4096]
        };
        let mut rng = larng::default_rng(0xBA7C);
        for &len in lens {
            for density in [0.02, 0.3, 0.95] {
                let s = PackedSlots::new(len);
                for idx in 0..len {
                    if rng.gen_bool(density) {
                        assert!(s.try_acquire(idx, TasKind::CompareExchange));
                    }
                }
                let mut ranges = vec![0..len, 0..0, len..len];
                for _ in 0..(if cfg!(miri) { 4 } else { 24 }) {
                    let a = rng.gen_index(len + 1);
                    let b = rng.gen_index(len + 1);
                    ranges.push(a.min(b)..a.max(b));
                }
                for range in ranges {
                    assert_eq!(
                        s.count_held(range.clone()),
                        s.count_held_scalar(range.clone()),
                        "count len {len} range {range:?}"
                    );
                    let mut batched = Vec::new();
                    let mut scalar = Vec::new();
                    s.for_each_held(range.clone(), |i| batched.push(i));
                    s.for_each_held_scalar(range.clone(), |i| scalar.push(i));
                    assert_eq!(batched, scalar, "walk len {len} range {range:?}");
                    assert_eq!(
                        s.any_held(),
                        s.count_held_scalar(0..len) != 0,
                        "any_held len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn lowest_k_bits_selects_from_the_bottom() {
        assert_eq!(PackedSlots::lowest_k_bits(0, 5), 0);
        assert_eq!(PackedSlots::lowest_k_bits(0b1011, 0), 0);
        assert_eq!(PackedSlots::lowest_k_bits(0b1011, 2), 0b0011);
        assert_eq!(PackedSlots::lowest_k_bits(0b1011, 3), 0b1011);
        assert_eq!(PackedSlots::lowest_k_bits(0b1011, 9), 0b1011);
        assert_eq!(PackedSlots::lowest_k_bits(u64::MAX, 1), 1);
        assert_eq!(PackedSlots::lowest_k_bits(1u64 << 63, 1), 1u64 << 63);
    }

    #[test]
    fn claim_word_window_claims_in_rotation_order() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let s = PackedSlots::new(128);
            // Window 64..128, probe lands at 100: expect 100.. then wrap.
            assert!(s.try_acquire(101, kind));
            let mut won = Vec::new();
            let got = s.claim_word_window(64..128, 100, 4, kind, &mut |i| won.push(i));
            assert_eq!(got, 4, "{kind:?}");
            assert_eq!(won, vec![100, 102, 103, 104], "{kind:?}");
            // Fewer free than k: wraps below the pivot and stops at the count.
            let s = PackedSlots::new(128);
            for idx in 66..126 {
                assert!(s.try_acquire(idx, kind));
            }
            let mut won = Vec::new();
            let got = s.claim_word_window(64..128, 100, 10, kind, &mut |i| won.push(i));
            assert_eq!(got, 4, "{kind:?}");
            assert_eq!(won, vec![126, 127, 64, 65], "{kind:?}");
            // Full window yields nothing.
            let mut won = Vec::new();
            assert_eq!(
                s.claim_word_window(64..128, 70, 3, kind, &mut |i| won.push(i)),
                0
            );
            assert!(won.is_empty());
            // k == 0 is a no-op.
            assert_eq!(s.claim_word_window(0..64, 5, 0, kind, &mut |_| panic!()), 0);
        }
    }

    #[test]
    fn claim_word_window_respects_partial_windows() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            // A window clipped at both ends (range 67..70 within word 1).
            let s = PackedSlots::new(128);
            let mut won = Vec::new();
            let got = s.claim_word_window(67..70, 68, 8, kind, &mut |i| won.push(i));
            assert_eq!(got, 3, "{kind:?}");
            assert_eq!(won, vec![68, 69, 67], "{kind:?}");
            assert!(!s.is_held(66));
            assert!(!s.is_held(70), "bits outside the window stay free");
            // A tail window shorter than a word at the end of the slab.
            let s = PackedSlots::new(70);
            let mut won = Vec::new();
            let got = s.claim_word_window(64..70, 64, 16, kind, &mut |i| won.push(i));
            assert_eq!(got, 6, "{kind:?}");
            assert_eq!(won, vec![64, 65, 66, 67, 68, 69], "{kind:?}");
        }
    }

    #[test]
    fn claim_word_window_matches_singleton_loop_single_threaded() {
        use larng::RandomSource;
        let mut rng = larng::default_rng(0xC1A1);
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            for _ in 0..if cfg!(miri) { 8 } else { 64 } {
                let batched = PackedSlots::new(64);
                let single = PackedSlots::new(64);
                for idx in 0..64 {
                    if rng.gen_bool(0.5) {
                        assert!(batched.try_acquire(idx, kind));
                        assert!(single.try_acquire(idx, kind));
                    }
                }
                let start = rng.gen_index(64);
                let k = rng.gen_index(10);
                let mut batch_won = Vec::new();
                batched.claim_word_window(0..64, start, k, kind, &mut |i| batch_won.push(i));
                let mut single_won = Vec::new();
                for idx in (start..64).chain(0..start) {
                    if single_won.len() == k {
                        break;
                    }
                    if single.try_acquire(idx, kind) {
                        single_won.push(idx);
                    }
                }
                assert_eq!(batch_won, single_won, "{kind:?} start {start} k {k}");
            }
        }
    }

    #[test]
    fn release_sorted_clears_groups_with_one_rmw_per_word() {
        let s = PackedSlots::new(200);
        let held = [0usize, 5, 63, 64, 100, 150, 199];
        for &idx in &held {
            assert!(s.try_acquire(idx, TasKind::CompareExchange));
        }
        // Release a subset through the bulk kernel, with a name-space base.
        let names: Vec<usize> = [5usize, 63, 64, 150].iter().map(|i| i + 1000).collect();
        s.release_sorted(&names, 1000);
        assert_eq!(s.count_held(0..200), 3);
        for idx in [0usize, 100, 199] {
            assert!(s.is_held(idx));
        }
        s.release_sorted(&[0, 100, 199], 0);
        assert!(!s.any_held());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn release_sorted_panics_on_unheld_slot() {
        let s = PackedSlots::new(64);
        assert!(s.try_acquire(3, TasKind::CompareExchange));
        s.release_sorted(&[3, 4], 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn release_sorted_panics_on_duplicate_index() {
        let s = PackedSlots::new(64);
        assert!(s.try_acquire(3, TasKind::CompareExchange));
        s.release_sorted(&[3, 3], 0);
    }

    /// Concurrent multi-claims over the same word never hand out the same
    /// slot twice, for both primitives (CAS fallback path included).
    #[test]
    fn concurrent_claim_word_window_is_exclusive() {
        let rounds = if cfg!(miri) { 4 } else { 50 };
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            for round in 0..rounds {
                let slab = Arc::new(PackedSlots::new(64));
                let total = Arc::new(AtomicUsize::new(0));
                std::thread::scope(|scope| {
                    for t in 0..4 {
                        let slab = Arc::clone(&slab);
                        let total = Arc::clone(&total);
                        scope.spawn(move || {
                            let mut won = Vec::new();
                            let start = (round * 7 + t * 13) % 64;
                            slab.claim_word_window(0..64, start, 20, kind, &mut |i| won.push(i));
                            total.fetch_add(won.len(), Ordering::Relaxed);
                        });
                    }
                });
                let claimed = total.load(Ordering::Relaxed);
                assert_eq!(
                    slab.count_held(0..64),
                    claimed,
                    "{kind:?}: every reported win must map to a distinct held bit"
                );
            }
        }
    }

    /// `collect_into` appends exactly the held names (offset by the base), in
    /// increasing order, preserving whatever the vector already holds.
    #[test]
    fn collect_into_matches_the_walk_and_appends() {
        use crate::name::Name;
        let len = if cfg!(miri) { 300 } else { 5000 };
        let s = PackedSlots::new(len);
        for idx in (0..len).step_by(3) {
            assert!(s.try_acquire(idx, TasKind::Swap));
        }
        let mut expected = vec![Name::new(7)];
        s.for_each_held(1..len - 1, |i| expected.push(Name::new(1000 + i)));
        let mut out = vec![Name::new(7)];
        s.collect_into(1..len - 1, 1000, &mut out);
        assert_eq!(out, expected);
        // An empty range appends nothing.
        s.collect_into(4..4, 0, &mut out);
        assert_eq!(out, expected);
    }
}
