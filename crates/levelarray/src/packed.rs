//! The bit-packed slot slab: 64 test-and-set registers per atomic word.
//!
//! A [`PackedSlots`] stores the one-bit held/free state of `len` slots in
//! `⌈len / 64⌉` `AtomicU64` words.  Acquire is a `fetch_or` on one bit (a
//! single wait-free RMW that can never fail spuriously), free is a
//! `fetch_and` clearing it, and the scan paths — `Collect`, the occupancy
//! censuses, `batchwise_occupancy` — snapshot each word *once* and walk its
//! set bits with `trailing_zeros`, so a scan touches 1/32 of the memory the
//! word-per-slot layout ([`crate::slot::Slot`]) reads for the same
//! information.  That is exactly the paper's pitch for the activity array
//! (§1: `Collect` reads a small, cache-friendly region) taken to its memory
//! floor.
//!
//! The trade-off is write-side density: 512 slots share each cache line, so
//! concurrent `Get`s invalidate each other's lines more often than under the
//! word-per-slot layout.  [`crate::slot::SlotLayout`] exposes the choice as a
//! configuration knob, and the layout sweep in the `sweeps` bench measures
//! both sides of the trade.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::slot::TasKind;

/// Number of slots stored per atomic word.
const BITS: usize = u64::BITS as usize;

/// A slab of one-bit test-and-set registers packed 64-per-word.
///
/// Indices are dense `0..len()`; all operations panic (in debug builds) or
/// touch an in-range word (in release builds) only for valid indices — the
/// callers in [`crate::probe_core`] validate names before indexing, exactly
/// as they do for the word-per-slot slab.
///
/// # Examples
///
/// ```
/// use levelarray::packed::PackedSlots;
/// use levelarray::TasKind;
///
/// let slab = PackedSlots::new(100);
/// assert!(slab.try_acquire(42, TasKind::CompareExchange));
/// assert!(!slab.try_acquire(42, TasKind::Swap), "second acquire must lose");
/// assert!(slab.is_held(42));
/// assert_eq!(slab.count_held(0..100), 1);
/// assert!(slab.release(42));
/// assert!(!slab.is_held(42));
/// ```
#[derive(Debug)]
pub struct PackedSlots {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl PackedSlots {
    /// Creates a slab of `len` free slots.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(BITS)).map(|_| AtomicU64::new(0)).collect();
        PackedSlots { words, len }
    }

    /// Number of slots (not words) in the slab.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab has zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn split(idx: usize) -> (usize, u64) {
        (idx / BITS, 1u64 << (idx % BITS))
    }

    /// Attempts to win slot `idx` with the requested primitive.  Returns
    /// `true` if this call transitioned the slot from free to held.
    ///
    /// Both kinds resolve the race with a single `fetch_or`, which — unlike a
    /// word-per-slot compare-exchange retry loop would be — is wait-free even
    /// when neighbouring bits of the word churn concurrently.  The [`TasKind`]
    /// distinction maps onto the bit representation as *test-then-set*
    /// ([`TasKind::CompareExchange`]: skip the RMW when the bit is visibly
    /// held, mirroring a failed compare-exchange performing no write) versus
    /// unconditional RMW ([`TasKind::Swap`]: always write, like `swap`).
    #[inline]
    pub fn try_acquire(&self, idx: usize, kind: TasKind) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        let (word, bit) = Self::split(idx);
        if kind == TasKind::CompareExchange && self.words[word].load(Ordering::Acquire) & bit != 0 {
            return false;
        }
        self.words[word].fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Releases slot `idx`.  Returns `true` if the slot was held (the normal
    /// case); `false` means the caller released a free slot — a protocol
    /// violation the caller should treat as a bug.
    #[inline]
    pub fn release(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        let (word, bit) = Self::split(idx);
        self.words[word].fetch_and(!bit, Ordering::AcqRel) & bit != 0
    }

    /// Reads whether slot `idx` is currently held (an acquire load, not a
    /// snapshot — the same validity contract as [`crate::slot::Slot::is_held`]).
    #[inline]
    pub fn is_held(&self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "slot index {idx} out of range {}", self.len);
        let (word, bit) = Self::split(idx);
        self.words[word].load(Ordering::Acquire) & bit != 0
    }

    /// Visits every word overlapping `range`, passing the index of the word's
    /// first slot and the word's snapshot masked down to the slots inside the
    /// range.  One acquire load per word — this is the whole point of the
    /// packed layout.
    #[inline]
    fn for_each_word(&self, range: Range<usize>, mut f: impl FnMut(usize, u64)) {
        debug_assert!(range.end <= self.len, "range {range:?} out of {}", self.len);
        if range.start >= range.end {
            return;
        }
        let first = range.start / BITS;
        let last = (range.end - 1) / BITS;
        for word in first..=last {
            let mut mask = u64::MAX;
            if word == first {
                mask &= u64::MAX << (range.start % BITS);
            }
            if word == last {
                let tail = range.end - word * BITS;
                if tail < BITS {
                    mask &= (1u64 << tail) - 1;
                }
            }
            f(word * BITS, self.words[word].load(Ordering::Acquire) & mask);
        }
    }

    /// The number of held slots in `range`: one load plus a `count_ones` per
    /// word.
    pub fn count_held(&self, range: Range<usize>) -> usize {
        let mut count = 0usize;
        self.for_each_word(range, |_, bits| count += bits.count_ones() as usize);
        count
    }

    /// Calls `f` with the index of every held slot in `range`, in increasing
    /// order.  Each word is snapshotted once and its set bits are walked with
    /// `trailing_zeros`.
    pub fn for_each_held(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        self.for_each_word(range, |base, mut bits| {
            while bits != 0 {
                f(base + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        });
    }

    /// Whether any slot in the slab is held — the drained check of the
    /// elastic retirement protocol, at one load per word.
    pub fn any_held(&self) -> bool {
        self.words.iter().any(|w| w.load(Ordering::Acquire) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn new_slab_is_all_free() {
        let s = PackedSlots::new(130);
        assert_eq!(s.len(), 130);
        assert!(!s.is_empty());
        assert!(PackedSlots::new(0).is_empty());
        for idx in 0..130 {
            assert!(!s.is_held(idx));
        }
        assert_eq!(s.count_held(0..130), 0);
        assert!(!s.any_held());
    }

    #[test]
    fn acquire_release_cycle_both_kinds() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let s = PackedSlots::new(70);
            // Cross a word boundary on purpose.
            for idx in [0usize, 63, 64, 69] {
                assert!(s.try_acquire(idx, kind), "{kind:?} idx {idx}");
                assert!(s.is_held(idx));
                assert!(!s.try_acquire(idx, kind), "second acquire must lose");
                assert!(s.release(idx));
                assert!(!s.is_held(idx));
                assert!(s.try_acquire(idx, kind), "slot is reusable");
                assert!(s.release(idx));
            }
        }
    }

    #[test]
    fn release_of_free_slot_reports_false() {
        let s = PackedSlots::new(8);
        assert!(!s.release(3));
    }

    #[test]
    fn neighbours_do_not_interfere() {
        let s = PackedSlots::new(128);
        assert!(s.try_acquire(7, TasKind::CompareExchange));
        assert!(s.try_acquire(8, TasKind::Swap));
        assert!(s.release(7));
        assert!(s.is_held(8), "releasing 7 must not clear 8");
        assert!(!s.is_held(7));
        assert!(s.release(8));
    }

    #[test]
    fn count_and_iterate_respect_range_edges() {
        let s = PackedSlots::new(200);
        for idx in [0usize, 5, 63, 64, 100, 150, 199] {
            assert!(s.try_acquire(idx, TasKind::CompareExchange));
        }
        assert_eq!(s.count_held(0..200), 7);
        assert_eq!(s.count_held(0..64), 3);
        assert_eq!(s.count_held(64..200), 4);
        assert_eq!(s.count_held(5..6), 1);
        assert_eq!(s.count_held(6..63), 0);
        assert_eq!(s.count_held(63..65), 2);
        assert_eq!(s.count_held(10..10), 0);

        let mut seen = Vec::new();
        s.for_each_held(60..151, |idx| seen.push(idx));
        assert_eq!(seen, vec![63, 64, 100, 150]);
        assert!(s.any_held());
    }

    #[test]
    fn full_word_boundary_lengths() {
        // len == multiple of 64: the tail mask must not shift by 64.
        let s = PackedSlots::new(128);
        assert!(s.try_acquire(127, TasKind::Swap));
        assert_eq!(s.count_held(0..128), 1);
        let mut seen = Vec::new();
        s.for_each_held(64..128, |idx| seen.push(idx));
        assert_eq!(seen, vec![127]);
    }

    /// Exactly one of many concurrent acquirers can win a free slot, for both
    /// primitives, including when racers hammer neighbouring bits of the same
    /// word.
    #[test]
    fn concurrent_acquire_has_a_unique_winner() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let slab = Arc::new(PackedSlots::new(64));
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                for t in 0..8 {
                    let slab = Arc::clone(&slab);
                    let winners = Arc::clone(&winners);
                    scope.spawn(move || {
                        // Everyone fights for bit 5 while also churning a
                        // private neighbour bit in the same word.
                        let private = 10 + t;
                        for _ in 0..100 {
                            assert!(slab.try_acquire(private, kind));
                            assert!(slab.release(private));
                        }
                        if slab.try_acquire(5, kind) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1, "{kind:?}");
            assert_eq!(slab.count_held(0..64), 1, "{kind:?}");
        }
    }
}
