//! The reusable probing core: the randomized-batch-probing plus
//! sequential-backup machinery of the paper's `Get` (§4), factored out of any
//! particular facade.
//!
//! A [`ProbeCore`] owns one slab of main-array slots partitioned by a
//! [`BatchGeometry`], an optional sequential backup slab, a [`ProbePolicy`]
//! (`c_i` probes per batch), a [`TasKind`] and a [`SlotLayout`] (word-per-slot
//! [`Slot`]s or the bit-packed [`crate::packed::PackedSlots`]).  It knows how
//! to *probe*, *free*, *scan* and *census* those slots — and nothing else.
//! The [`crate::LevelArray`] is a `ProbeCore` plus a contention bound; the
//! [`crate::ShardedLevelArray`] is `S` cache-padded `ProbeCore`s plus shard
//! routing and work stealing.  Keeping the machinery here means every probing
//! facade shares one implementation of the paper's semantics (uniqueness,
//! wait-freedom, occupancy accounting).
//!
//! The probing entry point [`ProbeCore::try_get`] is generic over the
//! caller's [`RandomSource`] so the per-probe draw inlines into the hot loop;
//! the `dyn`-based [`crate::ActivityArray`] trait methods remain available as
//! a thin object-safe wrapper for callers that need dynamic dispatch (the
//! simulator, the bench harness's algorithm registry).
//!
//! This module holds no atomics of its own: every shared-memory access goes
//! through [`Slot`] and [`PackedSlots`], whose atomics come from the
//! [`la_sync`] shim — so the whole probing core runs unmodified under the
//! `la_loom` model checker (see `docs/TESTING.md`).

use std::ops::Range;

use la_fault::fail_point;
use larng::RandomSource;

use crate::array::Acquired;
use crate::config::ProbePolicy;
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{Region, RegionOccupancy};
use crate::packed::{PackedSlots, WordSpan};
use crate::slot::{Slot, SlotLayout, TasKind};

/// Slot span of one batched claim attempt: a probed index is widened to the
/// 64-aligned window around it (clipped to the batch), so that under the
/// bit-packed layout the whole window is exactly one `AtomicU64` and a
/// multi-claim resolves in a single RMW.  The window is defined in *slab*
/// index space — not packed-local space — so every layout claims the same
/// slots for the same RNG stream and the layouts stay in lockstep.
pub(crate) const CLAIM_WINDOW: usize = 64;

/// One slab of test-and-set registers in any of the three representations.
///
/// The variants expose identical semantics (see [`SlotLayout`]); the enum
/// match in each accessor compiles to a perfectly predicted branch on a
/// discriminant that never changes after construction, so the dispatch cost
/// is negligible next to the atomic operation it guards.
#[derive(Debug)]
enum SlotSlab {
    /// One `AtomicU32` per slot.
    WordPerSlot(Box<[Slot]>),
    /// One bit per slot, 64 per `AtomicU64` word.
    Packed(PackedSlots),
    /// Word-per-slot head (`0..word.len()`), bit-packed tail
    /// (`word.len()..len()`).  The split is `word.len()` — there is no
    /// separate field to drift out of sync.
    Hybrid {
        /// The contended head, one `AtomicU32` per slot.
        word: Box<[Slot]>,
        /// The scan-dominated tail, one bit per slot.
        packed: PackedSlots,
    },
}

/// Precomputed census geometry for one region (a main-array batch or the
/// backup): the slot subrange falling on the word-per-slot side of the slab's
/// layout split, and the packed side's word bounds and edge masks resolved
/// once at construction — so repeated censuses (`batch_occupancy`, the
/// facades' `batchwise_occupancy` aggregates) don't re-derive region
/// boundaries per call.
#[derive(Debug, Clone)]
struct CensusRegion {
    /// Word-per-slot subrange, in slab-local slot indices (empty unless the
    /// slab has a word-per-slot head overlapping the region).
    word: Range<usize>,
    /// Packed subrange, in packed-local indices (empty when the region lies
    /// entirely in a word-per-slot head).
    packed: WordSpan,
}

impl SlotSlab {
    fn new(len: usize, layout: SlotLayout) -> Self {
        match layout {
            SlotLayout::WordPerSlot => {
                SlotSlab::WordPerSlot((0..len).map(|_| Slot::new()).collect())
            }
            SlotLayout::Packed => SlotSlab::Packed(PackedSlots::new(len)),
            SlotLayout::Hybrid { packed_from } => {
                let split = packed_from.min(len);
                SlotSlab::Hybrid {
                    word: (0..split).map(|_| Slot::new()).collect(),
                    packed: PackedSlots::new(len - split),
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            SlotSlab::WordPerSlot(slots) => slots.len(),
            SlotSlab::Packed(slab) => slab.len(),
            SlotSlab::Hybrid { word, packed } => word.len() + packed.len(),
        }
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn try_acquire(&self, idx: usize, kind: TasKind) -> bool {
        match self {
            SlotSlab::WordPerSlot(slots) => slots[idx].try_acquire(kind),
            SlotSlab::Packed(slab) => slab.try_acquire(idx, kind),
            SlotSlab::Hybrid { word, packed } => {
                if idx < word.len() {
                    word[idx].try_acquire(kind)
                } else {
                    packed.try_acquire(idx - word.len(), kind)
                }
            }
        }
    }

    #[inline]
    fn release(&self, idx: usize) -> bool {
        match self {
            SlotSlab::WordPerSlot(slots) => slots[idx].release(),
            SlotSlab::Packed(slab) => slab.release(idx),
            SlotSlab::Hybrid { word, packed } => {
                if idx < word.len() {
                    word[idx].release()
                } else {
                    packed.release(idx - word.len())
                }
            }
        }
    }

    #[inline]
    fn is_held(&self, idx: usize) -> bool {
        match self {
            SlotSlab::WordPerSlot(slots) => slots[idx].is_held(),
            SlotSlab::Packed(slab) => slab.is_held(idx),
            SlotSlab::Hybrid { word, packed } => {
                if idx < word.len() {
                    word[idx].is_held()
                } else {
                    packed.is_held(idx - word.len())
                }
            }
        }
    }

    /// Claims up to `k` free slots inside the single-word window `range`
    /// (slab indices), visiting them in rotation order from `start`, and
    /// returns the number claimed.
    ///
    /// The pure bit-packed slab takes the one-RMW multi-claim kernel
    /// ([`PackedSlots::claim_word_window`]) — slab indices and packed indices
    /// coincide, so the slab window is exactly one word.  The word-per-slot
    /// and hybrid slabs claim with one test-and-set per slot in the same
    /// rotation order (under `Hybrid` the packed side's bit alignment is
    /// shifted by `word.len()`, so a slab-aligned window may straddle two
    /// packed words — the loop is the layout-agnostic equivalent).  All three
    /// claim identical slots single-threaded.
    fn claim_window(
        &self,
        range: Range<usize>,
        start: usize,
        k: usize,
        kind: TasKind,
        f: &mut impl FnMut(usize),
    ) -> usize {
        if let SlotSlab::Packed(slab) = self {
            return slab.claim_word_window(range, start, k, kind, f);
        }
        let mut claimed = 0usize;
        for idx in (start..range.end).chain(range.start..start) {
            if claimed == k {
                break;
            }
            if self.try_acquire(idx, kind) {
                claimed += 1;
                f(idx);
            }
        }
        claimed
    }

    /// Releases the sorted slab indices in `indices` (each offset by `base`:
    /// slab-local index is `indices[i] - base`).  Bit-packed regions are
    /// cleared with one `fetch_and` per touched word
    /// ([`PackedSlots::release_sorted`]); word-per-slot regions with one RMW
    /// per slot.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate or unheld index (a double free), reporting the
    /// caller-namespace value.
    fn release_sorted(&self, indices: &[usize], base: usize) {
        let word_side = |slots: &[Slot], indices: &[usize]| {
            for &raw in indices {
                assert!(
                    slots[raw - base].release(),
                    "double free: name {raw} was not held when free_many() was called"
                );
            }
        };
        match self {
            SlotSlab::WordPerSlot(slots) => word_side(slots, indices),
            SlotSlab::Packed(slab) => slab.release_sorted(indices, base),
            SlotSlab::Hybrid { word, packed } => {
                let split = indices.partition_point(|&raw| raw - base < word.len());
                word_side(word, &indices[..split]);
                packed.release_sorted(&indices[split..], base + word.len());
            }
        }
    }

    /// Splits `range` at the hybrid boundary `split` into the word-side part
    /// (slab-local indices) and the packed-side part (packed-local indices).
    fn split_range(range: &Range<usize>, split: usize) -> (Range<usize>, Range<usize>) {
        let word = range.start.min(split)..range.end.min(split);
        let packed = range.start.max(split) - split..range.end.max(split) - split;
        (word, packed)
    }

    /// Resolves `range` into a [`CensusRegion`] for this slab's layout.
    fn census_region(&self, range: Range<usize>) -> CensusRegion {
        match self {
            SlotSlab::WordPerSlot(_) => CensusRegion {
                word: range,
                packed: WordSpan::new(0..0),
            },
            SlotSlab::Packed(slab) => CensusRegion {
                word: 0..0,
                packed: slab.span(range),
            },
            SlotSlab::Hybrid { word, packed } => {
                let (word_part, packed_part) = Self::split_range(&range, word.len());
                CensusRegion {
                    word: word_part,
                    packed: packed.span(packed_part),
                }
            }
        }
    }

    /// The number of held slots in a precomputed [`CensusRegion`].
    fn count_region(&self, region: &CensusRegion) -> usize {
        let word_side = |slots: &[Slot]| {
            slots[region.word.clone()]
                .iter()
                .filter(|s| s.is_held())
                .count()
        };
        match self {
            SlotSlab::WordPerSlot(slots) => word_side(slots),
            SlotSlab::Packed(slab) => slab.count_span(region.packed),
            SlotSlab::Hybrid { word, packed } => word_side(word) + packed.count_span(region.packed),
        }
    }

    /// Direct recount over a raw range — the oracle the census-table test
    /// checks [`SlotSlab::count_region`] against (production counting goes
    /// through the precomputed [`CensusRegion`]s).
    #[cfg(test)]
    fn count_held(&self, range: Range<usize>) -> usize {
        match self {
            SlotSlab::WordPerSlot(slots) => slots[range].iter().filter(|s| s.is_held()).count(),
            SlotSlab::Packed(slab) => slab.count_held(range),
            SlotSlab::Hybrid { word, packed } => {
                let (word_part, packed_part) = Self::split_range(&range, word.len());
                word[word_part].iter().filter(|s| s.is_held()).count()
                    + packed.count_held(packed_part)
            }
        }
    }

    #[inline]
    fn for_each_held(&self, range: Range<usize>, mut f: impl FnMut(usize)) {
        match self {
            SlotSlab::WordPerSlot(slots) => {
                for idx in range {
                    if slots[idx].is_held() {
                        f(idx);
                    }
                }
            }
            SlotSlab::Packed(slab) => slab.for_each_held(range, f),
            SlotSlab::Hybrid { word, packed } => {
                let (word_part, packed_part) = Self::split_range(&range, word.len());
                for idx in word_part {
                    if word[idx].is_held() {
                        f(idx);
                    }
                }
                let split = word.len();
                packed.for_each_held(packed_part, |idx| f(split + idx));
            }
        }
    }

    /// Appends a [`Name`] (offset by `name_base`) for every held slot, in
    /// increasing order, taking the allocation-free packed fast path
    /// ([`PackedSlots::collect_into`]) wherever the slab stores bits.
    #[inline]
    fn collect_all_into(&self, name_base: usize, out: &mut Vec<Name>) {
        match self {
            SlotSlab::WordPerSlot(slots) => {
                for (idx, slot) in slots.iter().enumerate() {
                    if slot.is_held() {
                        out.push(Name::new(name_base + idx));
                    }
                }
            }
            SlotSlab::Packed(slab) => slab.collect_into(0..slab.len(), name_base, out),
            SlotSlab::Hybrid { word, packed } => {
                for (idx, slot) in word.iter().enumerate() {
                    if slot.is_held() {
                        out.push(Name::new(name_base + idx));
                    }
                }
                packed.collect_into(0..packed.len(), name_base + word.len(), out);
            }
        }
    }

    fn any_held(&self) -> bool {
        match self {
            SlotSlab::WordPerSlot(slots) => slots.iter().any(|s| s.is_held()),
            SlotSlab::Packed(slab) => slab.any_held(),
            SlotSlab::Hybrid { word, packed } => {
                word.iter().any(|s| s.is_held()) || packed.any_held()
            }
        }
    }
}

/// Unwind protection for the window between winning a slot's test-and-set
/// and handing the [`Acquired`] to the caller.  If anything in that window
/// panics (in practice: an injected fault under `--cfg la_fault`), the
/// guard's drop releases the slot again so the unwind leaks nothing; the
/// happy path defuses it, which compiles to nothing.
struct WinGuard<'a> {
    slab: &'a SlotSlab,
    idx: usize,
}

impl WinGuard<'_> {
    #[inline]
    fn defuse(self) {
        std::mem::forget(self);
    }
}

impl Drop for WinGuard<'_> {
    fn drop(&mut self) {
        let released = self.slab.release(self.idx);
        debug_assert!(released, "win guard rolled back a slot nobody held");
    }
}

/// One slab of probeable slots: a batched main array plus an optional
/// sequential backup array, with the probing strategy of the paper's `Get`.
///
/// All names handled by a `ProbeCore` are *local*: index `0` is the first
/// main slot and index `main_len()` is the first backup slot.  Facades that
/// compose several cores (e.g. [`crate::ShardedLevelArray`]) are responsible
/// for translating local names into their global namespace.
#[derive(Debug)]
pub struct ProbeCore {
    main: SlotSlab,
    backup: SlotSlab,
    geometry: BatchGeometry,
    probe_policy: ProbePolicy,
    tas_kind: TasKind,
    slot_layout: SlotLayout,
    /// The deterministic probe budget of a failed `try_get`, precomputed at
    /// construction: geometry, policy and backup length are immutable, and
    /// the sharded steal path / elastic fallback path charge this on *every*
    /// exhausted core they walk, so recomputing the per-batch sum there was a
    /// per-operation tax.
    exhausted_probes: u32,
    /// Precomputed census geometry: one [`CensusRegion`] per main batch, plus
    /// a final entry for the backup array when it exists.  Region boundaries
    /// and packed word masks are immutable, so the censuses resolve them once
    /// here instead of per `batch_occupancy` call.
    census: Box<[CensusRegion]>,
}

impl ProbeCore {
    /// Creates a core with `geometry.main_len()` main slots and `backup_len`
    /// backup slots, all free, stored in the requested [`SlotLayout`].
    ///
    /// Under [`SlotLayout::Hybrid`] the split applies to the *main* array;
    /// the backup array — where sequential scans dominate and random CAS
    /// storms never land — is stored fully packed.
    pub fn new(
        geometry: BatchGeometry,
        backup_len: usize,
        probe_policy: ProbePolicy,
        tas_kind: TasKind,
        slot_layout: SlotLayout,
    ) -> Self {
        let main = SlotSlab::new(geometry.main_len(), slot_layout);
        let backup_layout = match slot_layout {
            SlotLayout::Hybrid { .. } => SlotLayout::Packed,
            other => other,
        };
        let backup = SlotSlab::new(backup_len, backup_layout);
        let exhausted_probes = (0..geometry.num_batches())
            .map(|b| probe_policy.probes_in_batch(b))
            .sum::<u32>()
            + backup_len as u32;
        let mut census: Vec<CensusRegion> = geometry
            .batches()
            .map(|range| main.census_region(range))
            .collect();
        if backup_len > 0 {
            census.push(backup.census_region(0..backup_len));
        }
        ProbeCore {
            main,
            backup,
            geometry,
            probe_policy,
            tas_kind,
            slot_layout,
            exhausted_probes,
            census: census.into_boxed_slice(),
        }
    }

    /// The batch layout of the main array.
    pub fn geometry(&self) -> &BatchGeometry {
        &self.geometry
    }

    /// The probe policy (`c_i`) this core uses.
    pub fn probe_policy(&self) -> &ProbePolicy {
        &self.probe_policy
    }

    /// The test-and-set primitive this core uses.
    pub fn tas_kind(&self) -> TasKind {
        self.tas_kind
    }

    /// The slot representation this core stores its registers in.
    pub fn slot_layout(&self) -> SlotLayout {
        self.slot_layout
    }

    /// Number of slots in the main (randomly probed) array.
    pub fn main_len(&self) -> usize {
        self.main.len()
    }

    /// Number of slots in the sequential backup array (0 if disabled).
    pub fn backup_len(&self) -> usize {
        self.backup.len()
    }

    /// Total number of slots (main + backup).
    pub fn capacity(&self) -> usize {
        self.main.len() + self.backup.len()
    }

    /// Whether the (local) `name` lies in the backup array.
    pub fn is_backup_name(&self, name: Name) -> bool {
        name.index() >= self.main.len()
    }

    /// The number of probes a `Get` performs when it exhausts this core
    /// without winning a slot: every randomized probe of every batch plus the
    /// full sequential backup scan.  This is deterministic — and cached at
    /// construction — so composing facades can account for a failed
    /// [`ProbeCore::try_get`] without threading a counter through it and
    /// without re-summing the probe policy on their steal/fallback paths.
    pub fn exhausted_probe_count(&self) -> u32 {
        self.exhausted_probes
    }

    /// The paper's `Get` over this core's slots: `c_i` random test-and-set
    /// probes per batch in increasing batch order, then a sequential scan of
    /// the backup array.  Returns `None` only when every probe lost.
    ///
    /// Generic over the random source so the per-probe draw inlines; pass
    /// `&mut dyn RandomSource` when dynamic dispatch is needed (the blanket
    /// `impl RandomSource for &mut R` makes both spellings work).
    ///
    /// The returned [`Acquired`] carries a *local* name.
    #[must_use = "dropping the result leaks the acquired slot"]
    pub fn try_get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Option<Acquired> {
        let mut probes = 0u32;
        // Randomized phase: c_i probes per batch, batches in increasing order.
        for batch in 0..self.geometry.num_batches() {
            let range = self.geometry.batch_range(batch);
            let len = range.end - range.start;
            let trials = self.probe_policy.probes_in_batch(batch);
            for _ in 0..trials {
                probes += 1;
                let idx = range.start + rng.gen_index(len);
                if self.main.try_acquire(idx, self.tas_kind) {
                    // Won-but-not-returned is the canonical crash window: a
                    // panic here must roll the slot back or it leaks forever.
                    let guard = WinGuard {
                        slab: &self.main,
                        idx,
                    };
                    fail_point!("probe_core::win");
                    guard.defuse();
                    return Some(Acquired::new(Name::new(idx), probes, Some(batch), false));
                }
            }
        }
        // Deterministic backup phase: scan sequentially (paper §4).
        for offset in 0..self.backup.len() {
            probes += 1;
            if self.backup.try_acquire(offset, self.tas_kind) {
                let guard = WinGuard {
                    slab: &self.backup,
                    idx: offset,
                };
                fail_point!("probe_core::backup_win");
                guard.defuse();
                let name = Name::new(self.main.len() + offset);
                return Some(Acquired::new(name, probes, None, true));
            }
        }
        None
    }

    /// The batched `Get`: acquires up to `k` slots in one pass over the
    /// probing sequence, appending an [`Acquired`] (with a *local* name) per
    /// win to `out`, and returns the number acquired.
    ///
    /// The batch walks the same sequence as `k` consecutive singleton
    /// [`ProbeCore::try_get`]s — `c_i` random probes per batch in increasing
    /// batch order, then the sequential backup — so the §5.2 self-healing
    /// occupancy dynamics are unchanged: each batch still receives `c_i`
    /// probe *opportunities per requested name* (the per-batch trial budget
    /// is `c_i × remaining`), and lower batches still fill first.  What the
    /// batch amortizes is the per-name claim cost: every random probe widens
    /// to the 64-aligned `CLAIM_WINDOW` around the probed index and claims
    /// as many still-needed slots as the window holds — one RMW for the whole
    /// window under the bit-packed layout — and the backup phase scans
    /// window-at-a-time instead of slot-at-a-time.
    ///
    /// `probes` is an in/out accumulator: it enters holding the probes
    /// already charged by exhausted cores the caller walked (0 for a flat
    /// facade) and exits holding the running total; every `Acquired` of one
    /// trial reports the total at claim time.  The backup phase charges one
    /// probe per window visited.
    pub fn try_get_many<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        probes: &mut u32,
        out: &mut Vec<Acquired>,
    ) -> usize {
        let before = out.len();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.try_get_many_inner(rng, k, probes, out)
        }));
        match result {
            Ok(won) => won,
            Err(payload) => {
                // A panic mid-batch (an injected fault, or a real one from
                // the caller's RandomSource) leaves earlier trials' wins in
                // `out`; roll them back so the unwind leaks nothing.
                let _quiet = la_fault::suppress();
                for got in out.drain(before..) {
                    self.free(got.name());
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    fn try_get_many_inner<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        probes: &mut u32,
        out: &mut Vec<Acquired>,
    ) -> usize {
        let mut remaining = k;
        if remaining == 0 {
            return 0;
        }
        // Randomized phase: per batch, `c_i` trials per still-missing name;
        // each trial claims up to `remaining` slots from one probed window.
        for batch in 0..self.geometry.num_batches() {
            let range = self.geometry.batch_range(batch);
            let len = range.end - range.start;
            let trials = self.probe_policy.probes_in_batch(batch) as usize * remaining;
            for _ in 0..trials {
                *probes += 1;
                // Pre-claim: a fault here unwinds with earlier trials' wins
                // already in `out`; `try_get_many`'s handler frees them.
                fail_point!("probe_core::claim");
                let idx = range.start + rng.gen_index(len);
                let aligned = (idx / CLAIM_WINDOW) * CLAIM_WINDOW;
                let window = aligned.max(range.start)..(aligned + CLAIM_WINDOW).min(range.end);
                let p = *probes;
                let won =
                    self.main
                        .claim_window(window, idx, remaining, self.tas_kind, &mut |slot| {
                            out.push(Acquired::new(Name::new(slot), p, Some(batch), false));
                        });
                remaining -= won;
                if remaining == 0 {
                    return k;
                }
            }
        }
        // Deterministic backup phase: 64-aligned windows in increasing order,
        // one probe per window visited.
        let base = self.main.len();
        let mut w = 0;
        while w < self.backup.len() && remaining > 0 {
            *probes += 1;
            fail_point!("probe_core::backup_claim");
            let window = w..(w + CLAIM_WINDOW).min(self.backup.len());
            let p = *probes;
            let won = self
                .backup
                .claim_window(window, w, remaining, self.tas_kind, &mut |slot| {
                    out.push(Acquired::new(Name::new(base + slot), p, None, true));
                });
            remaining -= won;
            w += CLAIM_WINDOW;
        }
        k - remaining
    }

    /// Releases a (local) name previously acquired from this core.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range or was not held (a double free).
    pub fn free(&self, name: Name) {
        // Pre-effect by design: a fault here means the Free never happened,
        // so the caller still holds the name and can retry — there is no
        // window where the release is half-applied.
        fail_point!("probe_core::free");
        let (slab, idx) = self.locate(name);
        let released = slab.release(idx);
        assert!(
            released,
            "double free: name {name} was not held when free() was called"
        );
    }

    /// The batched `Free`: releases a set of (local) names, sorting them once
    /// and clearing bit-packed regions with one `fetch_and` per touched word
    /// instead of one RMW per name.
    ///
    /// # Panics
    ///
    /// Panics if any name is out of range, epoch-tagged, duplicated within
    /// the batch, or not currently held (a double free).
    pub fn free_many(&self, names: &[Name]) {
        if names.is_empty() {
            return;
        }
        // Pre-effect, like `free`: the whole batch either releases (the
        // release_sorted kernels only assert, never unwind mid-word) or
        // never starts.
        fail_point!("probe_core::free_many");
        let mut indices = Vec::with_capacity(names.len());
        for &name in names {
            assert_eq!(
                name.epoch(),
                0,
                "a probing core handles only local (epoch-0) names, got {name}"
            );
            let idx = name.index();
            assert!(
                idx < self.capacity(),
                "name {idx} out of range for an array with capacity {}",
                self.capacity()
            );
            indices.push(idx);
        }
        indices.sort_unstable();
        let split = indices.partition_point(|&idx| idx < self.main.len());
        self.main.release_sorted(&indices[..split], 0);
        self.backup
            .release_sorted(&indices[split..], self.main.len());
    }

    /// Directly occupies a specific (local) slot, bypassing the probing
    /// strategy.  Returns `true` if the slot was free and is now held by the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        let (slab, idx) = self.locate(name);
        slab.try_acquire(idx, self.tas_kind)
    }

    /// Attempts to re-occupy the specific slot a Free→Get hint points at with
    /// one test-and-set, without touching the probe sequence or the caller's
    /// random stream.
    ///
    /// On a win it returns the same [`Acquired`] the probe path would report
    /// for that slot — batch tag for a main slot, backup flag for a backup
    /// slot — with a probe count of 1.  `None` means the slot was already
    /// held again (stolen between the Free and this Get) or the name is not a
    /// valid local name (a stale hint); the caller falls through to the
    /// unchanged probe path either way, so uniqueness and the self-healing
    /// analysis are untouched.
    #[must_use = "dropping the result leaks the acquired slot"]
    pub fn hint_acquire(&self, name: Name) -> Option<Acquired> {
        if name.epoch() != 0 {
            return None;
        }
        let idx = name.index();
        if idx < self.main.len() {
            if self.main.try_acquire(idx, self.tas_kind) {
                let batch = self.geometry.batch_of(idx);
                return Some(Acquired::new(name, 1, Some(batch), false));
            }
        } else if idx - self.main.len() < self.backup.len()
            && self
                .backup
                .try_acquire(idx - self.main.len(), self.tas_kind)
        {
            return Some(Acquired::new(name, 1, None, true));
        }
        None
    }

    /// Reads whether a specific (local) slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        let (slab, idx) = self.locate(name);
        slab.is_held(idx)
    }

    /// Calls `f` with every held local index (backup slots offset by
    /// `main_len()`), in increasing order — the scan a `Collect` performs,
    /// exposed as a visitor so facades can map local indices into their own
    /// namespace (global shard names, epoch tags) without an intermediate
    /// allocation.
    pub fn for_each_held(&self, mut f: impl FnMut(usize)) {
        self.main.for_each_held(0..self.main.len(), &mut f);
        let base = self.main.len();
        self.backup
            .for_each_held(0..self.backup.len(), |offset| f(base + offset));
    }

    /// Appends every held local name, offset by `base`, to `out` — the scan a
    /// `Collect` performs, reusable by facades that map local names into a
    /// larger namespace.  Packed slabs take the reserved spare-capacity fast
    /// path of [`PackedSlots::collect_into`] instead of a push per name.
    #[inline]
    pub fn collect_into(&self, base: usize, out: &mut Vec<Name>) {
        self.main.collect_all_into(base, out);
        self.backup.collect_all_into(base + self.main.len(), out);
    }

    /// Whether any slot (main or backup) is currently held — the quiescence
    /// scan of the elastic retirement protocol, at one word-load per 64 slots
    /// under the packed layout.
    pub fn any_held(&self) -> bool {
        self.main.any_held() || self.backup.any_held()
    }

    /// The number of occupied slots in batch `i` of the main array.
    ///
    /// This is the *single* batch-scanning helper: the occupancy census
    /// ([`ProbeCore::region_occupancies`]) and the facades' `batch_occupancy`
    /// accessors all route through it — and it routes through the census
    /// table precomputed at construction, so no region boundary or packed
    /// word mask is re-derived per call.
    pub fn batch_occupancy(&self, i: usize) -> usize {
        self.main.count_region(&self.census[i])
    }

    /// The number of occupied slots in the backup array.
    pub fn backup_occupancy(&self) -> usize {
        match self.census.get(self.geometry.num_batches()) {
            Some(region) => self.backup.count_region(region),
            None => 0,
        }
    }

    /// The per-region census of this core: one [`Region::Batch`] entry per
    /// batch, plus a [`Region::Backup`] entry when the backup array exists.
    /// `label` rewrites each region identifier, letting a sharded facade tag
    /// the same census with its shard index; pass the identity closure for
    /// the plain layout.
    pub fn region_occupancies(&self, label: impl Fn(Region) -> Region) -> Vec<RegionOccupancy> {
        let mut regions: Vec<RegionOccupancy> = self
            .geometry
            .batches()
            .enumerate()
            .map(|(i, range)| {
                let occupied = self.batch_occupancy(i);
                RegionOccupancy::new(label(Region::Batch(i)), range.len(), occupied)
            })
            .collect();
        if !self.backup.is_empty() {
            regions.push(RegionOccupancy::new(
                label(Region::Backup),
                self.backup.len(),
                self.backup_occupancy(),
            ));
        }
        regions
    }

    fn locate(&self, name: Name) -> (&SlotSlab, usize) {
        // Local names are dense epoch-0 indices; an epoch-tagged name would
        // silently alias a local slot if only `index()` were consulted.
        assert_eq!(
            name.epoch(),
            0,
            "a probing core handles only local (epoch-0) names, got {name}"
        );
        let idx = name.index();
        if idx < self.main.len() {
            (&self.main, idx)
        } else if idx - self.main.len() < self.backup.len() {
            (&self.backup, idx - self.main.len())
        } else {
            panic!(
                "name {idx} out of range for an array with capacity {}",
                self.capacity()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;

    fn core_with_layout(n: usize, layout: SlotLayout) -> ProbeCore {
        ProbeCore::new(
            BatchGeometry::for_contention(n),
            n,
            ProbePolicy::default(),
            TasKind::default(),
            layout,
        )
    }

    fn core(n: usize) -> ProbeCore {
        core_with_layout(n, SlotLayout::WordPerSlot)
    }

    /// Every representation, including hybrid splits at both edges and in
    /// the middle of a word (the split is clamped to the main length, so the
    /// same list works for any `n`).
    fn layouts() -> [SlotLayout; 5] {
        [
            SlotLayout::WordPerSlot,
            SlotLayout::Packed,
            SlotLayout::Hybrid { packed_from: 0 },
            SlotLayout::Hybrid { packed_from: 5 },
            SlotLayout::Hybrid { packed_from: 96 },
        ]
    }

    #[test]
    fn dimensions_follow_the_inputs() {
        for layout in layouts() {
            let c = core_with_layout(64, layout);
            assert_eq!(c.main_len(), 128);
            assert_eq!(c.backup_len(), 64);
            assert_eq!(c.capacity(), 192);
            assert_eq!(c.slot_layout(), layout);
            assert!(c.is_backup_name(Name::new(128)));
            assert!(!c.is_backup_name(Name::new(127)));
        }
    }

    #[test]
    fn exhausted_probe_count_is_policy_sum_plus_backup() {
        let c = core(64);
        let batches = c.geometry().num_batches() as u32;
        // Uniform(1): one probe per batch.
        assert_eq!(c.exhausted_probe_count(), batches + 64);

        let per_batch = ProbeCore::new(
            BatchGeometry::for_contention(64),
            0,
            ProbePolicy::PerBatch(vec![4, 2, 1]),
            TasKind::default(),
            SlotLayout::WordPerSlot,
        );
        let expected: u32 = (0..per_batch.geometry().num_batches())
            .map(|b| per_batch.probe_policy().probes_in_batch(b))
            .sum();
        assert_eq!(per_batch.exhausted_probe_count(), expected);
    }

    #[test]
    fn exhausted_core_charges_exactly_the_predicted_probes() {
        for layout in layouts() {
            let n = 4;
            let c = core_with_layout(n, layout);
            let mut rng = default_rng(1);
            let mut held = Vec::new();
            for _ in 0..10_000 {
                match c.try_get(&mut rng) {
                    Some(got) => held.push(got.name()),
                    None => break,
                }
            }
            assert_eq!(held.len(), c.capacity());
            // A try_get on a full core performs the full deterministic budget.
            assert!(c.try_get(&mut rng).is_none());
        }
    }

    #[test]
    fn census_and_batch_occupancy_agree() {
        for layout in layouts() {
            let c = core_with_layout(32, layout);
            let mut rng = default_rng(2);
            for _ in 0..20 {
                let _ = c.try_get(&mut rng);
            }
            let regions = c.region_occupancies(|r| r);
            for (i, region) in regions.iter().enumerate() {
                match region.region() {
                    Region::Batch(b) => {
                        assert_eq!(b, i);
                        assert_eq!(region.occupied(), c.batch_occupancy(b));
                    }
                    Region::Backup => assert_eq!(region.occupied(), c.backup_occupancy()),
                    other => panic!("unexpected region {other:?}"),
                }
            }
        }
    }

    #[test]
    fn collect_into_applies_the_base_offset() {
        for layout in layouts() {
            let c = core_with_layout(8, layout);
            assert!(c.force_occupy(Name::new(3)));
            assert!(c.force_occupy(Name::new(16))); // first backup slot
            let mut out = Vec::new();
            c.collect_into(1000, &mut out);
            assert_eq!(out, vec![Name::new(1003), Name::new(1016)]);
        }
    }

    #[test]
    fn any_held_sees_main_and_backup() {
        for layout in layouts() {
            let c = core_with_layout(8, layout);
            assert!(!c.any_held());
            assert!(c.force_occupy(Name::new(16))); // backup only
            assert!(c.any_held());
            c.free(Name::new(16));
            assert!(!c.any_held());
            assert!(c.force_occupy(Name::new(2))); // main only
            assert!(c.any_held());
        }
    }

    #[test]
    fn layouts_acquire_identical_names_for_identical_seeds() {
        // The probing decisions depend only on the RNG stream and on the
        // held/free state — never on the representation — so cores in
        // different layouts driven by the same seed must agree step for step.
        let word = core_with_layout(16, SlotLayout::WordPerSlot);
        let packed = core_with_layout(16, SlotLayout::Packed);
        let hybrid = core_with_layout(16, SlotLayout::Hybrid { packed_from: 24 });
        let mut rng_w = default_rng(42);
        let mut rng_p = default_rng(42);
        let mut rng_h = default_rng(42);
        let mut acquired = 0usize;
        // A try_get may legitimately miss (None) once the backup is full and
        // every random probe lands on a held slot; all layouts must miss and
        // win in lockstep.
        for step in 0..10_000 {
            let a = word.try_get(&mut rng_w);
            let b = packed.try_get(&mut rng_p);
            let c = hybrid.try_get(&mut rng_h);
            assert_eq!(a, b, "packed diverged at step {step}");
            assert_eq!(a, c, "hybrid diverged at step {step}");
            if a.is_some() {
                acquired += 1;
            }
            if acquired == word.capacity() {
                break;
            }
        }
        assert_eq!(acquired, word.capacity());
        assert!(word.try_get(&mut rng_w).is_none());
        assert!(packed.try_get(&mut rng_p).is_none());
        assert!(hybrid.try_get(&mut rng_h).is_none());
    }

    #[test]
    fn hint_acquire_wins_free_slots_and_rejects_stale_hints() {
        for layout in layouts() {
            let c = core_with_layout(8, layout);
            let mut rng = default_rng(7);
            let got = c.try_get(&mut rng).unwrap();
            let name = got.name();
            // Held slot: the hint CAS must lose.
            assert!(c.hint_acquire(name).is_none());
            c.free(name);
            // Freed slot: one CAS wins it back with the probe-path metadata.
            let hit = c.hint_acquire(name).expect("freed slot should be hintable");
            assert_eq!(hit.name(), name);
            assert_eq!(hit.probes(), 1);
            assert_eq!(hit.used_backup(), c.is_backup_name(name));
            if !c.is_backup_name(name) {
                assert_eq!(hit.batch(), Some(c.geometry().batch_of(name.index())));
            }
            c.free(name);
            // Backup slot hints carry the backup flag.
            let backup_name = Name::new(c.main_len());
            assert!(c.force_occupy(backup_name));
            c.free(backup_name);
            let hit = c.hint_acquire(backup_name).unwrap();
            assert!(hit.used_backup());
            assert_eq!(hit.batch(), None);
            c.free(backup_name);
            // Stale hints — epoch-tagged or out-of-range names — miss without
            // panicking.
            assert!(c.hint_acquire(Name::with_epoch(1, 0)).is_none());
            assert!(c.hint_acquire(Name::new(c.capacity() + 100)).is_none());
        }
    }

    /// The census table must agree with a straight recount for every layout,
    /// including hybrid splits that land inside a batch.
    #[test]
    fn census_table_matches_direct_recount() {
        for layout in layouts() {
            let c = core_with_layout(48, layout);
            let mut rng = default_rng(9);
            for _ in 0..40 {
                let _ = c.try_get(&mut rng);
            }
            for i in 0..c.geometry().num_batches() {
                assert_eq!(
                    c.batch_occupancy(i),
                    c.main.count_held(c.geometry().batch_range(i)),
                    "batch {i} under {layout:?}"
                );
            }
            assert_eq!(
                c.backup_occupancy(),
                c.backup.count_held(0..c.backup_len()),
                "backup under {layout:?}"
            );
        }
    }

    #[test]
    fn get_many_fills_to_capacity_with_unique_names() {
        use std::collections::HashSet;
        for layout in layouts() {
            let c = core_with_layout(16, layout);
            let mut rng = default_rng(21);
            let mut out = Vec::new();
            let mut probes = 0u32;
            let mut total = 0usize;
            while total < c.capacity() {
                let got = c.try_get_many(&mut rng, 7, &mut probes, &mut out);
                assert!(got > 0, "free slots remain, a batch must win ({layout:?})");
                total += got;
            }
            assert_eq!(total, c.capacity(), "{layout:?}");
            let unique: HashSet<_> = out.iter().map(|a| a.name()).collect();
            assert_eq!(unique.len(), out.len(), "{layout:?}");
            // Exhausted: further batches yield nothing but charge probes.
            let before = probes;
            assert_eq!(c.try_get_many(&mut rng, 3, &mut probes, &mut out), 0);
            assert!(probes > before);
            // Metadata matches the slot each name refers to.
            for got in &out {
                assert_eq!(got.used_backup(), c.is_backup_name(got.name()));
                if !got.used_backup() {
                    assert_eq!(got.batch(), Some(c.geometry().batch_of(got.name().index())));
                }
            }
        }
    }

    #[test]
    fn get_many_layouts_stay_in_lockstep() {
        // Batched probing decisions, like singleton ones, depend only on the
        // RNG stream and held/free state — the claim window is defined in
        // slab index space precisely so all layouts claim identical slots.
        let word = core_with_layout(16, SlotLayout::WordPerSlot);
        let packed = core_with_layout(16, SlotLayout::Packed);
        let hybrid = core_with_layout(16, SlotLayout::Hybrid { packed_from: 24 });
        let mut rng_w = default_rng(33);
        let mut rng_p = default_rng(33);
        let mut rng_h = default_rng(33);
        for step in 0..200 {
            let k = 1 + step % 9;
            let (mut ow, mut op, mut oh) = (Vec::new(), Vec::new(), Vec::new());
            let (mut pw, mut pp, mut ph) = (0u32, 0u32, 0u32);
            let a = word.try_get_many(&mut rng_w, k, &mut pw, &mut ow);
            let b = packed.try_get_many(&mut rng_p, k, &mut pp, &mut op);
            let c = hybrid.try_get_many(&mut rng_h, k, &mut ph, &mut oh);
            assert_eq!((a, &ow, pw), (b, &op, pp), "packed diverged at step {step}");
            assert_eq!((a, &ow, pw), (c, &oh, ph), "hybrid diverged at step {step}");
            // Free a deterministic half so the state keeps churning.
            let victims: Vec<Name> = ow
                .iter()
                .map(|g| g.name())
                .enumerate()
                .filter(|(i, _)| i % 2 == 0)
                .map(|(_, n)| n)
                .collect();
            word.free_many(&victims);
            packed.free_many(&victims);
            hybrid.free_many(&victims);
            let keep: Vec<Name> = ow
                .iter()
                .map(|g| g.name())
                .enumerate()
                .filter(|(i, _)| i % 2 == 1)
                .map(|(_, n)| n)
                .collect();
            word.free_many(&keep);
            packed.free_many(&keep);
            hybrid.free_many(&keep);
        }
    }

    #[test]
    fn get_many_probe_totals_thread_through_the_accumulator() {
        let c = core(8);
        let mut rng = default_rng(4);
        let mut out = Vec::new();
        let mut probes = 100u32; // pretend an earlier exhausted core charged 100
        assert!(c.try_get_many(&mut rng, 2, &mut probes, &mut out) > 0);
        assert!(probes > 100);
        for got in &out {
            assert!(got.probes() > 100, "claims report the accumulated total");
            assert!(got.probes() <= probes);
        }
    }

    #[test]
    fn free_many_releases_main_and_backup_in_one_call() {
        for layout in layouts() {
            let c = core_with_layout(8, layout);
            let mut rng = default_rng(5);
            let mut out = Vec::new();
            let mut probes = 0u32;
            let got = c.try_get_many(&mut rng, c.capacity(), &mut probes, &mut out);
            assert_eq!(got, c.capacity());
            assert!(out.iter().any(|a| a.used_backup()), "drain reaches backup");
            // Free in an arbitrary (unsorted) order.
            let mut names: Vec<Name> = out.iter().map(|a| a.name()).collect();
            names.reverse();
            c.free_many(&names);
            assert!(!c.any_held(), "{layout:?}");
            c.free_many(&[]);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn free_many_panics_on_duplicate_name() {
        let c = core(4);
        assert!(c.force_occupy(Name::new(2)));
        c.free_many(&[Name::new(2), Name::new(2)]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn free_many_panics_on_unheld_name() {
        core(4).free_many(&[Name::new(1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn free_many_panics_on_out_of_range_name() {
        core(4).free_many(&[Name::new(10_000)]);
    }

    #[test]
    #[should_panic(expected = "epoch-0")]
    fn free_many_panics_on_epoch_tagged_name() {
        core(4).free_many(&[Name::with_epoch(1, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_name_panics() {
        core(4).free(Name::new(10_000));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_name_panics_packed() {
        core_with_layout(4, SlotLayout::Packed).free(Name::new(10_000));
    }

    #[test]
    #[should_panic(expected = "epoch-0")]
    fn epoch_tagged_local_name_panics() {
        core(4).free(Name::with_epoch(1, 0));
    }
}
