//! The reusable probing core: the randomized-batch-probing plus
//! sequential-backup machinery of the paper's `Get` (§4), factored out of any
//! particular facade.
//!
//! A [`ProbeCore`] owns one slab of main-array [`Slot`]s partitioned by a
//! [`BatchGeometry`], an optional sequential backup slab, a [`ProbePolicy`]
//! (`c_i` probes per batch) and a [`TasKind`].  It knows how to *probe*,
//! *free*, *scan* and *census* those slots — and nothing else.  The
//! [`crate::LevelArray`] is a `ProbeCore` plus a contention bound; the
//! [`crate::ShardedLevelArray`] is `S` cache-padded `ProbeCore`s plus shard
//! routing and work stealing.  Keeping the machinery here means every probing
//! facade shares one implementation of the paper's semantics (uniqueness,
//! wait-freedom, occupancy accounting).

use larng::RandomSource;

use crate::array::Acquired;
use crate::config::ProbePolicy;
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{Region, RegionOccupancy};
use crate::slot::{Slot, TasKind};

/// One slab of probeable slots: a batched main array plus an optional
/// sequential backup array, with the probing strategy of the paper's `Get`.
///
/// All names handled by a `ProbeCore` are *local*: index `0` is the first
/// main slot and index `main_len()` is the first backup slot.  Facades that
/// compose several cores (e.g. [`crate::ShardedLevelArray`]) are responsible
/// for translating local names into their global namespace.
#[derive(Debug)]
pub struct ProbeCore {
    main: Box<[Slot]>,
    backup: Box<[Slot]>,
    geometry: BatchGeometry,
    probe_policy: ProbePolicy,
    tas_kind: TasKind,
}

impl ProbeCore {
    /// Creates a core with `geometry.main_len()` main slots and `backup_len`
    /// backup slots, all free.
    pub fn new(
        geometry: BatchGeometry,
        backup_len: usize,
        probe_policy: ProbePolicy,
        tas_kind: TasKind,
    ) -> Self {
        let main = (0..geometry.main_len()).map(|_| Slot::new()).collect();
        let backup = (0..backup_len).map(|_| Slot::new()).collect();
        ProbeCore {
            main,
            backup,
            geometry,
            probe_policy,
            tas_kind,
        }
    }

    /// The batch layout of the main array.
    pub fn geometry(&self) -> &BatchGeometry {
        &self.geometry
    }

    /// The probe policy (`c_i`) this core uses.
    pub fn probe_policy(&self) -> &ProbePolicy {
        &self.probe_policy
    }

    /// The test-and-set primitive this core uses.
    pub fn tas_kind(&self) -> TasKind {
        self.tas_kind
    }

    /// Number of slots in the main (randomly probed) array.
    pub fn main_len(&self) -> usize {
        self.main.len()
    }

    /// Number of slots in the sequential backup array (0 if disabled).
    pub fn backup_len(&self) -> usize {
        self.backup.len()
    }

    /// Total number of slots (main + backup).
    pub fn capacity(&self) -> usize {
        self.main.len() + self.backup.len()
    }

    /// Whether the (local) `name` lies in the backup array.
    pub fn is_backup_name(&self, name: Name) -> bool {
        name.index() >= self.main.len()
    }

    /// The number of probes a `Get` performs when it exhausts this core
    /// without winning a slot: every randomized probe of every batch plus the
    /// full sequential backup scan.  This is deterministic, so composing
    /// facades can account for a failed [`ProbeCore::try_get`] without
    /// threading a counter through it.
    pub fn exhausted_probe_count(&self) -> u32 {
        let randomized: u32 = (0..self.geometry.num_batches())
            .map(|b| self.probe_policy.probes_in_batch(b))
            .sum();
        randomized + self.backup.len() as u32
    }

    /// The paper's `Get` over this core's slots: `c_i` random test-and-set
    /// probes per batch in increasing batch order, then a sequential scan of
    /// the backup array.  Returns `None` only when every probe lost.
    ///
    /// The returned [`Acquired`] carries a *local* name.
    #[must_use = "dropping the result leaks the acquired slot"]
    pub fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        let mut probes = 0u32;
        // Randomized phase: c_i probes per batch, batches in increasing order.
        for batch in 0..self.geometry.num_batches() {
            let range = self.geometry.batch_range(batch);
            let len = range.end - range.start;
            let trials = self.probe_policy.probes_in_batch(batch);
            for _ in 0..trials {
                probes += 1;
                let idx = range.start + rng.gen_index(len);
                if self.main[idx].try_acquire(self.tas_kind) {
                    return Some(Acquired::new(Name::new(idx), probes, Some(batch), false));
                }
            }
        }
        // Deterministic backup phase: scan sequentially (paper §4).
        for (offset, slot) in self.backup.iter().enumerate() {
            probes += 1;
            if slot.try_acquire(self.tas_kind) {
                let name = Name::new(self.main.len() + offset);
                return Some(Acquired::new(name, probes, None, true));
            }
        }
        None
    }

    /// Releases a (local) name previously acquired from this core.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range or was not held (a double free).
    pub fn free(&self, name: Name) {
        let released = self.slot(name).release();
        assert!(
            released,
            "double free: name {name} was not held when free() was called"
        );
    }

    /// Directly occupies a specific (local) slot, bypassing the probing
    /// strategy.  Returns `true` if the slot was free and is now held by the
    /// caller.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        self.slot(name).try_acquire(self.tas_kind)
    }

    /// Reads whether a specific (local) slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        self.slot(name).is_held()
    }

    /// Appends every held local name, offset by `base`, to `out` — the scan a
    /// `Collect` performs, reusable by facades that map local names into a
    /// larger namespace.
    pub fn collect_into(&self, base: usize, out: &mut Vec<Name>) {
        for (idx, slot) in self.main.iter().enumerate() {
            if slot.is_held() {
                out.push(Name::new(base + idx));
            }
        }
        for (offset, slot) in self.backup.iter().enumerate() {
            if slot.is_held() {
                out.push(Name::new(base + self.main.len() + offset));
            }
        }
    }

    /// The number of occupied slots in batch `i` of the main array.
    ///
    /// This is the *single* batch-scanning helper: the occupancy census
    /// ([`ProbeCore::region_occupancies`]) and the facades' `batch_occupancy`
    /// accessors all route through it.
    pub fn batch_occupancy(&self, i: usize) -> usize {
        self.count_held(self.geometry.batch_range(i))
    }

    /// The number of occupied slots in the backup array.
    pub fn backup_occupancy(&self) -> usize {
        self.backup.iter().filter(|s| s.is_held()).count()
    }

    /// The per-region census of this core: one [`Region::Batch`] entry per
    /// batch, plus a [`Region::Backup`] entry when the backup array exists.
    /// `label` rewrites each region identifier, letting a sharded facade tag
    /// the same census with its shard index; pass the identity closure for
    /// the plain layout.
    pub fn region_occupancies(&self, label: impl Fn(Region) -> Region) -> Vec<RegionOccupancy> {
        let mut regions: Vec<RegionOccupancy> = self
            .geometry
            .batches()
            .enumerate()
            .map(|(i, range)| {
                let occupied = self.count_held(range.clone());
                RegionOccupancy::new(label(Region::Batch(i)), range.len(), occupied)
            })
            .collect();
        if !self.backup.is_empty() {
            regions.push(RegionOccupancy::new(
                label(Region::Backup),
                self.backup.len(),
                self.backup_occupancy(),
            ));
        }
        regions
    }

    fn count_held(&self, range: std::ops::Range<usize>) -> usize {
        range.filter(|&idx| self.main[idx].is_held()).count()
    }

    fn slot(&self, name: Name) -> &Slot {
        // Local names are dense epoch-0 indices; an epoch-tagged name would
        // silently alias a local slot if only `index()` were consulted.
        assert_eq!(
            name.epoch(),
            0,
            "a probing core handles only local (epoch-0) names, got {name}"
        );
        let idx = name.index();
        if idx < self.main.len() {
            &self.main[idx]
        } else if idx - self.main.len() < self.backup.len() {
            &self.backup[idx - self.main.len()]
        } else {
            panic!(
                "name {idx} out of range for an array with capacity {}",
                self.capacity()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;

    fn core(n: usize) -> ProbeCore {
        ProbeCore::new(
            BatchGeometry::for_contention(n),
            n,
            ProbePolicy::default(),
            TasKind::default(),
        )
    }

    #[test]
    fn dimensions_follow_the_inputs() {
        let c = core(64);
        assert_eq!(c.main_len(), 128);
        assert_eq!(c.backup_len(), 64);
        assert_eq!(c.capacity(), 192);
        assert!(c.is_backup_name(Name::new(128)));
        assert!(!c.is_backup_name(Name::new(127)));
    }

    #[test]
    fn exhausted_probe_count_is_policy_sum_plus_backup() {
        let c = core(64);
        let batches = c.geometry().num_batches() as u32;
        // Uniform(1): one probe per batch.
        assert_eq!(c.exhausted_probe_count(), batches + 64);

        let per_batch = ProbeCore::new(
            BatchGeometry::for_contention(64),
            0,
            ProbePolicy::PerBatch(vec![4, 2, 1]),
            TasKind::default(),
        );
        let expected: u32 = (0..per_batch.geometry().num_batches())
            .map(|b| per_batch.probe_policy().probes_in_batch(b))
            .sum();
        assert_eq!(per_batch.exhausted_probe_count(), expected);
    }

    #[test]
    fn exhausted_core_charges_exactly_the_predicted_probes() {
        let n = 4;
        let c = core(n);
        let mut rng = default_rng(1);
        let mut held = Vec::new();
        for _ in 0..10_000 {
            match c.try_get(&mut rng) {
                Some(got) => held.push(got.name()),
                None => break,
            }
        }
        assert_eq!(held.len(), c.capacity());
        // A try_get on a full core performs the full deterministic budget.
        assert!(c.try_get(&mut rng).is_none());
    }

    #[test]
    fn census_and_batch_occupancy_agree() {
        let c = core(32);
        let mut rng = default_rng(2);
        for _ in 0..20 {
            let _ = c.try_get(&mut rng);
        }
        let regions = c.region_occupancies(|r| r);
        for (i, region) in regions.iter().enumerate() {
            match region.region() {
                Region::Batch(b) => {
                    assert_eq!(b, i);
                    assert_eq!(region.occupied(), c.batch_occupancy(b));
                }
                Region::Backup => assert_eq!(region.occupied(), c.backup_occupancy()),
                other => panic!("unexpected region {other:?}"),
            }
        }
    }

    #[test]
    fn collect_into_applies_the_base_offset() {
        let c = core(8);
        assert!(c.force_occupy(Name::new(3)));
        assert!(c.force_occupy(Name::new(16))); // first backup slot
        let mut out = Vec::new();
        c.collect_into(1000, &mut out);
        assert_eq!(out, vec![Name::new(1003), Name::new(1016)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_name_panics() {
        core(4).free(Name::new(10_000));
    }

    #[test]
    #[should_panic(expected = "epoch-0")]
    fn epoch_tagged_local_name_panics() {
        core(4).free(Name::with_epoch(1, 0));
    }
}
