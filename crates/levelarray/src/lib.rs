//! # LevelArray — fast, practical long-lived renaming
//!
//! A from-scratch Rust implementation of the **LevelArray** activity array of
//! Alistarh, Kopinsky, Matveev and Shavit (*"The LevelArray: A Fast, Practical
//! Long-Lived Renaming Algorithm"*, ICDCS 2014).
//!
//! ## The problem
//!
//! Up to `n` threads repeatedly *register* with and *deregister* from a shared
//! computation while other threads periodically *scan* the set of registered
//! threads — the pattern at the heart of memory reclamation for lock-free data
//! structures, STM conflict detection, flat combining and barriers.  In the
//! theory literature this is **long-lived renaming**; practitioners call the
//! data structure that solves it an **activity array** or *dynamic collect*.
//!
//! ## The algorithm
//!
//! The main array has `2n` slots split into geometrically shrinking batches
//! (`3n/2`, `n/4`, `n/8`, ...).  [`ActivityArray::get`] performs a constant
//! number of random test-and-set probes per batch, in increasing batch order,
//! and stops at the first probe it wins; an `n`-slot backup array probed
//! sequentially guarantees wait-freedom.  [`ActivityArray::free`] resets the
//! slot; [`ActivityArray::collect`] scans the array.  Registration takes a
//! *constant* number of probes in expectation and `O(log log n)` with high
//! probability, over arbitrarily long executions, and the structure is
//! *self-healing*: it recovers from unbalanced states without any explicit
//! rebuilding (paper §5.2, reproduced by the `la-sim` crate and the `healing`
//! benchmark).
//!
//! ## Quick start
//!
//! ```
//! use levelarray::{ActivityArray, LevelArray, Registration};
//! use larng::default_rng;
//!
//! // One shared array sized for the maximum number of concurrent holders.
//! let array = LevelArray::new(64);
//! let mut rng = default_rng(0xC0FFEE);
//!
//! // Explicit get/free...
//! let got = array.get(&mut rng);
//! println!("registered as name {} after {} probes", got.name(), got.probes());
//! array.free(got.name());
//!
//! // ...or RAII-style registration.
//! let reg = Registration::acquire(&array, &mut rng);
//! assert!(array.collect().contains(&reg.name()));
//! drop(reg);
//! assert!(array.collect().is_empty());
//! ```
//!
//! ## Crate layout
//!
//! * [`ProbeCore`] — the reusable probing machinery (slots, batch geometry,
//!   probe policy, TAS primitive, slot layout) every facade composes.
//! * [`slot`] / [`packed`] — the two slot representations behind
//!   [`SlotLayout`]: one atomic word per slot, or 64 slots bit-packed per
//!   word so scans touch 32× less memory.
//! * [`LevelArray`], [`LevelArrayConfig`] — the paper's algorithm: one
//!   `ProbeCore` plus a contention bound.
//! * [`ShardedLevelArray`] — `S` cache-padded `ProbeCore`s with sticky
//!   per-thread home shards and work stealing, for high-thread-count
//!   deployments.
//! * [`ElasticLevelArray`] — a chain of doubling epoch cells that grows the
//!   contention bound at runtime (names carry an `(epoch, index)` tag; see
//!   [`Name`] and [`GrowthPolicy`]).
//! * [`epoch_chain`] — the lock-free chain under the elastic array: an
//!   atomic head over immutable nodes, CAS-published growth and
//!   grace-counter reclamation, so `Get`/`Free`/`collect` never block on
//!   growth or retirement.
//! * [`topology`] — NUMA topology discovery (`/sys` cpulists with a
//!   round-robin fallback) and the churn-stable home-token pool behind the
//!   sharded facades' sticky thread→shard routing.
//! * [`ActivityArray`] — the trait shared with the baseline implementations in
//!   the `la-baselines` crate.
//! * [`geometry`] — the batch layout (paper §4).
//! * [`balance`] — the balance definitions of the analysis (paper §5).
//! * [`stats`], [`occupancy`] — the measurements the evaluation reports.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod array;
pub mod balance;
pub mod config;
pub mod elastic;
pub mod epoch_chain;
pub mod geometry;
pub mod lease;
pub mod name;
pub mod occupancy;
pub mod packed;
pub mod probe_core;
pub mod registry;
pub mod robust;
pub mod sharded;
pub mod slot;
pub mod stats;
pub mod topology;

mod backend;
mod hint;
mod level_array;

pub use array::{Acquired, ActivityArray, Registration};
pub use config::{ConfigError, GrowthPolicy, LevelArrayConfig, ProbePolicy};
pub use elastic::ElasticLevelArray;
pub use epoch_chain::{ChainNode, ChainPin, ChainRace, EpochChain};
pub use lease::{Lease, LeaseRegistry};
pub use level_array::LevelArray;
pub use name::Name;
pub use occupancy::{OccupancySnapshot, Region, RegionOccupancy};
pub use packed::PackedSlots;
pub use probe_core::ProbeCore;
pub use registry::ThreadRegistry;
pub use robust::RobustnessReport;
pub use sharded::ShardedLevelArray;
pub use slot::{SlotLayout, TasKind};
pub use stats::{GetStats, StatsSummary};
pub use topology::Topology;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LevelArray>();
        assert_send_sync::<ElasticLevelArray>();
        assert_send_sync::<EpochChain<usize>>();
        assert_send_sync::<Name>();
        assert_send_sync::<Acquired>();
        assert_send_sync::<GetStats>();
        assert_send_sync::<OccupancySnapshot>();
    }

    #[test]
    fn level_array_is_usable_as_a_trait_object() {
        let array = LevelArray::new(4);
        let boxed: Box<dyn ActivityArray> = Box::new(array);
        assert_eq!(boxed.max_participants(), 4);
    }
}
