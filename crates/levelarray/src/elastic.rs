//! The elastic LevelArray: epoch-based growth of the contention bound.
//!
//! The paper assumes the contention bound `n` is fixed for the lifetime of
//! the structure.  [`ElasticLevelArray`] relaxes that: it keeps a *chain of
//! epoch cells*, each an array built from the same [`LevelArrayConfig`],
//! where every cell after the first doubles the previous cell's contention
//! bound.  The protocol is a migration in the style of epoch-based
//! reclamation:
//!
//! * **`Get` routes to the newest epoch** and runs the paper's probing
//!   strategy there.  Only when the newest epoch saturates — every random
//!   probe lost *and* its sequential backup region is full — does the
//!   operation consult the [`GrowthPolicy`]: under
//!   [`GrowthPolicy::Doubling`] it opens a new epoch of twice the contention
//!   bound and retries; once the chain is at its `max_epochs` bound (or under
//!   [`GrowthPolicy::Fixed`]) it falls back to walking the older epochs,
//!   newest to oldest, before giving up.
//! * **`Free` returns the slot to the epoch named in its tag** — the
//!   [`Name`] encoding carries `(epoch, index)`, so releases route without
//!   any lookup table.
//! * **`Collect` and the occupancy census union the live epochs**, reporting
//!   per-epoch [`Region::EpochBatch`]/[`Region::EpochBackup`] entries.
//! * **A drained old epoch is retired** once a collect snapshot proves no
//!   name from it is live ([`ElasticLevelArray::try_retire`]); epoch tags
//!   are never reused, so names stay unique across arbitrarily many growth
//!   and retirement events.
//!
//! # The lock-free chain
//!
//! The chain itself is a lock-free [`EpochChain`]: an atomic head pointer
//! over an immutable linked chain of cells, so `Get`, `Free` and `Collect`
//! never block — not on each other, not on growth, not on retirement — and
//! the paper's progress guarantee survives the scaling seam.
//!
//! * **Growth is a CAS.**  A `Get` that saturates the newest epoch builds a
//!   doubled successor cell and CAS-publishes it as the new head
//!   ([`ChainPin::try_push`]).  Losers of the publication race discard
//!   their candidate cell and route into the winner's fresh epoch.
//! * **Retirement is seal → grace → census → unlink**, entirely
//!   non-blocking ([`ElasticLevelArray::try_retire`]):
//!   1. *Seal* every drained non-newest cell (a CAS-claimed flag; sealed
//!      cells are skipped by the capped-fallback `Get` walk, so no new
//!      registration can target them once the seal is visible).
//!   2. *Grace*: observe every chain pin stripe at zero **once**.  Success
//!      proves two things at the same instant: every operation that could
//!      still miss the seal has completed, and every slot such an operation
//!      won is already visible.  Failure unseals and bails — a later free
//!      retries; nobody ever waits.
//!   3. *Census*: re-scan each sealed cell.  A zero census after a
//!      successful grace observation is a proof of quiescence, exactly the
//!      argument the dynamic-collect reclamation scheme (`la-reclaim`) uses
//!      for its grace periods; a non-zero census unseals (a racer won a
//!      slot between the drain check and the seal).
//!   4. *Unlink*: CAS-publish a copy of the chain without the confirmed
//!      cells ([`ChainPin::try_remove`]).  The displaced snapshot is freed
//!      only after a later grace observation succeeds
//!      ([`ElasticLevelArray::pending_reclamation`]), so concurrent readers
//!      keep traversing their pinned snapshot unharmed.
//!
//! `Free` triggers step 1 *after* its own critical path completes (slot
//! released, pin dropped), so the draining free never carries the
//! retirement work itself — it only schedules a deferred check
//! ([`LevelArrayConfig::auto_retire`] disables even that).  A pass that
//! bails with work outstanding (drained candidates it could not confirm, or
//! snapshots still awaiting their grace period) re-arms a maintenance flag,
//! and *every* later free — not just a draining one — retries while the
//! flag is set, so a drained epoch cannot be stranded by a single unlucky
//! grace observation.  A grower that publishes over an already-drained
//! predecessor arms the same flag (the predecessor's last free saw it as
//! the newest epoch and scheduled nothing), closing the drain-then-grow
//! race as well.
//!
//! # Hierarchical epochs: elastic-of-sharded
//!
//! With [`LevelArrayConfig::shard_group`] set to a group size `g`, every
//! epoch cell's storage is itself *sharded*: a cell of contention bound `C`
//! is backed by `⌈C / g⌉` cache-padded probing cores instead of one flat
//! slab, so doubling the chain grows the structure by **adding shard
//! groups** rather than doubling a single contended memory region.  Inside a
//! cell, slots live in a dense namespace (`shard · shard_capacity + local`)
//! and the epoch tag rides on top exactly as before —
//! `Name::with_epoch(epoch, dense)` — so every `Free`, hint and census
//! routes through both levels without a lookup table.  Threads are routed to
//! a sticky home shard by the same churn-stable, NUMA-interleaved token pool
//! the sharded facade uses (see [`crate::topology`]), and steal ring-order
//! within the cell on home exhaustion, which preserves the wait-freedom
//! argument per epoch.
//!
//! # Elastic shrink
//!
//! Growth has an inverse: with [`LevelArrayConfig::shrink_watermark`] set,
//! every free samples the newest epoch's advisory occupancy, and once it
//! stays at or below the watermark for a full patience window (a streak of
//! `max(C, 16)` consecutive low samples, so one transient dip never
//! triggers), the array opens a **smaller** successor epoch — half the
//! newest bound, never below the initial — and lets the oversized epoch
//! drain behind it.  From there the existing retirement machinery runs
//! unchanged, just in reverse: the big epoch is now non-newest, so the
//! seal → grace → census → unlink protocol retires it as soon as its last
//! holder frees, returning the memory the growth burst borrowed.  `Get`,
//! `Free` and `Collect` never block on a shrink any more than on a grow —
//! both are one CAS on the chain head.

use la_fault::fail_point;
use la_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
// Watchdog bookkeeping (backoff deadlines, deferred-work counters) uses
// plain std atomics: it is advisory diagnostics, never part of the
// retirement safety argument, and must stay invisible to the loom model.
use std::sync::atomic::{AtomicU32 as StdAtomicU32, AtomicU64 as StdAtomicU64};

use larng::RandomSource;

use crate::array::{Acquired, ActivityArray};
use crate::backend::CellBackend;
use crate::config::{ConfigError, GrowthPolicy, LevelArrayConfig};
use crate::epoch_chain::{now_ms, ChainNode, ChainPin, EpochChain};
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{OccupancySnapshot, Region, RegionOccupancy};
use crate::robust::RobustnessReport;
use crate::topology::{HomePool, Topology};

/// One generation of the elastic chain: a storage backend plus its identity.
#[derive(Debug)]
struct EpochCell {
    /// The epoch tag carried by every name this cell hands out.  Tags are
    /// assigned monotonically and never reused.
    epoch: usize,
    /// The contention bound this cell was sized for.
    contention: usize,
    /// Advisory count of currently held slots (kept exactly in step with
    /// acquisitions and releases; retirement re-verifies with a real scan).
    held: AtomicUsize,
    /// The retirement claim: set while exactly one `try_retire` call owns
    /// this cell's seal→grace→census protocol.  A sealed cell accepts no
    /// new registrations (the fallback `Get` walk skips it) until it is
    /// either unlinked or unsealed.
    sealed: AtomicBool,
    /// The cell's storage: one flat probing core, or — under
    /// [`LevelArrayConfig::shard_group`] — a group of cache-padded shard
    /// cores with a dense in-cell namespace (see [`CellBackend`]).
    backend: CellBackend,
}

impl EpochCell {
    fn new(epoch: usize, contention: usize, backend: CellBackend) -> Self {
        EpochCell {
            epoch,
            contention,
            held: AtomicUsize::new(0),
            sealed: AtomicBool::new(false),
            backend,
        }
    }

    /// Whether a scan observes zero held slots — the collect snapshot a
    /// retirement decision is based on (one word-load per 64 slots under the
    /// packed layout, no allocation under either).
    fn is_drained(&self) -> bool {
        !self.backend.any_held()
    }

    /// Claims the retirement seal; `false` means another retirement attempt
    /// already owns it.
    ///
    /// The seal CAS must be sequentially consistent: a getter that falls
    /// back past a sealed epoch decides with an SC load of `sealed`, and
    /// only the SC total order guarantees it cannot miss a seal that the
    /// retirer published before starting its grace-period observation.
    /// Weakening it to `Relaxed` lets a getter revive a sealed epoch after
    /// the retirer's census — the seeded ordering mutant the `la_loom`
    /// model-checking suite must catch (see `make loom-mutant`).
    fn try_seal(&self) -> bool {
        #[cfg(not(all(la_loom, la_loom_weak_seal)))]
        const SEAL_ORDERING: (Ordering, Ordering) = (Ordering::SeqCst, Ordering::SeqCst);
        #[cfg(all(la_loom, la_loom_weak_seal))]
        const SEAL_ORDERING: (Ordering, Ordering) = (Ordering::Relaxed, Ordering::Relaxed);
        self.sealed
            .compare_exchange(false, true, SEAL_ORDERING.0, SEAL_ORDERING.1)
            .is_ok()
    }

    fn unseal(&self) {
        self.sealed.store(false, Ordering::SeqCst);
    }

    fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::SeqCst)
    }
}

/// A LevelArray whose contention bound grows at runtime through a chain of
/// doubling epochs (see the [module documentation](self) for the protocol).
///
/// # Examples
///
/// Growth under oversubscription, epoch-tagged names, retirement:
///
/// ```
/// use levelarray::{ActivityArray, ElasticLevelArray, GrowthPolicy};
/// use larng::default_rng;
///
/// let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 4 });
/// let mut rng = default_rng(1);
///
/// // Register 10x the initial bound: the chain doubles as needed.
/// let names: Vec<_> = (0..40).map(|_| array.get(&mut rng).name()).collect();
/// assert!(array.num_epochs() >= 2);
/// assert_eq!(array.collect().len(), 40);
///
/// // Freeing everything drains the old epochs; retirement shrinks the chain.
/// for name in names {
///     array.free(name);
/// }
/// array.try_retire();
/// assert_eq!(array.num_epochs(), 1);
/// assert!(array.collect().is_empty());
/// ```
///
/// `Get`, `Free` and `collect` stay non-blocking while the chain grows and
/// retires underneath them — the growth-storm suites (`tests/growth_storm.rs`
/// and the `sweeps` bench's storm cells) drive that seam hard; a drained
/// chain always converges back to one epoch and zero pending reclamation:
///
/// ```
/// use levelarray::{ActivityArray, ElasticLevelArray, GrowthPolicy};
/// use larng::default_rng;
///
/// let array = ElasticLevelArray::new(2, GrowthPolicy::Doubling { max_epochs: 6 });
/// let mut rng = default_rng(2);
/// for round in 1..=3 {
///     // Oversubscribe (forces growth on the first round; later rounds the
///     // surviving doubled epoch absorbs the load), then drain.
///     let names: Vec<_> = (0..30).map(|_| array.get(&mut rng).name()).collect();
///     for name in names {
///         array.free(name);
///     }
///     array.try_retire();
///     assert_eq!(array.num_epochs(), 1);
/// }
/// assert!(array.epochs_opened() >= 2, "the chain grew at least once");
/// assert_eq!(array.pending_reclamation(), 0);
/// ```
#[derive(Debug)]
pub struct ElasticLevelArray {
    /// The lock-free chain of live epoch cells, newest first.
    chain: EpochChain<Arc<EpochCell>>,
    /// The shared knobs (space factor, probe policy, backup, TAS) every epoch
    /// is built from; its contention bound is the *initial* epoch's.
    base: LevelArrayConfig,
    growth: GrowthPolicy,
    /// Whether a draining free schedules the deferred retirement check.
    auto_retire: bool,
    /// Process-unique identity for the per-thread Free→Get hint cache
    /// (see [`crate::hint`]).
    array_id: u64,
    /// Whether `free` arms the per-thread Free→Get hint cache
    /// ([`LevelArrayConfig::free_hint`]).
    free_hint: bool,
    /// Re-arm flag for the deferred maintenance: set whenever a
    /// [`ElasticLevelArray::try_retire`] pass leaves work behind (a grace
    /// observation failed with drained candidates outstanding, or displaced
    /// snapshots are still awaiting reclamation), so the *next* free retries
    /// even though it did not itself drain an epoch.  Without this, the
    /// one-shot check a draining free schedules could fail once (a racer was
    /// pinned) and never run again — old traffic only ever targets the
    /// newest epoch, so the `remaining == 0` trigger never re-fires.
    maintenance_pending: AtomicBool,
    /// Total epochs ever opened.
    epochs_opened: AtomicUsize,
    epochs_retired: AtomicUsize,
    /// The churn-stable home-token pool routing threads to shard cores of
    /// hierarchical (sharded-backend) epochs; unused while every cell is
    /// flat.  Shared semantics with [`crate::ShardedLevelArray`].
    home_pool: Arc<HomePool>,
    /// The shrink trigger ([`LevelArrayConfig::shrink_watermark`]): `None`
    /// disables shrinking.
    shrink_watermark: Option<f64>,
    /// Consecutive free-side samples that observed the newest epoch at or
    /// below the watermark; reset by any sample above it.  Reaching the
    /// patience window opens a smaller epoch (see
    /// [`ElasticLevelArray::try_shrink`]).
    low_streak: AtomicUsize,
    /// Stuck-pin watchdog threshold
    /// ([`LevelArrayConfig::stuck_pin_threshold_ms`]): a failed grace
    /// observation whose oldest pin is at least this old arms the backoff.
    watchdog_threshold_ms: u64,
    /// [`now_ms`] deadline until which retirement and shrink defer (0 = no
    /// backoff armed).  See [`ElasticLevelArray::robustness_report`].
    backoff_until: StdAtomicU64,
    /// Consecutive stuck-grace failures; exponent of the capped backoff.
    backoff_exp: StdAtomicU32,
    /// Shrink attempts skipped while the watchdog backoff was armed.
    deferred_shrinks: StdAtomicU64,
    /// Retirement passes skipped while the watchdog backoff was armed.
    deferred_retirements: StdAtomicU64,
}

/// Cap on the watchdog's exponential backoff: retirement and shrink are
/// never deferred more than ~1 second at a time, so a pin that finally
/// drops is noticed promptly no matter how long it was stuck.
const MAX_BACKOFF_MS: u64 = 1024;

impl ElasticLevelArray {
    /// Creates an elastic array whose initial epoch uses the paper's default
    /// configuration for `initial_contention`, growing per `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_contention == 0` or the growth policy allows zero
    /// epochs.  Use [`LevelArrayConfig::build_elastic`] for fallible
    /// construction and non-default parameters.
    pub fn new(initial_contention: usize, growth: GrowthPolicy) -> Self {
        LevelArrayConfig::new(initial_contention)
            .growth(growth)
            .build_elastic()
            .expect("default configuration is valid for any non-zero contention bound")
    }

    /// Builds an elastic array from a shared configuration: the initial epoch
    /// has the configuration's contention bound, and every later epoch reuses
    /// the same knobs (space factor, probe policy, backup, TAS) at a doubled
    /// bound, per [`LevelArrayConfig::growth_policy`].  The retirement seam
    /// is tuned by [`LevelArrayConfig::auto_retire`] and
    /// [`LevelArrayConfig::pin_stripes`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroEpochs`] if the growth policy allows zero
    /// live epochs and [`ConfigError::ZeroPinStripes`] if the grace counter
    /// has no stripes; otherwise see [`LevelArrayConfig::validate`].
    pub fn from_config(config: &LevelArrayConfig) -> Result<Self, ConfigError> {
        Self::from_config_with_topology(config, Topology::current().clone())
    }

    /// Like [`ElasticLevelArray::from_config`], but routing hierarchical
    /// epochs' home tokens through an explicit [`Topology`] instead of the
    /// discovered machine layout — the injection point for the simulator and
    /// for tests that study placement on machines they are not running on.
    /// (With [`LevelArrayConfig::shard_group`] unset every epoch is flat and
    /// the topology is never consulted.)
    ///
    /// # Errors
    ///
    /// Same as [`ElasticLevelArray::from_config`].
    pub fn from_config_with_topology(
        config: &LevelArrayConfig,
        topology: Topology,
    ) -> Result<Self, ConfigError> {
        config.validate()?;
        let contention = config.max_concurrency_value();
        let backend = CellBackend::build(config, contention)?;
        let cell = Arc::new(EpochCell::new(0, contention, backend));
        Ok(ElasticLevelArray {
            chain: EpochChain::with_stripes(cell, config.pin_stripes_value()),
            base: config.clone(),
            growth: config.growth_policy(),
            auto_retire: config.auto_retire_enabled(),
            array_id: crate::hint::next_array_id(),
            free_hint: config.free_hint_enabled(),
            maintenance_pending: AtomicBool::new(false),
            epochs_opened: AtomicUsize::new(1),
            epochs_retired: AtomicUsize::new(0),
            home_pool: Arc::new(HomePool::new(topology)),
            shrink_watermark: config.shrink_watermark_value(),
            low_streak: AtomicUsize::new(0),
            watchdog_threshold_ms: config.stuck_pin_threshold_ms_value(),
            backoff_until: StdAtomicU64::new(0),
            backoff_exp: StdAtomicU32::new(0),
            deferred_shrinks: StdAtomicU64::new(0),
            deferred_retirements: StdAtomicU64::new(0),
        })
    }

    /// The growth policy in effect.
    pub fn growth_policy(&self) -> GrowthPolicy {
        self.growth
    }

    /// The contention bound of the initial epoch.
    pub fn initial_contention(&self) -> usize {
        self.base.max_concurrency_value()
    }

    /// Number of currently live epochs (the chain length).
    pub fn num_epochs(&self) -> usize {
        self.chain.pin().num_nodes()
    }

    /// The tag of the newest (actively serving) epoch.
    pub fn newest_epoch(&self) -> usize {
        self.chain.pin().head().value().epoch
    }

    /// The tags of the live epochs, oldest first.
    pub fn epoch_ids(&self) -> Vec<usize> {
        let pin = self.chain.pin();
        let mut ids: Vec<usize> = pin.iter().map(|node| node.value().epoch).collect();
        ids.reverse();
        ids
    }

    /// Total epochs opened over the array's lifetime (including retired
    /// ones); growth events so far = `epochs_opened() - 1`.
    pub fn epochs_opened(&self) -> usize {
        self.epochs_opened.load(Ordering::Relaxed)
    }

    /// Total epochs retired over the array's lifetime.
    pub fn epochs_retired(&self) -> usize {
        self.epochs_retired.load(Ordering::Relaxed)
    }

    /// Number of unlinked chain snapshots still awaiting their grace period
    /// (0 once the structure is quiescent and a retirement or collection
    /// pass has run — see [`EpochChain::try_collect_garbage`]).
    pub fn pending_reclamation(&self) -> usize {
        self.chain.pending_garbage()
    }

    /// The contention bound epoch `epoch` was sized for, if it is live.
    pub fn epoch_contention(&self, epoch: usize) -> Option<usize> {
        let pin = self.chain.pin();
        pin.iter()
            .map(|node| node.value())
            .find(|c| c.epoch == epoch)
            .map(|c| c.contention)
    }

    /// The advisory held-slot count of epoch `epoch`, if it is live.  Exact
    /// while no operation is in flight; retirement always re-verifies with a
    /// collect snapshot.
    pub fn epoch_held(&self, epoch: usize) -> Option<usize> {
        let pin = self.chain.pin();
        pin.iter()
            .map(|node| node.value())
            .find(|c| c.epoch == epoch)
            .map(|c| c.held.load(Ordering::Relaxed))
    }

    /// The batch layout of the newest epoch's main array (per shard core,
    /// for a hierarchical epoch — every shard of a cell shares one layout).
    pub fn newest_geometry(&self) -> BatchGeometry {
        self.chain.pin().head().value().backend.geometry().clone()
    }

    /// Number of shard cores backing the newest epoch (1 for a flat epoch).
    pub fn newest_epoch_shards(&self) -> usize {
        self.chain.pin().head().value().backend.num_shards()
    }

    /// Capacity of each shard core of the newest epoch — the stride of the
    /// dense in-cell namespace (the full cell capacity for a flat epoch).
    pub fn newest_shard_capacity(&self) -> usize {
        self.chain.pin().head().value().backend.shard_capacity()
    }

    /// Number of shard cores backing epoch `epoch`, if it is live.
    pub fn epoch_shards(&self, epoch: usize) -> Option<usize> {
        let pin = self.chain.pin();
        pin.iter()
            .map(|node| node.value())
            .find(|c| c.epoch == epoch)
            .map(|c| c.backend.num_shards())
    }

    /// The shard-group size hierarchical epochs are built with (0 = flat
    /// epochs; see [`LevelArrayConfig::shard_group`]).
    pub fn shard_group(&self) -> usize {
        self.base.shard_group_value()
    }

    /// The shrink watermark in effect (`None` = shrinking disabled; see
    /// [`LevelArrayConfig::shrink_watermark`]).
    pub fn shrink_watermark(&self) -> Option<f64> {
        self.shrink_watermark
    }

    /// The topology hierarchical epochs route home tokens through.
    pub fn topology(&self) -> &Topology {
        self.home_pool.topology()
    }

    /// The slot representation every epoch cell stores its registers in
    /// (inherited from the shared base configuration).
    pub fn slot_layout(&self) -> crate::slot::SlotLayout {
        self.base.slot_layout_value()
    }

    /// The elastic `Get`, monomorphized over the caller's random source (see
    /// [`crate::LevelArray::try_get`]): route to the newest epoch, grow on
    /// saturation, fall back to older epochs at the cap.  This inherent
    /// method shadows [`ActivityArray::try_get`] for callers holding the
    /// concrete type.
    #[must_use = "dropping the result leaks the acquired name"]
    pub fn try_get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Option<Acquired> {
        let mut probes = 0u32;
        let pin = self.chain.pin();
        // Post-pin, pre-win: an unwind here drops the pin (count stays
        // exact) with nothing acquired; a *pause* here is the deterministic
        // stuck pin the watchdog suites wedge retirement with.
        fail_point!("elastic::pinned_get");
        if self.free_hint {
            if let Some(hinted) = crate::hint::take(self.array_id) {
                if let Some(got) = Self::hint_acquire(&pin, hinted) {
                    return Some(got);
                }
            }
        }
        loop {
            // Route to the newest epoch and run the paper's Get there.  A
            // sealed head is a transient stale view (only non-newest cells
            // are ever sealed); skipping it routes us through the retry path
            // to the real head.
            let observed = pin.head();
            let newest = observed.value();
            if !newest.is_sealed() {
                match newest.backend.try_get(rng, self.home_for(newest)) {
                    Some(local) => return Some(Self::tag_guarded(newest, local, probes)),
                    None => probes += newest.backend.exhausted_probe_count(),
                }
            }
            // The newest epoch saturated (its backup region included): open a
            // successor if the policy allows, then retry against it.
            if self.open_epoch(&pin, observed) {
                continue;
            }
            // Growth unavailable: walk the older epochs, newest to oldest,
            // skipping cells sealed by an in-flight retirement check (they
            // are drained, so there is nothing to win there anyway).
            if !std::ptr::eq(pin.head(), observed) {
                continue; // raced with a concurrent grower or retirer
            }
            for node in observed.iter().skip(1) {
                let cell = node.value();
                if cell.is_sealed() {
                    continue;
                }
                match cell.backend.try_get(rng, self.home_for(cell)) {
                    Some(local) => return Some(Self::tag_guarded(cell, local, probes)),
                    None => probes += cell.backend.exhausted_probe_count(),
                }
            }
            return None;
        }
    }

    /// The elastic batched `Get` (see [`ActivityArray::get_many`]),
    /// monomorphized over the caller's random source.  The whole batch runs
    /// under ONE chain pin with one hint consult and one epoch-routing pass
    /// per cell visited: the newest epoch serves the batch through its
    /// batched kernel (`CellBackend::try_get_many`), saturation opens a
    /// successor exactly like the singleton path, and at the growth cap the
    /// remainder spills into the older epochs newest-to-oldest.  Every win
    /// is epoch-tagged and recorded in its cell's held counter, and the
    /// probe accumulator threads through every cell walked, so the reported
    /// per-win probe counts are cumulative across the routing — the same
    /// convention as [`ElasticLevelArray::try_get`]'s exhausted-probe
    /// carry-over.
    ///
    /// Appends up to `k` wins to `out` (which is not cleared) and returns
    /// how many were appended.
    pub fn get_many<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Acquired>,
    ) -> usize {
        let before_all = out.len();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.get_many_inner(rng, k, out)
        }));
        match result {
            Ok(won) => won,
            Err(payload) => {
                // A panic mid-batch leaves fully tagged wins from earlier
                // cells in `out` (the per-cell handler in `serve_cell`
                // already rolled back the cell that was mid-flight).  Free
                // them through the full elastic path — held counters
                // included — so the unwind leaks nothing.
                let _quiet = la_fault::suppress();
                let wins: Vec<Name> = out.drain(before_all..).map(|got| got.name()).collect();
                for name in wins {
                    ActivityArray::free(self, name);
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    fn get_many_inner<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Acquired>,
    ) -> usize {
        if k == 0 {
            return 0;
        }
        let mut acquired = 0usize;
        let mut probes = 0u32;
        let pin = self.chain.pin();
        fail_point!("elastic::pinned_get");
        if self.free_hint {
            if let Some(hinted) = crate::hint::take(self.array_id) {
                if let Some(got) = Self::hint_acquire(&pin, hinted) {
                    out.push(got);
                    acquired = 1;
                }
            }
        }
        loop {
            if acquired == k {
                return k;
            }
            let observed = pin.head();
            let newest = observed.value();
            if !newest.is_sealed() {
                acquired += self.serve_cell(newest, rng, k - acquired, &mut probes, out);
                if acquired == k {
                    return k;
                }
            }
            // The newest epoch saturated with part of the batch unserved:
            // grow and retry against the successor, mirroring try_get.
            if self.open_epoch(&pin, observed) {
                continue;
            }
            if !std::ptr::eq(pin.head(), observed) {
                continue; // raced with a concurrent grower or retirer
            }
            for node in observed.iter().skip(1) {
                let cell = node.value();
                if cell.is_sealed() {
                    continue;
                }
                acquired += self.serve_cell(cell, rng, k - acquired, &mut probes, out);
                if acquired == k {
                    return k;
                }
            }
            return acquired;
        }
    }

    /// One cell's slice of a batched `Get`: run the cell's batched kernel,
    /// then epoch-tag each win (the core already threads the shared probe
    /// accumulator through every win's count, so the tag adds no base
    /// probes).  Unwind-safe: a panic mid-slice — from the kernel (which
    /// rolls back its own wins) or between tags — frees this cell's wins
    /// and squares its held counter before resuming, so the caller's `out`
    /// only ever holds this cell's *fully tagged* acquisitions plus intact
    /// earlier cells' entries.
    fn serve_cell<R: RandomSource + ?Sized>(
        &self,
        cell: &EpochCell,
        rng: &mut R,
        want: usize,
        probes: &mut u32,
        out: &mut Vec<Acquired>,
    ) -> usize {
        let before = out.len();
        // Survives the unwind (unlike closure locals): how many wins were
        // tagged — and held-counted — before the panic.
        let tagged = std::cell::Cell::new(0usize);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let won = cell
                .backend
                .try_get_many(rng, self.home_for(cell), want, probes, out);
            for got in &mut out[before..] {
                fail_point!("elastic::tag_many");
                *got = Self::tag(cell, *got, 0);
                tagged.set(tagged.get() + 1);
            }
            won
        }));
        match result {
            Ok(won) => won,
            Err(payload) => {
                let _quiet = la_fault::suppress();
                let t = tagged.get();
                // Tail first: wins the kernel claimed but the tag loop never
                // reached — epoch-local names, no held accounting yet.
                for got in out.drain(before + t..) {
                    cell.backend.free(Name::new(got.name().index()));
                }
                // Then the tagged prefix: strip the epoch tag back off and
                // undo the held increments in one step.
                for got in out.drain(before..) {
                    cell.backend.free(Name::new(got.name().index()));
                }
                if t > 0 {
                    cell.held.fetch_sub(t, Ordering::SeqCst);
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Registers through the monomorphized hot path, panicking if the chain
    /// is exhausted (same contract as [`ActivityArray::get`]).
    ///
    /// # Panics
    ///
    /// Panics if no free slot could be acquired, i.e. the caller violated the
    /// (current) contention bound and the growth policy forbids growing.
    pub fn get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Acquired {
        self.try_get(rng).unwrap_or_else(|| {
            panic!(
                "{}: no free slot; the contention bound ({}) was exceeded",
                ActivityArray::algorithm_name(self),
                ActivityArray::max_participants(self)
            )
        })
    }

    /// Retires every non-newest epoch whose collect snapshot proves it
    /// quiescent, returning how many were retired.  Non-blocking: the call
    /// makes *one* grace-period observation (see the [module
    /// documentation](self) for the seal → grace → census → unlink
    /// protocol); if concurrent operations are in flight it simply returns
    /// `0` and re-arms the deferred maintenance flag, so the next free (or
    /// explicit call) retries — a drained epoch is retired as soon as one
    /// observation catches the structure between operations.  The newest
    /// epoch is never retired (the chain always keeps one serving cell).
    pub fn try_retire(&self) -> usize {
        // Stuck-pin watchdog: while the backoff deadline is armed, skip the
        // pass entirely — hammering grace observations against a pin that
        // has not moved for `watchdog_threshold_ms` is a livelock, not
        // progress.  Deferring is always safe (retirement is best-effort);
        // the re-armed maintenance flag retries once the deadline passes.
        if self.watchdog_deferring() {
            self.deferred_retirements
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.maintenance_pending.store(true, Ordering::SeqCst);
            return 0;
        }
        // Phase 1 (pinned): seal-claim every apparently-drained old cell.
        // The Arc clones keep the cells reachable after the pin drops.
        // Candidates another retirement pass already owns count as
        // outstanding work for the re-arm decision below.
        let mut claimed: Vec<Arc<EpochCell>> = Vec::new();
        let mut unclaimed = 0usize;
        {
            let pin = self.chain.pin();
            for node in pin.iter().skip(1) {
                let cell = node.value();
                if cell.held.load(Ordering::SeqCst) == 0 {
                    if cell.try_seal() {
                        claimed.push(Arc::clone(cell));
                    } else {
                        unclaimed += 1;
                    }
                }
            }
        }
        // A retirer that dies holding seals would orphan its candidate
        // epochs — sealed cells serve no Gets and nobody else can claim
        // them.  The guard unseals everything still claimed if this pass
        // unwinds; on the normal paths the explicit unseals/unlinks below
        // run first and a (then-redundant) unseal of an unlinked cell is a
        // harmless store into an unreachable node.
        struct UnsealOnUnwind<'a>(&'a [Arc<EpochCell>]);
        impl Drop for UnsealOnUnwind<'_> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    for cell in self.0 {
                        cell.unseal();
                    }
                }
            }
        }
        let _unseal_guard = UnsealOnUnwind(&claimed);
        fail_point!("elastic::retire::sealed");
        if claimed.is_empty() {
            return self.finish_maintenance(0, unclaimed, false);
        }
        // Phase 2 (unpinned): one grace observation.  Success proves every
        // operation that could still miss the seals has completed.
        if !self.chain.no_active_pins() {
            for cell in &claimed {
                cell.unseal();
            }
            self.note_grace_failure();
            // Our candidates are still drained; a later pass must retry.
            return self.finish_maintenance(0, unclaimed, true);
        }
        self.note_grace_success();
        // Phase 3: the definitive census.  No new registration can reach a
        // sealed cell now, so a zero scan is a proof of quiescence.
        let mut confirmed: Vec<usize> = Vec::new();
        for cell in &claimed {
            if cell.is_drained() {
                confirmed.push(cell.epoch);
            } else {
                // A racer won a slot between the drain check and the seal:
                // the cell is live again, not outstanding work.
                cell.unseal();
            }
        }
        if confirmed.is_empty() {
            return self.finish_maintenance(0, unclaimed, false);
        }
        // Phase 4 (pinned): unlink the confirmed cells.  A CAS race means a
        // concurrent grower published first — rebuild against the new head
        // (the confirmed cells stay sealed and in place until we remove
        // them, so the loop is bounded by other threads' progress).
        let retired = loop {
            let pin = self.chain.pin();
            match pin.try_remove(|cell| !confirmed.contains(&cell.epoch)) {
                Ok(removed) => break removed,
                Err(_race) => continue,
            }
        };
        self.epochs_retired.fetch_add(retired, Ordering::Relaxed);
        self.finish_maintenance(retired, unclaimed, false)
    }

    /// The tail of every retirement pass: attempt snapshot reclamation, then
    /// record whether deferred work remains — drained candidates this pass
    /// could not finish (`retry_candidates`), candidates another pass owns
    /// (`unclaimed`), or garbage still awaiting its grace period — so that
    /// `free` re-triggers [`ElasticLevelArray::try_retire`] on later traffic
    /// instead of the check being one-shot.
    fn finish_maintenance(
        &self,
        retired: usize,
        unclaimed: usize,
        retry_candidates: bool,
    ) -> usize {
        self.chain.try_collect_garbage();
        if retry_candidates || unclaimed > 0 || self.chain.pending_garbage() > 0 {
            self.maintenance_pending.store(true, Ordering::SeqCst);
            return retired;
        }
        // This pass saw no leftover work — but its phase-1 scan is stale by
        // now, and a blind clear could overwrite the `true` a concurrent
        // pass stored after failing *its* grace observation, stranding that
        // pass's drained candidate.  Clear first, then re-verify against
        // the current chain and re-arm if anything drained (or any garbage)
        // surfaced in the window: the work either existed before our clear
        // (this re-check sees it — the drain's SeqCst counter update
        // precedes the concurrent flag store our clear overwrote) or it
        // appears later, in which case its own pass sets the flag after us.
        self.maintenance_pending.store(false, Ordering::SeqCst);
        if self.has_deferred_work() {
            self.maintenance_pending.store(true, Ordering::SeqCst);
        }
        retired
    }

    /// Whether the stuck-pin watchdog's backoff deadline is still in the
    /// future — retirement passes and shrinks defer while it is.
    fn watchdog_deferring(&self) -> bool {
        now_ms()
            < self
                .backoff_until
                .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// A grace observation failed.  If the oldest active pin has been stuck
    /// for at least the watchdog threshold, arm (or extend) the capped
    /// exponential backoff: 1ms, 2ms, … up to [`MAX_BACKOFF_MS`] per
    /// consecutive stuck failure.  `fetch_max` so a racing pass never
    /// *shortens* an armed deadline.  Failures against young pins — routine
    /// contention — never back off.
    ///
    /// This is the watchdog's entire authority: it decides when *not* to
    /// run retirement.  It never unseals, never unlinks, and never touches
    /// the grace protocol itself, so a stuck (or merely slow) pinner can
    /// delay reclamation but can never have a live epoch unlinked from
    /// under it — `tests/panic_safety.rs` holds a paused pinner across
    /// retirement attempts to pin that property down.
    fn note_grace_failure(&self) {
        let Some(age) = self.chain.oldest_pin_age_ms() else {
            return;
        };
        if age < self.watchdog_threshold_ms {
            return;
        }
        let exp = self
            .backoff_exp
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .min(10);
        let delay = (1u64 << exp).min(MAX_BACKOFF_MS);
        self.backoff_until
            .fetch_max(now_ms() + delay, std::sync::atomic::Ordering::Relaxed);
    }

    /// The shared tail of `free`/`free_many`: the watermark-triggered
    /// shrink, then the deferred-retirement claim.  Crash-isolated — by the
    /// time this runs the caller's Free has fully completed, so an
    /// *injected* fault inside the best-effort maintenance must not
    /// propagate and make the Free look failed (the caller would retry and
    /// double-free).  The maintenance flag is re-armed instead, so later
    /// traffic finishes the pass.  Genuine panics (assertion failures, not
    /// `la_fault` payloads) still propagate.
    fn run_free_maintenance(&self, shrink_ready: bool, drained_old_epoch: bool) {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if shrink_ready {
                self.try_shrink();
                self.low_streak.store(0, Ordering::Relaxed);
            }
            if self.auto_retire {
                let claimed_maintenance = drained_old_epoch
                    || self
                        .maintenance_pending
                        .compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok();
                if claimed_maintenance {
                    self.try_retire();
                }
            }
        }));
        if let Err(payload) = result {
            if !la_fault::is_injected(payload.as_ref()) {
                std::panic::resume_unwind(payload);
            }
            self.maintenance_pending.store(true, Ordering::SeqCst);
        }
    }

    /// A grace observation succeeded: pins are draining normally, so any
    /// armed backoff is stale.  Disarm it and reset the exponent.
    fn note_grace_success(&self) {
        self.backoff_exp
            .store(0, std::sync::atomic::Ordering::Relaxed);
        self.backoff_until
            .store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// A snapshot of the array's liveness-degradation state: the oldest
    /// active pin's age, and how many retirement passes and shrinks the
    /// stuck-pin watchdog has deferred.  The orphan/quarantine counters are
    /// zero here — they belong to the lease layer
    /// ([`crate::lease::LeaseRegistry::robustness_report`] merges both
    /// views).
    pub fn robustness_report(&self) -> RobustnessReport {
        RobustnessReport {
            orphaned_reclaimed: 0,
            quarantined: 0,
            oldest_pin_age_ms: self.chain.oldest_pin_age_ms(),
            deferred_shrinks: self
                .deferred_shrinks
                .load(std::sync::atomic::Ordering::Relaxed),
            deferred_retirements: self
                .deferred_retirements
                .load(std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// Whether any deferred maintenance exists right now: a drained
    /// (held-count zero) non-newest cell, or displaced snapshots awaiting
    /// their grace period.  Advisory — a held count of zero can be
    /// transient — but a false positive only schedules one extra
    /// [`ElasticLevelArray::try_retire`] pass.
    fn has_deferred_work(&self) -> bool {
        if self.chain.pending_garbage() > 0 {
            return true;
        }
        let pin = self.chain.pin();
        pin.iter()
            .skip(1)
            .any(|node| node.value().held.load(Ordering::SeqCst) == 0)
    }

    /// Looks up the live cell a name belongs to within a pinned snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live (already retired, or never
    /// opened) — either way a caller bug, exactly like an out-of-range index
    /// on the fixed-size arrays.
    fn cell_for<'p>(pin: &'p ChainPin<'_, Arc<EpochCell>>, name: Name) -> &'p EpochCell {
        pin.iter()
            .map(|node| node.value().as_ref())
            .find(|c| c.epoch == name.epoch())
            .unwrap_or_else(|| {
                panic!(
                    "name {name} belongs to epoch {} which is not live (retired or never opened)",
                    name.epoch()
                )
            })
    }

    /// Retries the hinted epoch-tagged slot with one test-and-set.  The
    /// hinted epoch may have been retired (or sealed by an in-flight
    /// retirement check) since the free that recorded it — both reject the
    /// hint instead of panicking, and the caller falls through to the probe
    /// path.  Seal-race safety mirrors [`ElasticLevelArray::force_occupy`]:
    /// the caller's pin blocks the retirement grace period, so a win taken
    /// on an unsealed cell is always visible to the retirement census.  The
    /// hint attempt is not counted as a probe, matching
    /// [`ProbeCore::hint_acquire`].
    ///
    /// **Hint-staleness invariant**: the per-thread hint cache
    /// ([`crate::hint`]) is *never* invalidated by `try_retire` /
    /// `try_shrink` — it cannot be, since it lives in other threads'
    /// thread-locals.  Correctness therefore rests entirely on this
    /// function's re-validation under a fresh pin: a hint naming an epoch
    /// that has since been retired finds no matching live cell (the `find`
    /// returns `None`), and one naming a sealed epoch is rejected by the
    /// `is_sealed` check, so a stale hint degrades to a clean miss and the
    /// probe path takes over.  The `stale_hints_*` regression tests in
    /// `tests/free_hint.rs` pin this behavior down.
    fn hint_acquire(pin: &ChainPin<'_, Arc<EpochCell>>, hinted: Name) -> Option<Acquired> {
        let cell = pin
            .iter()
            .map(|node| node.value().as_ref())
            .find(|c| c.epoch == hinted.epoch())?;
        if cell.is_sealed() {
            return None;
        }
        let local = cell.backend.hint_acquire(Name::new(hinted.index()))?;
        Some(Self::tag(cell, local, 0))
    }

    /// The calling thread's home shard within `cell`: flat cells (the
    /// overwhelmingly common case) short-circuit to 0 without touching the
    /// thread-local token; sharded cells resolve the sticky token through
    /// the pool's topology, reduced modulo the cell's shard count.
    fn home_for(&self, cell: &EpochCell) -> usize {
        let shards = cell.backend.num_shards();
        if shards <= 1 {
            return 0;
        }
        crate::topology::home_shard(self.array_id, &self.home_pool, shards)
    }

    /// Whether `free` arms the per-thread Free→Get hint cache.
    pub fn free_hint_enabled(&self) -> bool {
        self.free_hint
    }

    /// [`ElasticLevelArray::tag`] with the singleton `Get`'s crash window
    /// instrumented: between the backend win and the tag the name exists
    /// nowhere the caller can see, so an unwind there (the `elastic::tag`
    /// failpoint) must release the backend slot again — the guard's drop
    /// does exactly that.  `tag` itself cannot unwind (a `fetch_add` and
    /// field copies), so once it runs the held accounting is always exact.
    fn tag_guarded(cell: &EpochCell, local: Acquired, base_probes: u32) -> Acquired {
        struct BackendWin<'a> {
            cell: &'a EpochCell,
            local: Name,
        }
        impl Drop for BackendWin<'_> {
            fn drop(&mut self) {
                self.cell.backend.free(self.local);
            }
        }
        let guard = BackendWin {
            cell,
            local: local.name(),
        };
        fail_point!("elastic::tag");
        std::mem::forget(guard);
        Self::tag(cell, local, base_probes)
    }

    /// Tags a core-local acquisition with its epoch and the probes charged so
    /// far, and records it in the cell's held counter.
    fn tag(cell: &EpochCell, local: Acquired, base_probes: u32) -> Acquired {
        // SeqCst: the held counter participates in the retirement liveness
        // arguments (candidate scans, the drained-predecessor check in
        // open_epoch, finish_maintenance's re-verify), which reason about
        // its updates in the same total order as the head CAS and the
        // maintenance flag.
        cell.held.fetch_add(1, Ordering::SeqCst);
        Acquired::new(
            Name::with_epoch(cell.epoch, local.name().index()),
            base_probes + local.probes(),
            local.batch(),
            local.used_backup(),
        )
    }

    /// Builds a doubled successor cell and attempts to CAS-publish it over
    /// `observed`.  Returns `true` when the caller should re-read the head
    /// and retry its `Get` (either this thread published, or a racer did and
    /// this thread's candidate was discarded); `false` when the policy
    /// forbids growing past `observed`.
    fn open_epoch(
        &self,
        pin: &ChainPin<'_, Arc<EpochCell>>,
        observed: &ChainNode<Arc<EpochCell>>,
    ) -> bool {
        let newest = observed.value();
        if observed.depth() >= self.growth.max_live_epochs() {
            return false;
        }
        if !std::ptr::eq(pin.head(), observed) {
            // A racer already published past `observed`: retry against the
            // fresh head without building (and discarding) a full candidate
            // cell.  The CAS below still guards correctness — this check
            // only shrinks the growth stampede's wasted allocations to the
            // narrow check-to-CAS window.
            return true;
        }
        let contention = newest.contention.saturating_mul(2);
        // Published or lost the race: either way a fresh epoch is serving.
        // `None` (tag space exhausted) is the only way growth stops here.
        self.publish_epoch(pin, observed, contention).is_some()
    }

    /// Builds a successor cell of bound `contention` and attempts to
    /// CAS-publish it over `observed` — the shared tail of growth
    /// ([`ElasticLevelArray::open_epoch`] doubles) and shrink
    /// ([`ElasticLevelArray::try_shrink`] halves).  Returns `Some(true)`
    /// when this thread published, `Some(false)` when a racer moved the
    /// head first (the candidate is discarded; a fresh epoch is serving
    /// either way), and `None` when the epoch tag space is exhausted
    /// (after ~10^3 publications) — the caller must stop rather than reuse
    /// a tag and break uniqueness.
    fn publish_epoch(
        &self,
        pin: &ChainPin<'_, Arc<EpochCell>>,
        observed: &ChainNode<Arc<EpochCell>>,
        contention: usize,
    ) -> Option<bool> {
        let newest = observed.value();
        let epoch = newest.epoch + 1;
        if epoch > Name::MAX_EPOCH {
            return None;
        }
        let backend = CellBackend::build(&self.base, contention)
            .expect("a resized elastic configuration stays valid");
        let cell = Arc::new(EpochCell::new(epoch, contention, backend));
        let pushed = pin.try_push(observed, cell);
        if pushed {
            self.epochs_opened.fetch_add(1, Ordering::Relaxed);
            // The predecessor may have fully drained *while it was still the
            // newest epoch* — its last free saw `cell.epoch == newest` and
            // scheduled nothing.  Now that it is non-newest it is
            // retirement-eligible and no free will ever re-fire its trigger,
            // so arm the deferred check here.  (The SeqCst held counter
            // makes this airtight: if the draining free's head load preceded
            // this CAS, its decrement is visible to the load below; if it
            // followed the CAS, that free saw the new head and scheduled the
            // check itself.)
            if newest.held.load(Ordering::SeqCst) == 0 {
                self.maintenance_pending.store(true, Ordering::SeqCst);
            }
        }
        Some(pushed)
    }

    /// Opens a **smaller** epoch — half the newest bound, never below the
    /// initial — so an oversized epoch left behind by a growth burst can
    /// drain and retire (the inverse of the doubling a saturated `Get`
    /// triggers; see the [module documentation](self)).  Returns `true` if
    /// this call
    /// published the smaller epoch.  Non-blocking: one chain-head CAS, no
    /// waiting on holders — the big epoch retires later through the normal
    /// seal → grace → census → unlink protocol once its last name is freed.
    ///
    /// Usually triggered automatically by the watermark streak
    /// ([`LevelArrayConfig::shrink_watermark`]); callable explicitly for
    /// tests and for deployments that prefer manual scaling.  A no-op
    /// (returning `false`) under [`GrowthPolicy::Fixed`], at the chain's
    /// `max_epochs` depth, or when the newest epoch is already at the
    /// initial bound.
    pub fn try_shrink(&self) -> bool {
        if !matches!(self.growth, GrowthPolicy::Doubling { .. }) {
            return false;
        }
        // Watchdog backoff: a shrink publishes yet another epoch while a
        // stuck pin is already wedging retirement — the chain would only
        // grow.  Defer until the backoff deadline passes.
        if self.watchdog_deferring() {
            self.deferred_shrinks
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return false;
        }
        let initial = self.base.max_concurrency_value();
        let pin = self.chain.pin();
        let observed = pin.head();
        let newest = observed.value();
        if newest.contention <= initial || observed.depth() >= self.growth.max_live_epochs() {
            return false;
        }
        let target = (newest.contention / 2).max(initial);
        self.publish_epoch(&pin, observed, target) == Some(true)
    }

    /// The free-side shrink sampler: records whether the newest epoch's
    /// advisory occupancy sits at or below the watermark and reports `true`
    /// once the low streak has filled the patience window.  Advisory by
    /// design — the held counter can be mid-flight — but a false sample
    /// only shifts the streak by one, and the window is sized so that
    /// sustained real load always resets it.
    fn note_shrink_sample(&self, pin: &ChainPin<'_, Arc<EpochCell>>) -> bool {
        let Some(watermark) = self.shrink_watermark else {
            return false;
        };
        let newest = pin.head().value();
        if newest.contention <= self.base.max_concurrency_value() {
            return false;
        }
        let held = newest.held.load(Ordering::SeqCst);
        if (held as f64) <= watermark * (newest.contention as f64) {
            let streak = self.low_streak.fetch_add(1, Ordering::Relaxed) + 1;
            streak >= Self::shrink_patience(newest.contention)
        } else {
            self.low_streak.store(0, Ordering::Relaxed);
            false
        }
    }

    /// How many consecutive low samples the watermark must see before a
    /// shrink fires: one per unit of the newest bound, floored at 16 so
    /// tiny epochs still get hysteresis.  Scaling with the bound means a
    /// big epoch — the expensive kind to reopen — demands proportionally
    /// longer evidence of sustained low occupancy.
    fn shrink_patience(contention: usize) -> usize {
        contention.max(16)
    }

    /// The batch-aggregated census: batch `i` of every live epoch folded into
    /// one [`Region::Batch`] entry (epochs that are too small to have batch
    /// `i` simply contribute nothing), likewise the backups — so the paper's
    /// balance definitions, which are predicates over batch totals, apply to
    /// the elastic layout unchanged.  [`ActivityArray::occupancy`] reports
    /// the finer per-epoch census instead.
    pub fn batchwise_occupancy(&self) -> OccupancySnapshot {
        let pin = self.chain.pin();
        let cells: Vec<&EpochCell> = pin.iter().map(|node| node.value().as_ref()).collect();
        let max_batches = cells
            .iter()
            .map(|c| c.backend.geometry().num_batches())
            .max()
            .unwrap_or(0);
        let mut regions: Vec<RegionOccupancy> = (0..max_batches)
            .map(|batch| {
                let mut capacity = 0;
                let mut occupied = 0;
                for cell in &cells {
                    if batch < cell.backend.geometry().num_batches() {
                        capacity += cell.backend.batch_capacity(batch);
                        occupied += cell.backend.batch_occupancy(batch);
                    }
                }
                RegionOccupancy::new(Region::Batch(batch), capacity, occupied)
            })
            .collect();
        let backup_capacity: usize = cells.iter().map(|c| c.backend.backup_capacity()).sum();
        if backup_capacity > 0 {
            let occupied = cells.iter().map(|c| c.backend.backup_occupancy()).sum();
            regions.push(RegionOccupancy::new(
                Region::Backup,
                backup_capacity,
                occupied,
            ));
        }
        OccupancySnapshot::new(regions)
    }

    /// Directly occupies a specific slot of the epoch named in `name`'s tag,
    /// bypassing the probing strategy (test/experiment hook, exactly like
    /// [`crate::LevelArray::force_occupy`]).  A `false` return means the
    /// slot was already held — or that the epoch is sealed by an in-flight
    /// retirement check (it is about to be unlinked or unsealed; either way
    /// it accepts no new occupation right now).
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live or its index is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        let pin = self.chain.pin();
        let cell = Self::cell_for(&pin, name);
        if cell.is_sealed() {
            return false;
        }
        let won = cell.backend.force_occupy(Name::new(name.index()));
        if won {
            cell.held.fetch_add(1, Ordering::SeqCst);
        }
        won
    }

    /// Reads whether a specific slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live or its index is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        let pin = self.chain.pin();
        Self::cell_for(&pin, name)
            .backend
            .is_held(Name::new(name.index()))
    }
}

impl ActivityArray for ElasticLevelArray {
    fn algorithm_name(&self) -> &'static str {
        "ElasticLevelArray"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        ElasticLevelArray::try_get(self, rng)
    }

    fn get_many(&self, rng: &mut dyn RandomSource, k: usize, out: &mut Vec<Acquired>) -> usize {
        ElasticLevelArray::get_many(self, rng, k, out)
    }

    fn free(&self, name: Name) {
        // Pre-effect: an unwind here means the Free never happened — the
        // caller still holds the name and can safely retry.  Past this
        // point the release either completes in full or (an injected fault
        // inside the backend) unwinds before the slot bit clears; the held
        // decrement and the release sit in the same pinned block with no
        // fault site between them.
        fail_point!("elastic::free");
        let (drained_old_epoch, shrink_ready) = {
            let pin = self.chain.pin();
            let cell = Self::cell_for(&pin, name);
            cell.backend.free(Name::new(name.index()));
            // SeqCst, and *before* the head load: if this drain races a
            // grower publishing over this very epoch, either we see the new
            // head (and trigger below) or the grower's post-CAS check sees
            // our decrement (and arms the maintenance flag) — see
            // open_epoch.
            let remaining = cell.held.fetch_sub(1, Ordering::SeqCst) - 1;
            let newest = pin.head().value().epoch;
            (
                cell.epoch != newest && remaining == 0,
                self.note_shrink_sample(&pin),
            )
        };
        // Arm the Free→Get hint with the epoch-tagged name.  If the deferred
        // retirement below unlinks the hinted epoch, the stale hint is
        // rejected by the liveness lookup in hint_acquire — never panics.
        if self.free_hint {
            crate::hint::record(self.array_id, name);
        }
        // Deferred retirement check: the free's own critical path (slot
        // released, pin dropped) is already complete; try_retire is
        // non-blocking, so this never stalls the caller behind growth or
        // other frees.  The maintenance flag re-arms the check after a pass
        // that bailed (grace failed, or garbage was pushed back), so a
        // drained epoch is not stranded just because its own draining free
        // raced with a pinned reader.  The flag is *claimed* (CAS true →
        // false), not merely read: exactly one freeing thread runs the
        // retry pass at a time — a stampede of concurrent passes would pin
        // the chain and defeat each other's grace observations — and the
        // pass itself re-arms the flag if work remains.
        // The watermark streak filled its patience window: open the smaller
        // epoch.  Outside the pinned block (try_shrink takes its own pin)
        // and *before* the retirement check below, so an already-drained
        // oversized epoch — now non-newest — can retire in this same call.
        // The streak restarts either way; on a lost race the winner already
        // restarted the clock by publishing.
        self.run_free_maintenance(shrink_ready, drained_old_epoch);
    }

    /// The batched `Free`: ONE chain pin and one epoch-tag decode (cell
    /// lookup) per epoch *run* cover the whole batch.  [`Name`]'s derived
    /// ordering is epoch-major, so a single sort groups the names into
    /// per-epoch runs; each run strips its tags and releases through the
    /// owning cell's bulk kernel (`CellBackend::free_many`), with one held
    /// counter decrement per run.  A draining batch schedules a single
    /// deferred retirement check after the pin drops, exactly like the
    /// singleton [`ActivityArray::free`].
    ///
    /// # Panics
    ///
    /// Panics if any name's epoch is not live, any index is out of range, or
    /// any slot is not currently held (double free) — duplicates within the
    /// batch included.
    fn free_many(&self, names: &[Name]) {
        if names.is_empty() {
            return;
        }
        // Pre-effect, like the singleton free: an unwind here released
        // nothing and the caller retries the whole batch.
        fail_point!("elastic::free_many");
        let (drained_old_epoch, shrink_ready) = {
            let pin = self.chain.pin();
            let mut sorted = names.to_vec();
            sorted.sort_unstable();
            let mut drained_old_epoch = false;
            let mut start = 0;
            while start < sorted.len() {
                let epoch = sorted[start].epoch();
                let cell = Self::cell_for(&pin, sorted[start]);
                let end = sorted.partition_point(|n| n.epoch() <= epoch);
                for name in &mut sorted[start..end] {
                    *name = Name::new(name.index());
                }
                cell.backend.free_many(&sorted[start..end]);
                // One decrement per run, SeqCst and *before* the head load —
                // the same drain/grow race argument as the singleton free.
                let run = end - start;
                let remaining = cell.held.fetch_sub(run, Ordering::SeqCst) - run;
                let newest = pin.head().value().epoch;
                drained_old_epoch |= cell.epoch != newest && remaining == 0;
                start = end;
            }
            (drained_old_epoch, self.note_shrink_sample(&pin))
        };
        // Re-arm the Free→Get hint with the batch's last name (caller
        // order), matching the singleton free's epoch-tagged hint.
        if self.free_hint {
            if let Some(&last) = names.last() {
                crate::hint::record(self.array_id, last);
            }
        }
        // ONE deferred retirement claim for the whole batch: a batch that
        // drained any old epoch (or claims the pending flag) runs a single
        // try_retire pass, not one per name.
        self.run_free_maintenance(shrink_ready, drained_old_epoch);
    }

    fn route_hint(&self, participant: usize) {
        // Pin the thread's home token to the participant id; each (possibly
        // sharded) epoch cell reduces it modulo its own shard count at Get
        // time.  A no-op for flat cells, which never consult the token.
        crate::topology::pin_home(self.array_id, participant);
    }

    fn collect(&self) -> Vec<Name> {
        let mut held = Vec::new();
        ActivityArray::collect_into(self, &mut held);
        held
    }

    fn collect_into(&self, out: &mut Vec<Name>) {
        let pin = self.chain.pin();
        for node in pin.iter() {
            let cell = node.value();
            cell.backend
                .for_each_held(|local| out.push(Name::with_epoch(cell.epoch, local)));
        }
    }

    fn capacity(&self) -> usize {
        let pin = self.chain.pin();
        pin.iter().map(|node| node.value().backend.capacity()).sum()
    }

    fn max_participants(&self) -> usize {
        let pin = self.chain.pin();
        pin.iter().map(|node| node.value().contention).sum()
    }

    fn occupancy(&self) -> OccupancySnapshot {
        let pin = self.chain.pin();
        let mut cells: Vec<&EpochCell> = pin.iter().map(|node| node.value().as_ref()).collect();
        cells.reverse(); // oldest first, matching epoch_ids()
        let mut regions = Vec::new();
        for cell in cells {
            let epoch = cell.epoch;
            regions.extend(cell.backend.region_occupancies(|region| match region {
                Region::Batch(batch) => Region::EpochBatch { epoch, batch },
                Region::Backup => Region::EpochBackup(epoch),
                other => other,
            }));
        }
        OccupancySnapshot::new(regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use std::collections::HashSet;

    #[test]
    fn initial_dimensions_match_the_plain_layout() {
        let array = ElasticLevelArray::new(16, GrowthPolicy::Fixed);
        let plain = crate::LevelArray::new(16);
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(array.newest_epoch(), 0);
        assert_eq!(array.epoch_ids(), vec![0]);
        assert_eq!(array.capacity(), plain.capacity());
        assert_eq!(array.max_participants(), 16);
        assert_eq!(array.initial_contention(), 16);
        assert_eq!(array.epochs_opened(), 1);
        assert_eq!(array.epochs_retired(), 0);
        assert_eq!(array.pending_reclamation(), 0);
        assert_eq!(array.algorithm_name(), "ElasticLevelArray");
        assert_eq!(array.newest_geometry(), *plain.geometry());
    }

    #[test]
    fn fixed_policy_saturates_like_a_plain_array() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(1);
        let mut held = Vec::new();
        for _ in 0..10_000 {
            match array.try_get(&mut rng) {
                Some(got) => held.push(got.name()),
                None => break,
            }
        }
        assert_eq!(held.len(), array.capacity());
        assert!(array.try_get(&mut rng).is_none());
        assert_eq!(array.num_epochs(), 1, "Fixed must never grow");
        let unique: HashSet<_> = held.iter().collect();
        assert_eq!(unique.len(), held.len());
        for name in held {
            assert_eq!(name.epoch(), 0);
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn saturating_the_newest_epoch_opens_a_doubled_successor() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 4 });
        let mut rng = default_rng(2);
        // Drain epoch 0 (capacity 3n = 12) and keep going: the next
        // acquisitions must come from a fresh epoch of bound 8.
        let mut names = Vec::new();
        while names.len() < 20 {
            names.push(array.get(&mut rng).name());
        }
        assert_eq!(array.num_epochs(), 2);
        assert_eq!(array.epoch_ids(), vec![0, 1]);
        assert_eq!(array.epoch_contention(0), Some(4));
        assert_eq!(array.epoch_contention(1), Some(8));
        assert_eq!(array.epoch_contention(7), None);
        let epochs: HashSet<usize> = names.iter().map(|n| n.epoch()).collect();
        assert_eq!(epochs, HashSet::from([0, 1]));
        // Uniqueness holds across the growth event.
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn capped_chain_falls_back_to_older_epochs() {
        let array = ElasticLevelArray::new(2, GrowthPolicy::Doubling { max_epochs: 2 });
        let mut rng = default_rng(3);
        // Total capacity: 3*2 + 3*4 = 18.  Acquire everything.
        let mut names = HashSet::new();
        for _ in 0..200_000 {
            if names.len() == 18 {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                assert!(names.insert(got.name()), "duplicate {}", got.name());
            }
        }
        assert_eq!(names.len(), 18);
        assert_eq!(array.num_epochs(), 2, "max_epochs caps the chain");
        assert!(array.try_get(&mut rng).is_none());
        // Free a slot in the OLD epoch: the fallback walk must find it again.
        let old = *names.iter().find(|n| n.epoch() == 0).unwrap();
        array.free(old);
        names.remove(&old);
        let regained = loop {
            if let Some(got) = array.try_get(&mut rng) {
                break got.name();
            }
        };
        assert_eq!(regained.epoch(), 0);
        names.insert(regained);
        for name in names {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn free_routes_by_the_epoch_tag_and_retires_drained_epochs() {
        let array = ElasticLevelArray::new(2, GrowthPolicy::Doubling { max_epochs: 5 });
        let mut rng = default_rng(4);
        let mut names = Vec::new();
        while names.len() < 30 {
            names.push(array.get(&mut rng).name());
        }
        assert!(array.num_epochs() >= 3);
        let epochs_before = array.num_epochs();
        // Per-epoch censuses agree with the tags handed out.
        let snap = array.occupancy();
        for &epoch in &array.epoch_ids() {
            let tagged = names.iter().filter(|n| n.epoch() == epoch).count();
            assert_eq!(snap.epoch_occupied(epoch), tagged);
            assert_eq!(array.epoch_held(epoch), Some(tagged));
        }
        // Freeing everything drains the old epochs; the deferred retirement
        // check in free() shrinks the chain without an explicit call.
        for name in names {
            array.free(name);
        }
        assert!(array.num_epochs() < epochs_before);
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(
            array.epochs_retired(),
            array.epochs_opened() - 1,
            "every epoch but the newest must have been retired"
        );
        // Per-epoch occupancy of the survivor is zero, and the quiescent
        // structure has reclaimed every displaced chain snapshot.
        assert_eq!(array.occupancy().total_occupied(), 0);
        assert_eq!(array.pending_reclamation(), 0);
    }

    #[test]
    fn newest_epoch_is_never_retired() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        assert_eq!(array.try_retire(), 0);
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn auto_retire_can_be_disabled() {
        let array = LevelArrayConfig::new(2)
            .growth(GrowthPolicy::Doubling { max_epochs: 5 })
            .auto_retire(false)
            .build_elastic()
            .unwrap();
        let mut rng = default_rng(11);
        let names: Vec<Name> = (0..30).map(|_| array.get(&mut rng).name()).collect();
        let epochs_before = array.num_epochs();
        assert!(epochs_before >= 3);
        for name in names {
            array.free(name);
        }
        // Draining frees must NOT have scheduled the deferred check.
        assert_eq!(array.num_epochs(), epochs_before);
        // The explicit call still works.
        assert!(array.try_retire() >= 2);
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn failed_deferred_retirement_rearms_on_the_next_free() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(12);
        // Grow to two epochs (epoch 0 saturates at 12 names).
        let names: Vec<Name> = (0..15).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(array.num_epochs(), 2);
        let (old, newest): (Vec<Name>, Vec<Name>) = names.into_iter().partition(|n| n.epoch() == 0);
        assert!(!newest.is_empty());
        {
            // A stalled reader: its pin makes every grace observation fail,
            // so the deferred check scheduled by the draining free below
            // must bail — and re-arm instead of giving up for good.
            let blocker = array.chain.pin();
            for name in &old {
                array.free(*name);
            }
            assert_eq!(
                array.num_epochs(),
                2,
                "retirement cannot succeed while a reader is pinned"
            );
            assert!(
                array.maintenance_pending.load(Ordering::Relaxed),
                "the failed pass must re-arm the deferred check"
            );
            drop(blocker);
        }
        // A later free that does NOT itself drain an epoch (the newest epoch
        // keeps holders) re-triggers the check via the maintenance flag.
        array.free(newest[0]);
        assert_eq!(array.num_epochs(), 1, "the re-armed check retires epoch 0");
        for name in newest.iter().skip(1) {
            array.free(*name);
        }
        let _ = array.try_retire();
        assert_eq!(array.pending_reclamation(), 0);
        assert!(!array.maintenance_pending.load(Ordering::Relaxed));
    }

    #[test]
    fn growth_over_a_drained_predecessor_arms_the_deferred_check() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(13);
        // Register in epoch 0, then drain it *while it is still the newest
        // epoch*: no free schedules a retirement check (each sees
        // `cell.epoch == newest`), and the maintenance flag stays clear.
        let names: Vec<Name> = (0..6).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(array.num_epochs(), 1);
        for name in names {
            array.free(name);
        }
        assert!(!array.maintenance_pending.load(Ordering::SeqCst));
        // A grower now publishes epoch 1 over the drained epoch 0 — the
        // interleaving of a Get that exhausted epoch 0's core before the
        // holders freed.  The publish must arm the deferred check, because
        // no future free of epoch 0 will ever exist to trigger it.
        {
            let pin = array.chain.pin();
            let observed = pin.head();
            assert!(array.open_epoch(&pin, observed));
        }
        assert_eq!(array.num_epochs(), 2);
        assert!(
            array.maintenance_pending.load(Ordering::SeqCst),
            "publishing over a drained predecessor must arm the check"
        );
        // The next free — of a fresh epoch-1 name, nothing to do with
        // epoch 0 — consumes the flag and retires the stranded epoch.
        let got = array.get(&mut rng);
        assert_eq!(got.name().epoch(), 1);
        array.free(got.name());
        assert_eq!(array.num_epochs(), 1, "the stranded epoch must retire");
        assert_eq!(array.epoch_ids(), vec![1]);
    }

    #[test]
    fn occupancy_reports_per_epoch_regions() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(5);
        let names: Vec<Name> = (0..20).map(|_| array.get(&mut rng).name()).collect();
        let snap = array.occupancy();
        assert_eq!(snap.epoch_ids(), array.epoch_ids());
        assert_eq!(snap.total_occupied(), 20);
        assert_eq!(snap.total_capacity(), array.capacity());
        assert!(snap.epoch_batch(0, 0).is_some());
        assert!(snap.epoch_backup(0).is_some());
        // The aggregate view folds the epochs back into plain batches.
        let agg = array.batchwise_occupancy();
        assert_eq!(agg.epoch_ids(), Vec::<usize>::new());
        assert_eq!(agg.total_capacity(), array.capacity());
        assert_eq!(agg.total_occupied(), 20);
        assert_eq!(agg.num_batches(), array.newest_geometry().num_batches());
        for name in names {
            array.free(name);
        }
    }

    #[test]
    fn force_occupy_and_is_held_route_by_epoch() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(6);
        // Grow to two epochs (epoch 0 saturates at 12 names).
        let names: Vec<Name> = (0..15).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(array.num_epochs(), 2);
        // Release one slot of the *old* epoch and re-occupy it directly.
        let victim = names[0];
        assert_eq!(victim.epoch(), 0);
        array.free(victim);
        assert!(!array.is_held(victim));
        assert!(array.force_occupy(victim));
        assert!(array.is_held(victim));
        assert!(!array.force_occupy(victim));
        array.free(victim);
        assert!(!array.is_held(victim));
        for name in names.iter().skip(1) {
            array.free(*name);
        }
    }

    #[test]
    fn free_hint_rewins_the_freed_epoch_tagged_slot() {
        let off = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        assert!(!off.free_hint_enabled(), "the hint defaults off");

        let array = LevelArrayConfig::new(4)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .free_hint(true)
            .build_elastic()
            .unwrap();
        assert!(array.free_hint_enabled());
        let mut rng = default_rng(21);
        // Grow to two epochs, then free an OLD-epoch name: the hint must
        // re-win exactly that slot in one probe even though routing normally
        // targets the newest epoch.
        let names: Vec<Name> = (0..15).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(array.num_epochs(), 2);
        let old = *names.iter().find(|n| n.epoch() == 0).unwrap();
        array.free(old);
        let again = array.get(&mut rng);
        assert_eq!(again.name(), old, "the hint re-wins the freed slot");
        assert_eq!(again.probes(), 1);
        assert_eq!(
            array.epoch_held(0),
            Some(names.iter().filter(|n| n.epoch() == 0).count()),
            "the hint win must keep the held counter in step"
        );
        // A stolen hint falls through to the probe path without duplicating.
        array.free(old);
        assert!(array.force_occupy(old));
        let other = array.get(&mut rng);
        assert_ne!(other.name(), old);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(7);
        let got = array.get(&mut rng);
        array.free(got.name());
        array.free(got.name());
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn free_of_an_unknown_epoch_panics() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        array.free(Name::with_epoch(7, 0));
    }

    #[test]
    fn registration_guard_works_through_the_trait() {
        use crate::array::Registration;
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 2 });
        let mut rng = default_rng(8);
        {
            let reg = Registration::acquire(&array, &mut rng);
            assert!(array.collect().contains(&reg.name()));
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn hierarchical_epochs_are_sharded_and_keep_dimensions() {
        // shard_group(4) with initial contention 8: the initial epoch is
        // backed by ⌈8/4⌉ = 2 shard cores of bound 4 each.
        let array = LevelArrayConfig::new(8)
            .shard_group(4)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .build_elastic()
            .unwrap();
        assert_eq!(array.shard_group(), 4);
        assert_eq!(array.newest_epoch_shards(), 2);
        assert_eq!(array.newest_shard_capacity(), 4 * 2 + 4);
        assert_eq!(array.epoch_shards(0), Some(2));
        assert_eq!(array.epoch_shards(9), None);
        assert_eq!(array.capacity(), 2 * 12);
        // Saturate: the doubled successor (bound 16) gets 4 shards — growth
        // by adding shard groups, per-shard sizing unchanged.
        let mut rng = default_rng(31);
        let names: Vec<Name> = (0..30).map(|_| array.get(&mut rng).name()).collect();
        assert!(array.num_epochs() >= 2);
        assert_eq!(array.newest_epoch_shards(), 4);
        assert_eq!(array.newest_shard_capacity(), 12);
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "dense names must stay unique");
        // Epoch-tagged names carry through the shard split: frees route to
        // the owning shard of the owning epoch, and retirement converges.
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert!(array.collect().is_empty());
        assert_eq!(array.pending_reclamation(), 0);
    }

    #[test]
    fn hierarchical_census_aggregates_shards_per_epoch() {
        let array = LevelArrayConfig::new(8)
            .shard_group(4)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .build_elastic()
            .unwrap();
        let mut rng = default_rng(32);
        let names: Vec<Name> = (0..8).map(|_| array.get(&mut rng).name()).collect();
        let snap = array.occupancy();
        // One region set per epoch, shards folded: the per-epoch region
        // count matches a flat epoch's (batches + backup).
        let per_epoch = array.newest_geometry().num_batches() + 1;
        assert_eq!(snap.regions().len(), per_epoch);
        assert_eq!(snap.total_occupied(), 8);
        assert_eq!(snap.total_capacity(), array.capacity());
        assert_eq!(snap.epoch_occupied(0), 8);
        let agg = array.batchwise_occupancy();
        assert_eq!(agg.total_occupied(), 8);
        assert_eq!(agg.total_capacity(), array.capacity());
        for name in names {
            array.free(name);
        }
    }

    #[test]
    fn explicit_shrink_opens_a_smaller_epoch_and_retires_the_large_one() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 4 });
        let mut rng = default_rng(33);
        // Grow to a doubled epoch, then drain everything.
        let names: Vec<Name> = (0..20).map(|_| array.get(&mut rng).name()).collect();
        assert!(array.num_epochs() >= 2);
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        let big = array.newest_epoch();
        assert!(array.epoch_contention(big).unwrap() > 4, "survivor is big");
        // Shrink: a smaller epoch opens (half the bound, ≥ initial) and the
        // drained big epoch retires through the normal protocol.
        assert!(array.try_shrink());
        let small = array.newest_epoch();
        assert_eq!(small, big + 1, "tags stay monotonic through a shrink");
        assert_eq!(
            array.epoch_contention(small),
            Some(array.epoch_contention(big).unwrap_or(8) / 2)
        );
        assert!(array.try_retire() >= 1, "the drained big epoch retires");
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(array.newest_epoch(), small);
        // At the initial bound the shrink refuses to go lower.
        let mut floor = array.epoch_contention(array.newest_epoch()).unwrap();
        while floor > 4 {
            assert!(array.try_shrink());
            array.try_retire();
            floor = array.epoch_contention(array.newest_epoch()).unwrap();
        }
        assert_eq!(floor, 4);
        assert!(!array.try_shrink(), "never shrinks below the initial bound");
    }

    #[test]
    fn shrink_is_refused_under_fixed_growth() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        assert!(!array.try_shrink());
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn watermark_streak_triggers_automatic_shrink() {
        let array = LevelArrayConfig::new(4)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .shrink_watermark(0.25)
            .build_elastic()
            .unwrap();
        assert_eq!(array.shrink_watermark(), Some(0.25));
        let mut rng = default_rng(34);
        // Grow to a doubled epoch (bound 8) and converge onto it.
        let names: Vec<Name> = (0..20).map(|_| array.get(&mut rng).name()).collect();
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        let big = array.newest_epoch();
        let big_bound = array.epoch_contention(big).unwrap();
        assert!(big_bound > 4);
        // Churn one name at a time: occupancy stays ≤ 1/8 ≤ watermark, so
        // every free is a low sample.  After the patience window
        // (max(bound, 16) samples) the array must have opened a smaller
        // epoch on its own and retired the big one.
        for _ in 0..(big_bound.max(16) + 2) {
            let got = array.get(&mut rng);
            array.free(got.name());
        }
        let newest = array.newest_epoch();
        assert!(newest > big, "the watermark must have opened a new epoch");
        assert_eq!(
            array.epoch_contention(newest),
            Some(big_bound / 2),
            "the new epoch is the smaller one"
        );
        array.try_retire();
        assert_eq!(array.num_epochs(), 1, "the big epoch fully retires");
        assert_eq!(array.pending_reclamation(), 0);
    }

    #[test]
    fn sustained_load_resets_the_shrink_streak() {
        let array = LevelArrayConfig::new(2)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .shrink_watermark(0.25)
            .build_elastic()
            .unwrap();
        let mut rng = default_rng(35);
        // Grow to a bound-4 epoch and make it the sole survivor with two
        // persistent holders: occupancy stays at 2/4 > watermark while the
        // churn below cycles a third slot, so no shrink may fire.
        let names: Vec<Name> = (0..8).map(|_| array.get(&mut rng).name()).collect();
        let (old, kept): (Vec<Name>, Vec<Name>) = names.into_iter().partition(|n| n.epoch() == 0);
        for name in old {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert!(kept.len() >= 2, "holders must live in the newest epoch");
        let epochs_before = array.epochs_opened();
        for _ in 0..100 {
            let got = array.get(&mut rng);
            array.free(got.name());
        }
        assert_eq!(
            array.epochs_opened(),
            epochs_before,
            "high occupancy must keep resetting the streak"
        );
        for name in kept {
            array.free(name);
        }
    }

    #[test]
    fn get_many_spans_epochs_and_free_many_retires_them() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 5 });
        let mut rng = default_rng(40);
        let mut out = Vec::new();
        // One batch larger than the initial epoch: the batch must grow the
        // chain mid-flight and fill completely.
        assert_eq!(array.get_many(&mut rng, 30, &mut out), 30);
        assert_eq!(out.len(), 30);
        assert!(array.num_epochs() >= 2, "the batch must have grown");
        let unique: HashSet<Name> = out.iter().map(|a| a.name()).collect();
        assert_eq!(unique.len(), 30, "batched names must stay unique");
        assert!(
            out.iter().any(|a| a.name().epoch() > 0),
            "part of the batch must land in a grown epoch"
        );
        // Held counters stayed exact across the batch tagging.
        for &epoch in &array.epoch_ids() {
            assert_eq!(
                array.epoch_held(epoch),
                Some(out.iter().filter(|a| a.name().epoch() == epoch).count())
            );
        }
        // One bulk free drains every epoch run and the single deferred
        // retirement check converges the chain.
        let names: Vec<Name> = out.iter().map(|a| a.name()).collect();
        ActivityArray::free_many(&array, &names);
        assert!(array.collect().is_empty());
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(array.pending_reclamation(), 0);
    }

    #[test]
    fn get_many_tags_and_counts_like_singletons() {
        // Fixed policy: the batch saturates instead of growing, reporting a
        // partial fill exactly like k failing singleton gets would.
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(41);
        let mut out = Vec::new();
        let capacity = array.capacity();
        let won = array.get_many(&mut rng, capacity + 5, &mut out);
        assert_eq!(won, capacity, "a fixed chain fills to capacity and stops");
        assert!(out.iter().all(|a| a.name().epoch() == 0));
        assert_eq!(array.epoch_held(0), Some(capacity));
        assert!(array.try_get(&mut rng).is_none());
        let names: Vec<Name> = out.iter().map(|a| a.name()).collect();
        ActivityArray::free_many(&array, &names);
        assert!(array.collect().is_empty());
        assert_eq!(array.epoch_held(0), Some(0));
    }

    #[test]
    fn free_many_rearms_the_hint_with_the_last_name() {
        let array = LevelArrayConfig::new(4)
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .free_hint(true)
            .build_elastic()
            .unwrap();
        let mut rng = default_rng(42);
        let mut out = Vec::new();
        assert_eq!(array.get_many(&mut rng, 6, &mut out), 6);
        let names: Vec<Name> = out.iter().map(|a| a.name()).collect();
        ActivityArray::free_many(&array, &names);
        // The hint holds the batch's last name: the next get re-wins it in
        // zero probes.
        let again = array.get(&mut rng);
        assert_eq!(again.name(), *names.last().unwrap());
        array.free(again.name());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn free_many_panics_on_a_duplicate_in_the_batch() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(43);
        let got = array.get(&mut rng);
        ActivityArray::free_many(&array, &[got.name(), got.name()]);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn free_many_panics_on_an_unknown_epoch() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        ActivityArray::free_many(&array, &[Name::with_epoch(9, 0)]);
    }

    #[test]
    fn batched_churn_across_threads_preserves_uniqueness() {
        use std::sync::Mutex;

        let threads = 4;
        let rounds = 12;
        let k = 9;
        let array = Arc::new(ElasticLevelArray::new(
            4,
            GrowthPolicy::Doubling { max_epochs: 8 },
        ));
        let held = Mutex::new(HashSet::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let held = &held;
                scope.spawn(move || {
                    let mut rng = default_rng(0xBA7C + t as u64);
                    for _ in 0..rounds {
                        let mut out = Vec::new();
                        array.get_many(&mut rng, k, &mut out);
                        {
                            let mut all = held.lock().unwrap();
                            for got in &out {
                                assert!(
                                    all.insert(got.name()),
                                    "{} double-claimed in a batch",
                                    got.name()
                                );
                            }
                        }
                        let names: Vec<Name> = out.iter().map(|a| a.name()).collect();
                        {
                            let mut all = held.lock().unwrap();
                            for name in &names {
                                all.remove(name);
                            }
                        }
                        ActivityArray::free_many(array.as_ref(), &names);
                    }
                });
            }
        });
        array.try_retire();
        assert!(array.collect().is_empty());
    }

    #[test]
    fn concurrent_growth_preserves_uniqueness() {
        use std::sync::Mutex;

        let threads = 8;
        let per_thread = 48;
        let array = Arc::new(ElasticLevelArray::new(
            4,
            GrowthPolicy::Doubling { max_epochs: 10 },
        ));
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let all = &all;
                scope.spawn(move || {
                    let mut rng = default_rng(0xE1A5 + t as u64);
                    let mine: Vec<Name> = (0..per_thread)
                        .map(|_| {
                            array
                                .try_get(&mut rng)
                                .expect("growth must prevent failures")
                                .name()
                        })
                        .collect();
                    all.lock().unwrap().extend(mine);
                });
            }
        });
        let names = all.into_inner().unwrap();
        assert_eq!(names.len(), threads * per_thread);
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate across growth events");
        assert!(array.num_epochs() >= 2, "the chain must have grown");
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert!(array.collect().is_empty());
        assert_eq!(array.pending_reclamation(), 0);
    }
}
