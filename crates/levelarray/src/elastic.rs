//! The elastic LevelArray: epoch-based growth of the contention bound.
//!
//! The paper assumes the contention bound `n` is fixed for the lifetime of
//! the structure.  [`ElasticLevelArray`] relaxes that: it keeps a *chain of
//! epoch cells*, each a [`ProbeCore`]-backed array built from the same
//! [`LevelArrayConfig`], where every cell after the first doubles the
//! previous cell's contention bound.  The protocol is a migration in the
//! style of epoch-based reclamation:
//!
//! * **`Get` routes to the newest epoch** and runs the paper's probing
//!   strategy there.  Only when the newest epoch saturates — every random
//!   probe lost *and* its sequential backup region is full — does the
//!   operation consult the [`GrowthPolicy`]: under
//!   [`GrowthPolicy::Doubling`] it opens a new epoch of twice the contention
//!   bound and retries; once the chain is at its `max_epochs` bound (or under
//!   [`GrowthPolicy::Fixed`]) it falls back to walking the older epochs,
//!   newest to oldest, before giving up.
//! * **`Free` returns the slot to the epoch named in its tag** — the
//!   [`Name`] encoding carries `(epoch, index)`, so releases route without
//!   any lookup table.
//! * **`Collect` and the occupancy census union the live epochs**, reporting
//!   per-epoch [`Region::EpochBatch`]/[`Region::EpochBackup`] entries.
//! * **A drained old epoch is retired** once a collect snapshot proves no
//!   name from it is live ([`ElasticLevelArray::try_retire`]): because new
//!   registrations route to the newest epoch, old epochs only ever drain, and
//!   a snapshot observing zero held slots — taken while the chain lock
//!   excludes every `Get`/`Free` — proves quiescence, exactly the argument
//!   the dynamic-collect reclamation scheme (`la-reclaim`) uses for its
//!   grace periods.  Epoch tags are never reused, so names stay unique
//!   across arbitrarily many growth and retirement events.
//!
//! The chain itself is guarded by an [`RwLock`]: operations on the hot path
//! take the lock in read mode (probing and freeing inside an epoch stay
//! entirely lock-free on the slots themselves), while growth and retirement
//! — rare, state-changing transitions — take it in write mode.  This trades
//! the paper's strict wait-freedom on the (rare) growth boundary for a
//! dramatically simpler correctness argument; the fixed-size
//! [`crate::LevelArray`] remains available where the original guarantees are
//! required.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use larng::RandomSource;

use crate::array::{Acquired, ActivityArray};
use crate::config::{ConfigError, GrowthPolicy, LevelArrayConfig};
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{OccupancySnapshot, Region, RegionOccupancy};
use crate::probe_core::ProbeCore;

/// One generation of the elastic chain: a probing core plus its identity.
#[derive(Debug)]
struct EpochCell {
    /// The epoch tag carried by every name this cell hands out.  Tags are
    /// assigned monotonically and never reused.
    epoch: usize,
    /// The contention bound this cell was sized for.
    contention: usize,
    /// Advisory count of currently held slots (kept exactly in step with
    /// acquisitions and releases; retirement re-verifies with a real scan).
    held: AtomicUsize,
    core: ProbeCore,
}

impl EpochCell {
    fn new(epoch: usize, contention: usize, core: ProbeCore) -> Self {
        EpochCell {
            epoch,
            contention,
            held: AtomicUsize::new(0),
            core,
        }
    }

    /// Whether a scan observes zero held slots — the collect snapshot a
    /// retirement decision is based on.
    fn is_drained(&self) -> bool {
        let mut scratch = Vec::new();
        self.core.collect_into(0, &mut scratch);
        scratch.is_empty()
    }
}

/// A LevelArray whose contention bound grows at runtime through a chain of
/// doubling epochs (see the [module documentation](self) for the protocol).
///
/// # Examples
///
/// Growth under oversubscription, epoch-tagged names, retirement:
///
/// ```
/// use levelarray::{ActivityArray, ElasticLevelArray, GrowthPolicy};
/// use larng::default_rng;
///
/// let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 4 });
/// let mut rng = default_rng(1);
///
/// // Register 10x the initial bound: the chain doubles as needed.
/// let names: Vec<_> = (0..40).map(|_| array.get(&mut rng).name()).collect();
/// assert!(array.num_epochs() >= 2);
/// assert_eq!(array.collect().len(), 40);
///
/// // Freeing everything drains the old epochs; retirement shrinks the chain.
/// for name in names {
///     array.free(name);
/// }
/// array.try_retire();
/// assert_eq!(array.num_epochs(), 1);
/// assert!(array.collect().is_empty());
/// ```
#[derive(Debug)]
pub struct ElasticLevelArray {
    /// Live epoch cells, oldest first; the last entry is the newest epoch.
    /// Invariant: never empty.
    cells: RwLock<Vec<Arc<EpochCell>>>,
    /// The shared knobs (space factor, probe policy, backup, TAS) every epoch
    /// is built from; its contention bound is the *initial* epoch's.
    base: LevelArrayConfig,
    growth: GrowthPolicy,
    /// Total epochs ever opened; doubles as the next epoch tag.
    epochs_opened: AtomicUsize,
    epochs_retired: AtomicUsize,
}

impl ElasticLevelArray {
    /// Creates an elastic array whose initial epoch uses the paper's default
    /// configuration for `initial_contention`, growing per `growth`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_contention == 0` or the growth policy allows zero
    /// epochs.  Use [`LevelArrayConfig::build_elastic`] for fallible
    /// construction and non-default parameters.
    pub fn new(initial_contention: usize, growth: GrowthPolicy) -> Self {
        LevelArrayConfig::new(initial_contention)
            .growth(growth)
            .build_elastic()
            .expect("default configuration is valid for any non-zero contention bound")
    }

    /// Builds an elastic array from a shared configuration: the initial epoch
    /// has the configuration's contention bound, and every later epoch reuses
    /// the same knobs (space factor, probe policy, backup, TAS) at a doubled
    /// bound, per [`LevelArrayConfig::growth_policy`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroEpochs`] if the growth policy allows zero
    /// live epochs; otherwise see [`LevelArrayConfig::validate`].
    pub fn from_config(config: &LevelArrayConfig) -> Result<Self, ConfigError> {
        let validated = config.validate()?;
        let contention = config.max_concurrency_value();
        let cell = EpochCell::new(0, contention, validated.into_probe_core());
        Ok(ElasticLevelArray {
            cells: RwLock::new(vec![Arc::new(cell)]),
            base: config.clone(),
            growth: config.growth_policy(),
            epochs_opened: AtomicUsize::new(1),
            epochs_retired: AtomicUsize::new(0),
        })
    }

    fn read(&self) -> RwLockReadGuard<'_, Vec<Arc<EpochCell>>> {
        self.cells.read().expect("epoch chain lock poisoned")
    }

    fn write(&self) -> RwLockWriteGuard<'_, Vec<Arc<EpochCell>>> {
        self.cells.write().expect("epoch chain lock poisoned")
    }

    /// The growth policy in effect.
    pub fn growth_policy(&self) -> GrowthPolicy {
        self.growth
    }

    /// The contention bound of the initial epoch.
    pub fn initial_contention(&self) -> usize {
        self.base.max_concurrency_value()
    }

    /// Number of currently live epochs (the chain length).
    pub fn num_epochs(&self) -> usize {
        self.read().len()
    }

    /// The tag of the newest (actively serving) epoch.
    pub fn newest_epoch(&self) -> usize {
        self.read().last().expect("chain is never empty").epoch
    }

    /// The tags of the live epochs, oldest first.
    pub fn epoch_ids(&self) -> Vec<usize> {
        self.read().iter().map(|c| c.epoch).collect()
    }

    /// Total epochs opened over the array's lifetime (including retired
    /// ones); growth events so far = `epochs_opened() - 1`.
    pub fn epochs_opened(&self) -> usize {
        self.epochs_opened.load(Ordering::Relaxed)
    }

    /// Total epochs retired over the array's lifetime.
    pub fn epochs_retired(&self) -> usize {
        self.epochs_retired.load(Ordering::Relaxed)
    }

    /// The contention bound epoch `epoch` was sized for, if it is live.
    pub fn epoch_contention(&self, epoch: usize) -> Option<usize> {
        self.read()
            .iter()
            .find(|c| c.epoch == epoch)
            .map(|c| c.contention)
    }

    /// The advisory held-slot count of epoch `epoch`, if it is live.  Exact
    /// while no operation is in flight; retirement always re-verifies with a
    /// collect snapshot.
    pub fn epoch_held(&self, epoch: usize) -> Option<usize> {
        self.read()
            .iter()
            .find(|c| c.epoch == epoch)
            .map(|c| c.held.load(Ordering::Relaxed))
    }

    /// The batch layout of the newest epoch's main array.
    pub fn newest_geometry(&self) -> BatchGeometry {
        self.read()
            .last()
            .expect("chain is never empty")
            .core
            .geometry()
            .clone()
    }

    /// Retires every non-newest epoch whose collect snapshot observes zero
    /// held slots, returning how many were retired.
    ///
    /// The snapshot is taken while the chain lock is held exclusively, so no
    /// `Get` or `Free` is concurrently in flight: a zero census is a proof of
    /// quiescence, not an approximation.  The newest epoch is never retired
    /// (the chain always keeps one serving cell).  `Free` calls this
    /// opportunistically when it drains the last name of an old epoch, so
    /// chains typically shrink without anyone calling it explicitly.
    pub fn try_retire(&self) -> usize {
        let mut cells = self.write();
        let newest = cells.last().expect("chain is never empty").epoch;
        let before = cells.len();
        cells.retain(|cell| cell.epoch == newest || !cell.is_drained());
        let retired = before - cells.len();
        self.epochs_retired.fetch_add(retired, Ordering::Relaxed);
        retired
    }

    /// Looks up the live cell a name belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live (already retired, or never
    /// opened) — either way a caller bug, exactly like an out-of-range index
    /// on the fixed-size arrays.
    fn cell_for(cells: &[Arc<EpochCell>], name: Name) -> &EpochCell {
        cells
            .iter()
            .find(|c| c.epoch == name.epoch())
            .unwrap_or_else(|| {
                panic!(
                    "name {name} belongs to epoch {} which is not live (retired or never opened)",
                    name.epoch()
                )
            })
    }

    /// Tags a core-local acquisition with its epoch and the probes charged so
    /// far, and records it in the cell's held counter.
    fn tag(cell: &EpochCell, local: Acquired, base_probes: u32) -> Acquired {
        cell.held.fetch_add(1, Ordering::Relaxed);
        Acquired::new(
            Name::with_epoch(cell.epoch, local.name().index()),
            base_probes + local.probes(),
            local.batch(),
            local.used_backup(),
        )
    }

    /// Opens a successor epoch of doubled contention, unless another thread
    /// already did (then the caller just retries) or the policy forbids it.
    /// Returns `true` when the caller should retry the newest epoch.
    fn open_epoch(&self, observed_newest: usize) -> bool {
        let mut cells = self.write();
        let newest = cells.last().expect("chain is never empty");
        if newest.epoch != observed_newest {
            // Lost the race: someone else already opened a fresh epoch.
            return true;
        }
        if cells.len() >= self.growth.max_live_epochs() {
            return false;
        }
        let epoch = self.epochs_opened.load(Ordering::Relaxed);
        if epoch > Name::MAX_EPOCH {
            // The tag space is exhausted (after ~10^3 growth events); stop
            // growing rather than reuse a tag and break uniqueness.
            return false;
        }
        let contention = newest.contention.saturating_mul(2);
        let validated = self
            .base
            .clone()
            .with_contention(contention)
            .validate()
            .expect("a doubled elastic configuration stays valid");
        cells.push(Arc::new(EpochCell::new(
            epoch,
            contention,
            validated.into_probe_core(),
        )));
        self.epochs_opened.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The batch-aggregated census: batch `i` of every live epoch folded into
    /// one [`Region::Batch`] entry (epochs that are too small to have batch
    /// `i` simply contribute nothing), likewise the backups — so the paper's
    /// balance definitions, which are predicates over batch totals, apply to
    /// the elastic layout unchanged.  [`ActivityArray::occupancy`] reports
    /// the finer per-epoch census instead.
    pub fn batchwise_occupancy(&self) -> OccupancySnapshot {
        let cells = self.read();
        let max_batches = cells
            .iter()
            .map(|c| c.core.geometry().num_batches())
            .max()
            .unwrap_or(0);
        let mut regions: Vec<RegionOccupancy> = (0..max_batches)
            .map(|batch| {
                let mut capacity = 0;
                let mut occupied = 0;
                for cell in cells.iter() {
                    if batch < cell.core.geometry().num_batches() {
                        capacity += cell.core.geometry().batch_len(batch);
                        occupied += cell.core.batch_occupancy(batch);
                    }
                }
                RegionOccupancy::new(Region::Batch(batch), capacity, occupied)
            })
            .collect();
        let backup_capacity: usize = cells.iter().map(|c| c.core.backup_len()).sum();
        if backup_capacity > 0 {
            let occupied = cells.iter().map(|c| c.core.backup_occupancy()).sum();
            regions.push(RegionOccupancy::new(
                Region::Backup,
                backup_capacity,
                occupied,
            ));
        }
        OccupancySnapshot::new(regions)
    }

    /// Directly occupies a specific slot of the epoch named in `name`'s tag,
    /// bypassing the probing strategy (test/experiment hook, exactly like
    /// [`crate::LevelArray::force_occupy`]).
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live or its index is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        let cells = self.read();
        let cell = Self::cell_for(&cells, name);
        let won = cell.core.force_occupy(Name::new(name.index()));
        if won {
            cell.held.fetch_add(1, Ordering::Relaxed);
        }
        won
    }

    /// Reads whether a specific slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if the name's epoch is not live or its index is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        let cells = self.read();
        Self::cell_for(&cells, name)
            .core
            .is_held(Name::new(name.index()))
    }
}

impl ActivityArray for ElasticLevelArray {
    fn algorithm_name(&self) -> &'static str {
        "ElasticLevelArray"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        let mut probes = 0u32;
        loop {
            // Route to the newest epoch and run the paper's Get there.
            let observed_newest = {
                let cells = self.read();
                let cell = cells.last().expect("chain is never empty");
                match cell.core.try_get(rng) {
                    Some(local) => return Some(Self::tag(cell, local, probes)),
                    None => {
                        probes += cell.core.exhausted_probe_count();
                        cell.epoch
                    }
                }
            };
            // The newest epoch saturated (its backup region included): open a
            // successor if the policy allows, then retry against it.
            if self.open_epoch(observed_newest) {
                continue;
            }
            // Growth unavailable: walk the older epochs, newest to oldest.
            let cells = self.read();
            if cells.last().expect("chain is never empty").epoch != observed_newest {
                continue; // raced with a concurrent grower after all
            }
            for cell in cells.iter().rev().skip(1) {
                match cell.core.try_get(rng) {
                    Some(local) => return Some(Self::tag(cell, local, probes)),
                    None => probes += cell.core.exhausted_probe_count(),
                }
            }
            return None;
        }
    }

    fn free(&self, name: Name) {
        let drained_old_epoch = {
            let cells = self.read();
            let cell = Self::cell_for(&cells, name);
            cell.core.free(Name::new(name.index()));
            let remaining = cell.held.fetch_sub(1, Ordering::Relaxed) - 1;
            let newest = cells.last().expect("chain is never empty").epoch;
            cell.epoch != newest && remaining == 0
        };
        // Opportunistic retirement: this free drained the last name of an old
        // epoch, so a collect snapshot can now prove it quiescent.
        if drained_old_epoch {
            self.try_retire();
        }
    }

    fn collect(&self) -> Vec<Name> {
        let cells = self.read();
        let mut held = Vec::new();
        let mut scratch = Vec::new();
        for cell in cells.iter() {
            scratch.clear();
            cell.core.collect_into(0, &mut scratch);
            held.extend(
                scratch
                    .iter()
                    .map(|local| Name::with_epoch(cell.epoch, local.index())),
            );
        }
        held
    }

    fn capacity(&self) -> usize {
        self.read().iter().map(|c| c.core.capacity()).sum()
    }

    fn max_participants(&self) -> usize {
        self.read().iter().map(|c| c.contention).sum()
    }

    fn occupancy(&self) -> OccupancySnapshot {
        let cells = self.read();
        let mut regions = Vec::new();
        for cell in cells.iter() {
            let epoch = cell.epoch;
            regions.extend(cell.core.region_occupancies(|region| match region {
                Region::Batch(batch) => Region::EpochBatch { epoch, batch },
                Region::Backup => Region::EpochBackup(epoch),
                other => other,
            }));
        }
        OccupancySnapshot::new(regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use std::collections::HashSet;

    #[test]
    fn initial_dimensions_match_the_plain_layout() {
        let array = ElasticLevelArray::new(16, GrowthPolicy::Fixed);
        let plain = crate::LevelArray::new(16);
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(array.newest_epoch(), 0);
        assert_eq!(array.epoch_ids(), vec![0]);
        assert_eq!(array.capacity(), plain.capacity());
        assert_eq!(array.max_participants(), 16);
        assert_eq!(array.initial_contention(), 16);
        assert_eq!(array.epochs_opened(), 1);
        assert_eq!(array.epochs_retired(), 0);
        assert_eq!(array.algorithm_name(), "ElasticLevelArray");
        assert_eq!(array.newest_geometry(), *plain.geometry());
    }

    #[test]
    fn fixed_policy_saturates_like_a_plain_array() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(1);
        let mut held = Vec::new();
        for _ in 0..10_000 {
            match array.try_get(&mut rng) {
                Some(got) => held.push(got.name()),
                None => break,
            }
        }
        assert_eq!(held.len(), array.capacity());
        assert!(array.try_get(&mut rng).is_none());
        assert_eq!(array.num_epochs(), 1, "Fixed must never grow");
        let unique: HashSet<_> = held.iter().collect();
        assert_eq!(unique.len(), held.len());
        for name in held {
            assert_eq!(name.epoch(), 0);
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn saturating_the_newest_epoch_opens_a_doubled_successor() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 4 });
        let mut rng = default_rng(2);
        // Drain epoch 0 (capacity 3n = 12) and keep going: the next
        // acquisitions must come from a fresh epoch of bound 8.
        let mut names = Vec::new();
        while names.len() < 20 {
            names.push(array.get(&mut rng).name());
        }
        assert_eq!(array.num_epochs(), 2);
        assert_eq!(array.epoch_ids(), vec![0, 1]);
        assert_eq!(array.epoch_contention(0), Some(4));
        assert_eq!(array.epoch_contention(1), Some(8));
        assert_eq!(array.epoch_contention(7), None);
        let epochs: HashSet<usize> = names.iter().map(|n| n.epoch()).collect();
        assert_eq!(epochs, HashSet::from([0, 1]));
        // Uniqueness holds across the growth event.
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn capped_chain_falls_back_to_older_epochs() {
        let array = ElasticLevelArray::new(2, GrowthPolicy::Doubling { max_epochs: 2 });
        let mut rng = default_rng(3);
        // Total capacity: 3*2 + 3*4 = 18.  Acquire everything.
        let mut names = HashSet::new();
        for _ in 0..200_000 {
            if names.len() == 18 {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                assert!(names.insert(got.name()), "duplicate {}", got.name());
            }
        }
        assert_eq!(names.len(), 18);
        assert_eq!(array.num_epochs(), 2, "max_epochs caps the chain");
        assert!(array.try_get(&mut rng).is_none());
        // Free a slot in the OLD epoch: the fallback walk must find it again.
        let old = *names.iter().find(|n| n.epoch() == 0).unwrap();
        array.free(old);
        names.remove(&old);
        let regained = loop {
            if let Some(got) = array.try_get(&mut rng) {
                break got.name();
            }
        };
        assert_eq!(regained.epoch(), 0);
        names.insert(regained);
        for name in names {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn free_routes_by_the_epoch_tag_and_retires_drained_epochs() {
        let array = ElasticLevelArray::new(2, GrowthPolicy::Doubling { max_epochs: 5 });
        let mut rng = default_rng(4);
        let mut names = Vec::new();
        while names.len() < 30 {
            names.push(array.get(&mut rng).name());
        }
        assert!(array.num_epochs() >= 3);
        let epochs_before = array.num_epochs();
        // Per-epoch censuses agree with the tags handed out.
        let snap = array.occupancy();
        for &epoch in &array.epoch_ids() {
            let tagged = names.iter().filter(|n| n.epoch() == epoch).count();
            assert_eq!(snap.epoch_occupied(epoch), tagged);
            assert_eq!(array.epoch_held(epoch), Some(tagged));
        }
        // Freeing everything drains the old epochs; the opportunistic
        // retirement in free() shrinks the chain without an explicit call.
        for name in names {
            array.free(name);
        }
        assert!(array.num_epochs() < epochs_before);
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert_eq!(
            array.epochs_retired(),
            array.epochs_opened() - 1,
            "every epoch but the newest must have been retired"
        );
        // Per-epoch occupancy of the survivor is zero.
        assert_eq!(array.occupancy().total_occupied(), 0);
    }

    #[test]
    fn newest_epoch_is_never_retired() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        assert_eq!(array.try_retire(), 0);
        assert_eq!(array.num_epochs(), 1);
    }

    #[test]
    fn occupancy_reports_per_epoch_regions() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(5);
        let names: Vec<Name> = (0..20).map(|_| array.get(&mut rng).name()).collect();
        let snap = array.occupancy();
        assert_eq!(snap.epoch_ids(), array.epoch_ids());
        assert_eq!(snap.total_occupied(), 20);
        assert_eq!(snap.total_capacity(), array.capacity());
        assert!(snap.epoch_batch(0, 0).is_some());
        assert!(snap.epoch_backup(0).is_some());
        // The aggregate view folds the epochs back into plain batches.
        let agg = array.batchwise_occupancy();
        assert_eq!(agg.epoch_ids(), Vec::<usize>::new());
        assert_eq!(agg.total_capacity(), array.capacity());
        assert_eq!(agg.total_occupied(), 20);
        assert_eq!(agg.num_batches(), array.newest_geometry().num_batches());
        for name in names {
            array.free(name);
        }
    }

    #[test]
    fn force_occupy_and_is_held_route_by_epoch() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 3 });
        let mut rng = default_rng(6);
        // Grow to two epochs (epoch 0 saturates at 12 names).
        let names: Vec<Name> = (0..15).map(|_| array.get(&mut rng).name()).collect();
        assert_eq!(array.num_epochs(), 2);
        // Release one slot of the *old* epoch and re-occupy it directly.
        let victim = names[0];
        assert_eq!(victim.epoch(), 0);
        array.free(victim);
        assert!(!array.is_held(victim));
        assert!(array.force_occupy(victim));
        assert!(array.is_held(victim));
        assert!(!array.force_occupy(victim));
        array.free(victim);
        assert!(!array.is_held(victim));
        for name in names.iter().skip(1) {
            array.free(*name);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        let mut rng = default_rng(7);
        let got = array.get(&mut rng);
        array.free(got.name());
        array.free(got.name());
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn free_of_an_unknown_epoch_panics() {
        let array = ElasticLevelArray::new(4, GrowthPolicy::Fixed);
        array.free(Name::with_epoch(7, 0));
    }

    #[test]
    fn registration_guard_works_through_the_trait() {
        use crate::array::Registration;
        let array = ElasticLevelArray::new(4, GrowthPolicy::Doubling { max_epochs: 2 });
        let mut rng = default_rng(8);
        {
            let reg = Registration::acquire(&array, &mut rng);
            assert!(array.collect().contains(&reg.name()));
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn concurrent_growth_preserves_uniqueness() {
        use std::sync::Mutex;

        let threads = 8;
        let per_thread = 48;
        let array = Arc::new(ElasticLevelArray::new(
            4,
            GrowthPolicy::Doubling { max_epochs: 10 },
        ));
        let all = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let all = &all;
                scope.spawn(move || {
                    let mut rng = default_rng(0xE1A5 + t as u64);
                    let mine: Vec<Name> = (0..per_thread)
                        .map(|_| {
                            array
                                .try_get(&mut rng)
                                .expect("growth must prevent failures")
                                .name()
                        })
                        .collect();
                    all.lock().unwrap().extend(mine);
                });
            }
        });
        let names = all.into_inner().unwrap();
        assert_eq!(names.len(), threads * per_thread);
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate across growth events");
        assert!(array.num_epochs() >= 2, "the chain must have grown");
        for name in names {
            array.free(name);
        }
        array.try_retire();
        assert_eq!(array.num_epochs(), 1);
        assert!(array.collect().is_empty());
    }
}
