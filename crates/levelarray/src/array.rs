//! The [`ActivityArray`] trait: the interface shared by the LevelArray and all
//! baseline implementations, plus the [`Acquired`] operation record and the
//! RAII [`Registration`] guard.
//!
//! The trait mirrors the paper's problem statement (§2): `Get` returns a
//! unique index, `Free` releases the most recently returned index, and
//! `Collect` returns every index that was held throughout the call (it is
//! *not* an atomic snapshot).  All methods take `&self` — implementations are
//! internally synchronized and wait-free.

use larng::RandomSource;

use crate::name::Name;
use crate::occupancy::OccupancySnapshot;

/// The result of a successful `Get`: the acquired name plus the measurements
/// the paper's evaluation reports (number of probes, the batch where the
/// operation stopped, whether the backup array was needed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "an Acquired records a held name; dropping it without freeing leaks the slot"]
pub struct Acquired {
    name: Name,
    probes: u32,
    batch: Option<usize>,
    used_backup: bool,
}

impl Acquired {
    /// Creates an operation record.  `batch` is `None` when the slot was taken
    /// from the backup array (in which case `used_backup` must be `true`).
    pub fn new(name: Name, probes: u32, batch: Option<usize>, used_backup: bool) -> Self {
        debug_assert!(
            batch.is_some() != used_backup,
            "a Get stops either in a batch or in the backup, never both/neither"
        );
        Acquired {
            name,
            probes,
            batch,
            used_backup,
        }
    }

    /// The acquired name (slot index).
    pub fn name(&self) -> Name {
        self.name
    }

    /// Number of probes (test-and-set attempts, plus sequential backup reads)
    /// the operation performed — the paper's "number of trials".
    pub fn probes(&self) -> u32 {
        self.probes
    }

    /// The batch of the main array in which the operation stopped, or `None`
    /// if it fell through to the backup array.  Flat baselines report batch 0.
    pub fn batch(&self) -> Option<usize> {
        self.batch
    }

    /// Whether the operation had to use the backup array.
    pub fn used_backup(&self) -> bool {
        self.used_backup
    }
}

/// A long-lived-renaming activity array (paper §2).
///
/// Implementations must guarantee:
///
/// * **Uniqueness** — no two in-flight acquisitions return the same [`Name`].
/// * **Validity of `Collect`** — every name in the returned set was held by
///   some process at some point during the call.
/// * **Wait-freedom** — `try_get` completes in a bounded number of its own
///   steps regardless of the scheduling of other threads.
pub trait ActivityArray: Send + Sync + std::fmt::Debug {
    /// A short human-readable label for benchmark output (e.g. `"LevelArray"`).
    fn algorithm_name(&self) -> &'static str;

    /// Attempts to register, returning `None` only if the structure has no
    /// free capacity reachable by its probing strategy.
    ///
    /// Calling `try_get` more than `max_participants()` times without
    /// intervening `free`s may legitimately fail.
    #[must_use = "dropping the result leaks the acquired name"]
    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired>;

    /// Registers, panicking if the structure is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if no free slot could be acquired, which can only happen when
    /// more than `max_participants()` processes hold slots simultaneously —
    /// i.e. when the caller has violated the contention bound.
    fn get(&self, rng: &mut dyn RandomSource) -> Acquired {
        self.try_get(rng).unwrap_or_else(|| {
            panic!(
                "{}: no free slot; the contention bound ({}) was exceeded",
                self.algorithm_name(),
                self.max_participants()
            )
        })
    }

    /// Acquires up to `k` names in one batched operation, appending an
    /// [`Acquired`] per win to `out`, and returns the number acquired — fewer
    /// than `k` only when the structure ran out of reachable free capacity
    /// mid-batch.
    ///
    /// The batch is semantically `k` consecutive [`ActivityArray::try_get`]s
    /// — same uniqueness, validity and wait-freedom guarantees, same
    /// batch-order probing dynamics — but implementations amortize the
    /// per-name overhead across the batch: the LevelArray facades claim up to
    /// 64 slots per atomic RMW on the bit-packed layout, route one hint/home
    /// lookup per batch, and (on the elastic facade) pin the epoch chain once
    /// instead of once per name.  The default is the literal singleton loop.
    ///
    /// `out` is *not* cleared; wins are appended.
    fn get_many(&self, rng: &mut dyn RandomSource, k: usize, out: &mut Vec<Acquired>) -> usize {
        for acquired in 0..k {
            match self.try_get(rng) {
                Some(got) => out.push(got),
                None => return acquired,
            }
        }
        k
    }

    /// Releases a name previously returned by `try_get`/`get`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `name` is out of range or not currently held
    /// (a double free); both indicate a bug in the caller.
    fn free(&self, name: Name);

    /// Releases a batch of names previously returned by acquisition calls on
    /// this array, in one operation.
    ///
    /// Implementations sort and group the batch so bit-packed regions are
    /// cleared with one atomic RMW per 64-slot word, the sharded facade
    /// releases shard-by-shard, and the elastic facade decodes epoch tags and
    /// pins the chain once per batch; a batch that drains an old epoch
    /// schedules a single deferred retirement check.  The default is the
    /// literal singleton loop.
    ///
    /// # Panics
    ///
    /// Implementations panic if any name is out of range, duplicated within
    /// the batch, or not currently held (a double free).
    fn free_many(&self, names: &[Name]) {
        for &name in names {
            self.free(name);
        }
    }

    /// Hints that subsequent operations from the calling thread act on behalf
    /// of logical participant `participant`.
    ///
    /// Single-threaded drivers that emulate many participants (the
    /// adversarial simulator, the healing experiment, benchmark harnesses)
    /// call this before each emulated operation so that layouts with sticky
    /// per-thread routing ([`crate::ShardedLevelArray`]) can spread the
    /// emulated population across their shards the way a real thread
    /// population's round-robin pinning would.  Implementations without
    /// routing state ignore it — the default does nothing.
    fn route_hint(&self, _participant: usize) {}

    /// Returns the names currently held, by scanning the array.
    ///
    /// The result is not an atomic snapshot; it satisfies the weaker validity
    /// property from the paper: every returned name was held at some point
    /// during the scan.
    fn collect(&self) -> Vec<Name>;

    /// Appends the names currently held to `out` — the same scan as
    /// [`ActivityArray::collect`], but into a caller-owned buffer so that a
    /// steady-state scan loop (the reclamation domain's grace-period passes,
    /// the bench harness's collect cells) reuses one allocation instead of
    /// building a fresh `Vec` per scan.  `out` is *not* cleared; the caller
    /// decides whether to accumulate or to `clear()` between scans.
    ///
    /// The default delegates to [`ActivityArray::collect`]; implementations
    /// with an internal scan visitor override it to skip the intermediate
    /// allocation entirely.
    fn collect_into(&self, out: &mut Vec<Name>) {
        out.extend(self.collect());
    }

    /// Total number of slots (the dense namespace size).
    fn capacity(&self) -> usize;

    /// The contention bound `n` the structure was built for.
    fn max_participants(&self) -> usize;

    /// A per-region census of held slots (see [`OccupancySnapshot`]).
    fn occupancy(&self) -> OccupancySnapshot;
}

/// An RAII registration: acquires a name on construction and frees it on drop.
///
/// # Examples
///
/// ```
/// use levelarray::{ActivityArray, LevelArray, Registration};
/// use larng::default_rng;
///
/// let array = LevelArray::new(4);
/// let mut rng = default_rng(7);
/// {
///     let reg = Registration::acquire(&array, &mut rng);
///     assert!(array.collect().contains(&reg.name()));
/// } // dropped here -> freed
/// assert!(array.collect().is_empty());
/// ```
#[derive(Debug)]
#[must_use = "dropping a Registration immediately deregisters"]
pub struct Registration<'a, A: ActivityArray + ?Sized> {
    array: &'a A,
    acquired: Acquired,
    released: bool,
}

impl<'a, A: ActivityArray + ?Sized> Registration<'a, A> {
    /// Registers with `array`, panicking if it is exhausted (see
    /// [`ActivityArray::get`]).
    pub fn acquire(array: &'a A, rng: &mut dyn RandomSource) -> Self {
        let acquired = array.get(rng);
        Registration {
            array,
            acquired,
            released: false,
        }
    }

    /// Attempts to register with `array`.
    pub fn try_acquire(array: &'a A, rng: &mut dyn RandomSource) -> Option<Self> {
        array.try_get(rng).map(|acquired| Registration {
            array,
            acquired,
            released: false,
        })
    }

    /// The held name.
    pub fn name(&self) -> Name {
        self.acquired.name()
    }

    /// The full operation record of the underlying `Get`.
    pub fn acquired(&self) -> &Acquired {
        &self.acquired
    }

    /// Releases the name now instead of at drop time.
    pub fn release(mut self) {
        self.release_in_place();
    }

    /// Forgets the guard without releasing, handing responsibility for the
    /// eventual [`ActivityArray::free`] to the caller.
    #[must_use = "dropping the returned name leaks the slot forever"]
    pub fn leak(mut self) -> Name {
        self.released = true;
        self.acquired.name()
    }

    fn release_in_place(&mut self) {
        if !self.released {
            self.released = true;
            self.array.free(self.acquired.name());
        }
    }
}

impl<A: ActivityArray + ?Sized> Drop for Registration<'_, A> {
    fn drop(&mut self) {
        self.release_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelArray;
    use larng::default_rng;

    #[test]
    fn acquired_accessors() {
        let a = Acquired::new(Name::new(3), 2, Some(1), false);
        assert_eq!(a.name().index(), 3);
        assert_eq!(a.probes(), 2);
        assert_eq!(a.batch(), Some(1));
        assert!(!a.used_backup());

        let b = Acquired::new(Name::new(9), 40, None, true);
        assert!(b.used_backup());
        assert_eq!(b.batch(), None);
    }

    #[test]
    fn registration_frees_on_drop() {
        let array = LevelArray::new(4);
        let mut rng = default_rng(1);
        let name;
        {
            let reg = Registration::acquire(&array, &mut rng);
            name = reg.name();
            assert_eq!(array.collect(), vec![name]);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn registration_release_is_idempotent_with_drop() {
        let array = LevelArray::new(4);
        let mut rng = default_rng(2);
        let reg = Registration::acquire(&array, &mut rng);
        reg.release();
        assert!(array.collect().is_empty());
    }

    #[test]
    fn registration_leak_transfers_ownership() {
        let array = LevelArray::new(4);
        let mut rng = default_rng(3);
        let name = Registration::acquire(&array, &mut rng).leak();
        // Still held after the guard is gone...
        assert_eq!(array.collect(), vec![name]);
        // ...and can be freed manually.
        array.free(name);
        assert!(array.collect().is_empty());
    }

    #[test]
    fn try_acquire_fails_gracefully_when_exhausted() {
        // A tiny array (n = 1, so 2 main + 1 backup slots).  Randomized probing
        // may miss a free main slot on any given attempt, but over many
        // attempts the array fills up completely, never over-fills, and once
        // full every further attempt returns `None`.
        let array = LevelArray::new(1);
        let mut rng = default_rng(4);
        let mut held = std::collections::HashSet::new();
        for _ in 0..200 {
            if let Some(reg) = Registration::try_acquire(&array, &mut rng) {
                assert!(held.insert(reg.leak()), "duplicate name handed out");
                assert!(
                    held.len() <= array.capacity(),
                    "acquired more names than slots"
                );
            }
        }
        assert_eq!(
            held.len(),
            array.capacity(),
            "array should fill up within 200 attempts"
        );
        assert!(Registration::try_acquire(&array, &mut rng).is_none());
    }

    #[test]
    fn works_through_a_trait_object() {
        let array = LevelArray::new(4);
        let dyn_array: &dyn ActivityArray = &array;
        let mut rng = default_rng(5);
        let reg = Registration::acquire(dyn_array, &mut rng);
        assert_eq!(dyn_array.collect().len(), 1);
        drop(reg);
        assert!(dyn_array.collect().is_empty());
    }
}
