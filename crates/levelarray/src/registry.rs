//! [`ThreadRegistry`]: an ergonomic wrapper that hides the random-number
//! generator.
//!
//! The low-level [`ActivityArray`] API takes a `&mut dyn RandomSource` on
//! every `Get`, which keeps the data structure deterministic and testable.
//! Applications that just want "register me / deregister me" can use this
//! wrapper instead: it owns the array, derives one generator per OS thread
//! (seeded from a per-registry [`larng::SeedSequence`]-style derivation and a
//! thread counter), and exposes a zero-argument [`ThreadRegistry::register`].

use la_fault::fail_point;
use la_sync::atomic::{AtomicU64, Ordering};

use larng::{DefaultRng, SplitMix64};

use crate::array::{ActivityArray, Registration};
use crate::level_array::LevelArray;
use crate::name::Name;

/// A shared, thread-friendly facade over an [`ActivityArray`].
///
/// # Examples
///
/// ```
/// use levelarray::{ActivityArray, LevelArray, ThreadRegistry};
/// use std::sync::Arc;
///
/// let registry = Arc::new(ThreadRegistry::new(LevelArray::new(8), 42));
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let registry = Arc::clone(&registry);
///         scope.spawn(move || {
///             for _ in 0..100 {
///                 let slot = registry.register();          // RAII guard
///                 assert!(slot.name().index() < registry.array().capacity());
///             }
///         });
///     }
/// });
/// assert!(registry.array().collect().is_empty());
/// ```
#[derive(Debug)]
pub struct ThreadRegistry<A: ActivityArray = LevelArray> {
    array: A,
    master_seed: u64,
    thread_counter: AtomicU64,
}

impl ThreadRegistry<LevelArray> {
    /// Convenience: a registry over the paper-default [`LevelArray`] for at
    /// most `max_concurrency` simultaneous holders.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0`.
    pub fn with_contention(max_concurrency: usize, master_seed: u64) -> Self {
        Self::new(LevelArray::new(max_concurrency), master_seed)
    }
}

impl<A: ActivityArray> ThreadRegistry<A> {
    /// Wraps `array`; per-thread generators are derived from `master_seed`.
    pub fn new(array: A, master_seed: u64) -> Self {
        ThreadRegistry {
            array,
            master_seed,
            thread_counter: AtomicU64::new(0),
        }
    }

    /// The wrapped activity array.
    pub fn array(&self) -> &A {
        &self.array
    }

    /// Registers the calling thread and returns an RAII guard that
    /// deregisters on drop.
    ///
    /// # Panics
    ///
    /// Panics if the underlying array is exhausted (more simultaneous holders
    /// than its contention bound) — see [`ActivityArray::get`].
    pub fn register(&self) -> Registration<'_, A> {
        let registration = self.with_thread_rng(|rng| Registration::acquire(&self.array, rng));
        // Post-acquire site: an injected panic here unwinds through the
        // RAII guard, which frees the slot — registration is panic-safe by
        // construction.
        fail_point!("registry::register");
        registration
    }

    /// Registers and immediately leaks the guard, returning the bare name.
    /// The caller is responsible for the eventual [`ThreadRegistry::release`].
    #[must_use = "dropping the returned name leaks the slot forever"]
    pub fn register_leaked(&self) -> Name {
        self.register().leak()
    }

    /// Releases a name obtained from [`ThreadRegistry::register_leaked`].
    ///
    /// # Panics
    ///
    /// Panics if the name is not currently held (double release).
    pub fn release(&self, name: Name) {
        self.array.free(name);
    }

    /// Registers `k` slots in one batched call (see
    /// [`ActivityArray::get_many`]) and leaks them all, returning the bare
    /// names.  The caller is responsible for the eventual
    /// [`ThreadRegistry::release_many`].  The returned vector may be shorter
    /// than `k` if the array saturated mid-batch.
    #[must_use = "dropping the returned names leaks the slots forever"]
    pub fn register_many_leaked(&self, k: usize) -> Vec<Name> {
        let mut out = Vec::with_capacity(k);
        self.with_thread_rng(|rng| {
            self.array.get_many(rng, k, &mut out);
        });
        out.iter().map(|got| got.name()).collect()
    }

    /// Releases a batch of names obtained from
    /// [`ThreadRegistry::register_many_leaked`] through the array's bulk
    /// kernel (see [`ActivityArray::free_many`]).
    ///
    /// # Panics
    ///
    /// Panics if any name is not currently held — duplicates within the
    /// batch included.
    pub fn release_many(&self, names: &[Name]) {
        self.array.free_many(names);
    }

    /// Scans the registered set (see [`ActivityArray::collect`]).
    pub fn collect(&self) -> Vec<Name> {
        self.array.collect()
    }

    /// Runs `f` with this thread's cached generator for this registry.
    fn with_thread_rng<T>(&self, f: impl FnOnce(&mut DefaultRng) -> T) -> T {
        thread_local! {
            // Keyed by (registry identity via pointer-derived seed); in the
            // overwhelmingly common case of one registry per process a single
            // cached generator per thread is exactly right.  With several
            // registries the generators are still independent because the
            // seed mixes the registry's master seed in on first use.
            static RNG: std::cell::RefCell<Option<(u64, DefaultRng)>> =
                const { std::cell::RefCell::new(None) };
        }
        RNG.with(|cell| {
            let mut slot = cell.borrow_mut();
            match slot.as_mut() {
                Some((seed_tag, rng)) if *seed_tag == self.master_seed => f(rng),
                _ => {
                    let thread_index = self.thread_counter.fetch_add(1, Ordering::Relaxed);
                    let seed = SplitMix64::mix(
                        self.master_seed ^ thread_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    let mut rng = larng::default_rng(seed);
                    let result = f(&mut rng);
                    *slot = Some((self.master_seed, rng));
                    result
                }
            }
        })
    }
}

impl<A: ActivityArray> From<A> for ThreadRegistry<A> {
    fn from(array: A) -> Self {
        ThreadRegistry::new(array, larng::entropy_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn register_and_drop_round_trip() {
        let registry = ThreadRegistry::with_contention(4, 1);
        {
            let a = registry.register();
            let b = registry.register();
            assert_ne!(a.name(), b.name());
            assert_eq!(registry.collect().len(), 2);
        }
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn leaked_registrations_need_explicit_release() {
        let registry = ThreadRegistry::with_contention(4, 2);
        let name = registry.register_leaked();
        assert_eq!(registry.collect(), vec![name]);
        registry.release(name);
        assert!(registry.collect().is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_release_panics() {
        let registry = ThreadRegistry::with_contention(4, 3);
        let name = registry.register_leaked();
        registry.release(name);
        registry.release(name);
    }

    #[test]
    fn batched_registration_round_trips_through_the_bulk_kernels() {
        let registry = ThreadRegistry::with_contention(16, 6);
        let names = registry.register_many_leaked(10);
        assert_eq!(names.len(), 10);
        let unique: HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len());
        assert_eq!(registry.collect().len(), 10);
        registry.release_many(&names);
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn from_array_uses_entropy_seed() {
        let registry: ThreadRegistry<LevelArray> = LevelArray::new(4).into();
        let guard = registry.register();
        assert!(guard.name().index() < registry.array().capacity());
    }

    #[test]
    fn concurrent_registrations_are_unique() {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(2)
            .clamp(2, 4);
        let registry = Arc::new(ThreadRegistry::with_contention(threads, 4));
        let owned: Arc<Vec<AtomicBool>> = Arc::new(
            (0..registry.array().capacity())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let registry = Arc::clone(&registry);
                let owned = Arc::clone(&owned);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        let guard = registry.register();
                        let idx = guard.name().index();
                        assert!(!owned[idx].swap(true, Ordering::SeqCst));
                        owned[idx].store(false, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn distinct_threads_get_distinct_streams() {
        // Two threads registering against an otherwise empty large array: if
        // the per-thread seeding were broken (identical streams), both first
        // probes would target the same slot and the loser would be pushed out
        // of batch 0.  With independent streams both registrations stop in
        // batch 0 on their first probe (collision probability 1/1536 for the
        // fixed seed used here), and the names are of course distinct.
        let registry = Arc::new(ThreadRegistry::with_contention(1024, 5));
        let batch0_len = registry.array().geometry().batch_len(0);
        let first_names: Vec<Name> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let registry = Arc::clone(&registry);
                    scope.spawn(move || registry.register().name())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let unique: HashSet<_> = first_names.iter().collect();
        assert_eq!(unique.len(), 2);
        for name in &first_names {
            assert!(
                name.index() < batch0_len,
                "a registration was pushed out of batch 0: {first_names:?}"
            );
        }
    }
}
