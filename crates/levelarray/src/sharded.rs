//! The sharded LevelArray: per-shard probing cores with work stealing.
//!
//! At high thread counts every `Get` on a single LevelArray hammers the same
//! `2n`-slot main array, so cache-line contention — not probe complexity —
//! becomes the throughput ceiling.  [`ShardedLevelArray`] partitions the
//! contention bound across `S` cache-padded [`ProbeCore`]s: each thread is
//! pinned to a *home shard* on its first `Get` (a sticky per-thread token
//! leased from the array's [`crate::topology`] pool, assigned
//! node-interleaved across the machine topology — plain round-robin on a
//! single-node box — and *recycled on thread exit*, so the assignment stays
//! stable under thread churn) and runs the
//! paper's probing strategy inside that shard alone; only when the home
//! shard is exhausted does it *steal*, walking the remaining shards in ring
//! order (each with the same full probing strategy, backup included).  The
//! caller's RNG still drives the probe order inside every shard, home and
//! stolen alike — only the *routing* is sticky, which keeps a thread's hot
//! cache lines inside one shard instead of re-rolling them on every
//! operation.  Shard-local slot indices map into the global dense namespace
//! as `shard * shard_capacity + local`, so uniqueness, `free`, `collect` and
//! `occupancy` all keep the paper's semantics over the union of the shards.
//!
//! The per-shard contention bound is `⌈n / S⌉`, so the total backup capacity
//! `S · ⌈n / S⌉ ≥ n` preserves the wait-freedom argument: at most `n − 1`
//! other processes hold slots while a `Get` runs, so the steal walk always
//! reaches a shard whose sequential backup has a free slot.

use std::sync::Arc;

use larng::RandomSource;

use crate::array::{Acquired, ActivityArray};
use crate::config::{ConfigError, LevelArrayConfig};
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{OccupancySnapshot, Region, RegionOccupancy};
use crate::probe_core::ProbeCore;
use crate::slot::SlotLayout;
use crate::topology::{HomePool, Topology};

/// One shard, padded to two cache lines so that the hot atomic traffic of
/// neighbouring shards' slots never shares a line with this shard's metadata.
/// (The slots *within* a shard are deliberately unpadded, exactly like the
/// plain LevelArray — see [`crate::slot::Slot`].)
#[derive(Debug)]
#[repr(align(128))]
struct PaddedCore(ProbeCore);

/// A LevelArray partitioned into `S` cache-padded shards with work stealing.
///
/// # Examples
///
/// Basic use — identical to [`crate::LevelArray`], through the same
/// [`ActivityArray`] trait:
///
/// ```
/// use levelarray::{ActivityArray, ShardedLevelArray};
/// use larng::default_rng;
///
/// let array = ShardedLevelArray::new(64, 4); // contention bound 64, 4 shards
/// let mut rng = default_rng(1);
///
/// let got = array.get(&mut rng);
/// assert!(array.collect().contains(&got.name()));
/// array.free(got.name());
/// assert!(array.collect().is_empty());
/// ```
///
/// Shared across threads, each pinned to a sticky home shard on first use:
///
/// ```
/// use levelarray::{ActivityArray, ShardedLevelArray};
/// use larng::{default_rng, SeedSequence};
/// use std::sync::Arc;
///
/// let array = Arc::new(ShardedLevelArray::new(16, 4));
/// let mut seeds = SeedSequence::new(7);
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let array = Arc::clone(&array);
///         let seed = seeds.next_seed();
///         scope.spawn(move || {
///             let mut rng = default_rng(seed);
///             for _ in 0..100 {
///                 let got = array.get(&mut rng);
///                 array.free(got.name());
///             }
///         });
///     }
/// });
/// assert!(array.collect().is_empty());
/// ```
#[derive(Debug)]
pub struct ShardedLevelArray {
    shards: Box<[PaddedCore]>,
    /// Capacity (main + backup) of every shard; the stride of the global
    /// name mapping.
    shard_capacity: usize,
    /// The per-shard contention bound `⌈n / S⌉` the shards were sized for.
    shard_contention: usize,
    max_concurrency: usize,
    /// Process-unique identity for the sticky-token cache and the Free→Get
    /// hint cache (see [`crate::hint`]); a thread's cached token or hint is
    /// only valid for the array that minted it.
    array_id: u64,
    /// Whether `free` arms the per-thread Free→Get hint cache
    /// ([`LevelArrayConfig::free_hint`]).
    free_hint: bool,
    /// The churn-stable home-token pool: each newly arriving thread leases
    /// the smallest free token (recycled from departed threads before fresh
    /// ones) and the pool's topology maps tokens to shards node-interleaved.
    home_pool: Arc<HomePool>,
}

impl ShardedLevelArray {
    /// Creates a sharded array with the paper's default configuration for at
    /// most `max_concurrency` simultaneously registered processes, split over
    /// `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0` or `shards == 0`.  Use
    /// [`ShardedLevelArray::from_config`] (or
    /// [`LevelArrayConfig::build_sharded`]) for fallible construction and for
    /// non-default parameters.
    pub fn new(max_concurrency: usize, shards: usize) -> Self {
        Self::from_config(&LevelArrayConfig::new(max_concurrency), shards)
            .expect("default configuration is valid for non-zero contention bound and shards")
    }

    /// Builds a sharded array from a shared configuration: the configuration's
    /// contention bound `n` is split into `S` shards of bound `⌈n / S⌉`, each
    /// materialized as an independent [`ProbeCore`] with the configuration's
    /// space factor, probe policy, backup setting and TAS primitive.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroShards`] if `shards == 0`; otherwise
    /// whatever [`LevelArrayConfig::validate`] reports for the per-shard
    /// configuration.
    pub fn from_config(config: &LevelArrayConfig, shards: usize) -> Result<Self, ConfigError> {
        Self::from_config_with_topology(config, shards, Topology::current().clone())
    }

    /// Like [`ShardedLevelArray::from_config`], but routing home tokens
    /// through an explicit [`Topology`] instead of the discovered machine
    /// layout — the injection point for the simulator and for tests that
    /// study placement on machines they are not running on.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedLevelArray::from_config`].
    pub fn from_config_with_topology(
        config: &LevelArrayConfig,
        shards: usize,
        topology: Topology,
    ) -> Result<Self, ConfigError> {
        if shards == 0 {
            return Err(ConfigError::ZeroShards);
        }
        let n = config.max_concurrency_value();
        if n == 0 {
            return Err(ConfigError::ZeroConcurrency);
        }
        let shard_contention = n.div_ceil(shards);
        let mut per_shard = config.clone().with_contention(shard_contention);
        // A hybrid split was chosen against the *full* main array; divide it
        // across the shards so the word-per-slot head keeps the same share
        // of each (smaller) per-shard main array.
        if let SlotLayout::Hybrid { packed_from } = per_shard.slot_layout_value() {
            let split = packed_from.div_ceil(shards).min(per_shard.main_len());
            per_shard = per_shard.slot_layout(SlotLayout::Hybrid { packed_from: split });
        }
        let cores: Vec<PaddedCore> = (0..shards)
            .map(|_| Ok(PaddedCore(per_shard.validate()?.into_probe_core())))
            .collect::<Result<_, ConfigError>>()?;
        let shard_capacity = cores[0].0.capacity();
        Ok(ShardedLevelArray {
            shards: cores.into_boxed_slice(),
            shard_capacity,
            shard_contention,
            max_concurrency: n,
            array_id: crate::hint::next_array_id(),
            free_hint: config.free_hint_enabled(),
            home_pool: Arc::new(HomePool::new(topology)),
        })
    }

    /// The calling thread's home shard, pinning it on first use by leasing a
    /// token from the array's home pool: the first thread to touch this
    /// array gets token 0, the next token 1, and so on, with tokens mapped
    /// to shards node-interleaved across the pool's topology (plain
    /// round-robin on a single-node machine) so a population of `T` threads
    /// spreads evenly over the shards — and across the NUMA nodes — while
    /// every thread keeps hammering the *same* shard's cache lines across
    /// operations.
    ///
    /// The assignment is **stable under thread churn**: a departing thread's
    /// token returns to the pool and the next arriving thread recycles it
    /// (most recently vacated first), so a population of at most `T`
    /// concurrent threads only ever occupies tokens `0..T` — short-lived
    /// threads inherit their predecessors' homes instead of marching a
    /// round-robin cursor forward and skewing the long-run placement.
    pub fn home_shard(&self) -> usize {
        crate::topology::home_shard(self.array_id, &self.home_pool, self.shards.len())
    }

    /// The topology the home pool routes through.
    pub fn topology(&self) -> &Topology {
        self.home_pool.topology()
    }

    /// Explicitly pins the calling thread's home shard, overriding (or
    /// pre-empting) the round-robin assignment.  Use this to align homes
    /// with machine topology (e.g. one shard per NUMA node) or, as the
    /// single-threaded simulator does, to emulate a multi-thread population
    /// from one OS thread by re-pinning per simulated worker.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn pin_home(&self, shard: usize) {
        assert!(
            shard < self.shards.len(),
            "cannot pin home shard {shard}: the array has {} shards",
            self.shards.len()
        );
        crate::topology::pin_home(self.array_id, shard);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Capacity (main + backup slots) of each shard — the stride between
    /// consecutive shards in the global namespace.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    /// The contention bound each shard was sized for: `⌈n / S⌉`.
    pub fn shard_contention(&self) -> usize {
        self.shard_contention
    }

    /// The batch layout shared by every shard's main array.
    pub fn shard_geometry(&self) -> &BatchGeometry {
        self.shards[0].0.geometry()
    }

    /// The slot representation shared by every shard.
    pub fn slot_layout(&self) -> SlotLayout {
        self.shards[0].0.slot_layout()
    }

    /// The sharded `Get`, monomorphized over the caller's random source (see
    /// [`crate::LevelArray::try_get`]): route to the sticky home shard, steal
    /// from the remaining shards in ring order only on local exhaustion.  The
    /// RNG drives the probe order inside every shard visited.  This inherent
    /// method shadows [`ActivityArray::try_get`] for callers holding the
    /// concrete type.
    #[must_use = "dropping the result leaks the acquired name"]
    pub fn try_get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Option<Acquired> {
        if self.free_hint {
            if let Some(hinted) = crate::hint::take(self.array_id) {
                if let Some(got) = self.hint_acquire(hinted) {
                    return Some(got);
                }
            }
        }
        let num_shards = self.shards.len();
        let home = self.home_shard();
        let mut probes = 0u32;
        for hop in 0..num_shards {
            let shard = (home + hop) % num_shards;
            let core = &self.shards[shard].0;
            match core.try_get(rng) {
                Some(local) => {
                    let name = self.global_name(shard, local.name());
                    return Some(Acquired::new(
                        name,
                        probes + local.probes(),
                        local.batch(),
                        local.used_backup(),
                    ));
                }
                // A failed shard performs its full deterministic budget.
                None => probes += core.exhausted_probe_count(),
            }
        }
        None
    }

    /// The batched sharded `Get`, monomorphized over the caller's random
    /// source (see [`ActivityArray::get_many`]): the hint cache is consulted
    /// once, the whole batch is routed through the sticky home shard's
    /// batched kernel ([`ProbeCore::try_get_many`]), and only the unfilled
    /// remainder spills into the ring-order steal walk — one home lookup and
    /// one probe accumulator for the entire batch.
    pub fn get_many<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Acquired>,
    ) -> usize {
        // Panic-safety wrapper: a panic mid-walk (fault injection included)
        // may leave wins from *earlier* hops already translated into the
        // global namespace and appended to `out`.  The panicking shard's own
        // in-flight wins were rolled back by [`ProbeCore::try_get_many`], so
        // everything past `before_all` is a fully-owned global name — free
        // them all and re-raise, leaving the batch all-or-nothing.
        let before_all = out.len();
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.get_many_inner(rng, k, out)
        })) {
            Ok(acquired) => acquired,
            Err(payload) => {
                let _quiet = la_fault::suppress();
                for got in out.drain(before_all..) {
                    ActivityArray::free(self, got.name());
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    fn get_many_inner<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Acquired>,
    ) -> usize {
        if k == 0 {
            return 0;
        }
        let mut acquired = 0usize;
        if self.free_hint {
            if let Some(hinted) = crate::hint::take(self.array_id) {
                if let Some(got) = self.hint_acquire(hinted) {
                    out.push(got);
                    acquired = 1;
                }
            }
        }
        let num_shards = self.shards.len();
        let home = self.home_shard();
        let mut probes = 0u32;
        for hop in 0..num_shards {
            if acquired == k {
                break;
            }
            let shard = (home + hop) % num_shards;
            let before = out.len();
            let won = self.shards[shard]
                .0
                .try_get_many(rng, k - acquired, &mut probes, out);
            for got in &mut out[before..] {
                *got = Acquired::new(
                    self.global_name(shard, got.name()),
                    got.probes(),
                    got.batch(),
                    got.used_backup(),
                );
            }
            acquired += won;
        }
        acquired
    }

    /// Registers through the monomorphized hot path, panicking if every
    /// shard is exhausted (same contract as [`ActivityArray::get`]).
    ///
    /// # Panics
    ///
    /// Panics if no free slot could be acquired, i.e. the caller violated the
    /// contention bound.
    pub fn get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Acquired {
        self.try_get(rng).unwrap_or_else(|| {
            panic!(
                "{}: no free slot; the contention bound ({}) was exceeded",
                ActivityArray::algorithm_name(self),
                self.max_concurrency
            )
        })
    }

    /// The probing core of shard `shard` (local names only).
    ///
    /// # Panics
    ///
    /// Panics if `shard >= num_shards()`.
    pub fn shard_core(&self, shard: usize) -> &ProbeCore {
        &self.shards[shard].0
    }

    /// The shard that owns the global `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn shard_of(&self, name: Name) -> usize {
        // Global sharded names are dense epoch-0 encodings; reject tagged
        // names rather than alias them onto `index() mod capacity`.
        assert_eq!(
            name.epoch(),
            0,
            "a sharded array hands out only epoch-0 names, got {name}"
        );
        let shard = name.index() / self.shard_capacity;
        assert!(
            shard < self.shards.len(),
            "name {} out of range for a sharded array with capacity {}",
            name.index(),
            self.capacity()
        );
        shard
    }

    /// Translates a shard-local slot index into the global namespace.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or `local` exceeds the shard
    /// capacity.
    pub fn global_name(&self, shard: usize, local: Name) -> Name {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        assert!(
            local.index() < self.shard_capacity,
            "local name {} exceeds the shard capacity {}",
            local.index(),
            self.shard_capacity
        );
        Name::new(shard * self.shard_capacity + local.index())
    }

    fn split(&self, name: Name) -> (usize, Name) {
        let shard = self.shard_of(name);
        (shard, Name::new(name.index() % self.shard_capacity))
    }

    /// Retries the hinted global slot with one test-and-set, remapping the
    /// shard-local win back into the global namespace.  Stale hints (wrong
    /// epoch, out of range) are rejected without panicking — the caller falls
    /// through to the probe path.  The hint attempt is not counted as a
    /// probe, matching [`ProbeCore::hint_acquire`].
    fn hint_acquire(&self, hinted: Name) -> Option<Acquired> {
        if hinted.epoch() != 0 {
            return None;
        }
        let shard = hinted.index() / self.shard_capacity;
        if shard >= self.shards.len() {
            return None;
        }
        let local = Name::new(hinted.index() % self.shard_capacity);
        let got = self.shards[shard].0.hint_acquire(local)?;
        Some(Acquired::new(
            self.global_name(shard, got.name()),
            got.probes(),
            got.batch(),
            got.used_backup(),
        ))
    }

    /// Whether `free` arms the per-thread Free→Get hint cache.
    pub fn free_hint_enabled(&self) -> bool {
        self.free_hint
    }

    /// Directly occupies a specific slot of the global namespace, bypassing
    /// the probing strategy (test/experiment hook, exactly like
    /// [`crate::LevelArray::force_occupy`]).
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        let (shard, local) = self.split(name);
        self.shards[shard].0.force_occupy(local)
    }

    /// Reads whether a specific global slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        let (shard, local) = self.split(name);
        self.shards[shard].0.is_held(local)
    }

    /// Whether the global `name` lies in some shard's backup array.
    pub fn is_backup_name(&self, name: Name) -> bool {
        let (shard, local) = self.split(name);
        self.shards[shard].0.is_backup_name(local)
    }

    /// The batch-aggregated census: per-batch totals summed *across* shards
    /// (batch `i` of every shard folded into one [`Region::Batch`] entry,
    /// likewise the backups), so the paper's balance definitions — which are
    /// predicates over batch totals for contention bound `n` — apply to the
    /// sharded layout unchanged.  [`ActivityArray::occupancy`] reports the
    /// finer per-shard census instead.
    pub fn batchwise_occupancy(&self) -> OccupancySnapshot {
        let geometry = self.shard_geometry();
        let mut regions: Vec<RegionOccupancy> = (0..geometry.num_batches())
            .map(|batch| {
                let capacity = geometry.batch_len(batch) * self.shards.len();
                let occupied = self.shards.iter().map(|s| s.0.batch_occupancy(batch)).sum();
                RegionOccupancy::new(Region::Batch(batch), capacity, occupied)
            })
            .collect();
        let backup_capacity: usize = self.shards.iter().map(|s| s.0.backup_len()).sum();
        if backup_capacity > 0 {
            let occupied = self.shards.iter().map(|s| s.0.backup_occupancy()).sum();
            regions.push(RegionOccupancy::new(
                Region::Backup,
                backup_capacity,
                occupied,
            ));
        }
        OccupancySnapshot::new(regions)
    }
}

impl ActivityArray for ShardedLevelArray {
    fn algorithm_name(&self) -> &'static str {
        "ShardedLevelArray"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        ShardedLevelArray::try_get(self, rng)
    }

    fn get_many(&self, rng: &mut dyn RandomSource, k: usize, out: &mut Vec<Acquired>) -> usize {
        ShardedLevelArray::get_many(self, rng, k, out)
    }

    fn free(&self, name: Name) {
        let (shard, local) = self.split(name);
        self.shards[shard].0.free(local);
        if self.free_hint {
            crate::hint::record(self.array_id, name);
        }
    }

    fn free_many(&self, names: &[Name]) {
        if names.is_empty() {
            return;
        }
        // Sort once, split into contiguous per-shard runs, and release each
        // run through the owning core's bulk kernel.
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        let mut start = 0;
        while start < sorted.len() {
            let shard = self.shard_of(sorted[start]);
            let base = shard * self.shard_capacity;
            let limit = base + self.shard_capacity;
            let end = sorted.partition_point(|n| n.epoch() == 0 && n.index() < limit);
            for name in &mut sorted[start..end] {
                *name = Name::new(name.index() - base);
            }
            self.shards[shard].0.free_many(&sorted[start..end]);
            start = end;
        }
        // Refill the Free→Get hint with the last name of the batch, exactly
        // as the final free of a singleton loop would.
        if self.free_hint {
            if let Some(&last) = names.last() {
                crate::hint::record(self.array_id, last);
            }
        }
    }

    fn route_hint(&self, participant: usize) {
        self.pin_home(participant % self.shards.len());
    }

    fn collect(&self) -> Vec<Name> {
        let mut held = Vec::new();
        ActivityArray::collect_into(self, &mut held);
        held
    }

    fn collect_into(&self, out: &mut Vec<Name>) {
        for (shard, core) in self.shards.iter().enumerate() {
            core.0.collect_into(shard * self.shard_capacity, out);
        }
    }

    fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    fn max_participants(&self) -> usize {
        self.max_concurrency
    }

    fn occupancy(&self) -> OccupancySnapshot {
        let mut regions = Vec::new();
        for (shard, core) in self.shards.iter().enumerate() {
            regions.extend(core.0.region_occupancies(|region| match region {
                Region::Batch(batch) => Region::ShardBatch { shard, batch },
                Region::Backup => Region::ShardBackup(shard),
                other => other,
            }));
        }
        OccupancySnapshot::new(regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LevelArrayConfig;
    use larng::{default_rng, SequenceRng};
    use std::collections::HashSet;

    #[test]
    fn dimensions_split_the_contention_bound() {
        let array = ShardedLevelArray::new(64, 4);
        assert_eq!(array.num_shards(), 4);
        assert_eq!(array.shard_contention(), 16);
        assert_eq!(array.shard_capacity(), 16 * 2 + 16);
        assert_eq!(array.capacity(), 4 * 48);
        assert_eq!(array.max_participants(), 64);
        assert_eq!(array.algorithm_name(), "ShardedLevelArray");
        assert!(array.collect().is_empty());
    }

    #[test]
    fn uneven_split_rounds_the_shard_bound_up() {
        let array = ShardedLevelArray::new(10, 3);
        assert_eq!(array.shard_contention(), 4);
        // Total backup (3 * 4 = 12) covers the contention bound (10).
        let backup_total: usize = (0..3).map(|s| array.shard_core(s).backup_len()).sum();
        assert!(backup_total >= 10);
    }

    #[test]
    fn zero_shards_and_zero_concurrency_are_rejected() {
        assert_eq!(
            ShardedLevelArray::from_config(&LevelArrayConfig::new(8), 0).unwrap_err(),
            ConfigError::ZeroShards
        );
        assert_eq!(
            ShardedLevelArray::from_config(&LevelArrayConfig::new(0), 2).unwrap_err(),
            ConfigError::ZeroConcurrency
        );
    }

    #[test]
    fn get_free_round_trip() {
        let array = ShardedLevelArray::new(16, 4);
        let mut rng = default_rng(3);
        let got = array.get(&mut rng);
        assert!(got.probes() >= 1);
        assert!(array.is_held(got.name()));
        assert_eq!(array.collect(), vec![got.name()]);
        array.free(got.name());
        assert!(!array.is_held(got.name()));
        assert!(array.collect().is_empty());
    }

    #[test]
    fn global_names_are_unique_while_held() {
        let array = ShardedLevelArray::new(32, 4);
        let mut rng = default_rng(4);
        let mut held = HashSet::new();
        for _ in 0..32 {
            let got = array.get(&mut rng);
            assert!(held.insert(got.name()), "duplicate name {}", got.name());
            assert!(got.name().index() < array.capacity());
        }
        assert_eq!(array.collect().len(), 32);
        for name in held {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn full_capacity_is_reachable_across_shards() {
        // Repeated try_get must eventually hand out *every* slot of every
        // shard exactly once — the steal path covers shards whose own
        // namespace is exhausted.
        let array = ShardedLevelArray::new(8, 2);
        let mut rng = default_rng(5);
        let mut held = HashSet::new();
        for _ in 0..100_000 {
            if held.len() == array.capacity() {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                assert!(held.insert(got.name()), "duplicate name {}", got.name());
            }
        }
        assert_eq!(held.len(), array.capacity());
        assert!(array.try_get(&mut rng).is_none());
    }

    #[test]
    fn steal_path_walks_to_the_next_shard() {
        // Fill shard 0 completely; the calling thread is the first to touch
        // this array so its sticky token pins it to shard 0.  The Get must
        // steal from shard 1, charging shard 0's full deterministic probe
        // budget on the way.
        let array = ShardedLevelArray::new(8, 2);
        assert_eq!(array.home_shard(), 0, "first thread pins shard 0");
        let cap = array.shard_capacity();
        for local in 0..cap {
            assert!(array.force_occupy(Name::new(local)));
        }
        let core0 = array.shard_core(0);
        // Script: one raw value per randomized probe in shard 0 (each aimed
        // at slot 0 of its batch, which is held and loses), then shard 1's
        // first probe (slot 0 of batch 0, free, wins).
        let mut script = Vec::new();
        for b in 0..core0.geometry().num_batches() {
            let len = core0.geometry().batch_len(b) as u64;
            for _ in 0..core0.probe_policy().probes_in_batch(b) {
                script.push(larng::mock::raw_for_index(0, len));
            }
        }
        script.push(larng::mock::raw_for_index(
            0,
            array.shard_core(1).geometry().batch_len(0) as u64,
        ));
        let mut rng = SequenceRng::new(script);

        let got = array.get(&mut rng);
        assert_eq!(array.shard_of(got.name()), 1, "must have stolen");
        assert_eq!(got.probes(), core0.exhausted_probe_count() + 1);
        assert_eq!(got.batch(), Some(0));
        assert!(!got.used_backup());
    }

    #[test]
    fn home_shard_is_sticky_and_assigned_round_robin() {
        use std::sync::{Arc, Barrier};

        let shards = 4;
        let array = Arc::new(ShardedLevelArray::new(32, shards));
        // Round-robin pinning: the first `shards` threads get distinct homes,
        // and a thread keeps its home across operations.
        let barrier = Arc::new(Barrier::new(shards));
        let homes: Vec<(usize, usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|t| {
                    let array = Arc::clone(&array);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let home = array.home_shard();
                        let again = array.home_shard();
                        // Hold every lease until all threads have theirs: a
                        // thread that exited early would return its token
                        // for a later arrival to recycle (the churn
                        // invariant), collapsing the distinct-homes check.
                        barrier.wait();
                        let mut rng = default_rng(40 + t as u64);
                        // On an empty array the Get lands in the home shard.
                        let got = array.get(&mut rng);
                        let landed = array.shard_of(got.name());
                        array.free(got.name());
                        (home, again, landed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen = HashSet::new();
        for (home, again, landed) in homes {
            assert_eq!(home, again, "the token must be sticky");
            assert_eq!(home, landed, "an uncontended Get stays in its home");
            assert!(seen.insert(home), "round-robin homes must be distinct");
        }
        assert_eq!(seen.len(), shards);
    }

    #[test]
    fn home_assignment_is_stable_under_thread_churn() {
        use std::sync::Arc;

        // A sequence of short-lived threads (arrive, Get/Free, depart) must
        // all inherit the same home: each departing thread's token returns
        // to the pool, so the successor recycles it instead of advancing to
        // a fresh token and drifting across the shards.
        let array = Arc::new(ShardedLevelArray::new(32, 4));
        let homes: Vec<usize> = (0..8)
            .map(|t| {
                let array = Arc::clone(&array);
                std::thread::spawn(move || {
                    let mut rng = default_rng(300 + t as u64);
                    let home = array.home_shard();
                    let got = array.get(&mut rng);
                    array.free(got.name());
                    home
                })
                .join()
                .unwrap()
            })
            .collect();
        assert!(
            homes.windows(2).all(|w| w[0] == w[1]),
            "churned threads must recycle the vacated home token, got {homes:?}"
        );
    }

    #[test]
    fn injected_topology_interleaves_homes_across_nodes() {
        use crate::topology::Topology;
        use std::sync::{Arc, Barrier};

        // A synthetic two-node box with 4 shards: shards {0, 2} belong to
        // node 0 and {1, 3} to node 1, so the first two concurrent threads
        // must land on different nodes (one even home, one odd).
        let topo = Topology::synthetic(vec![vec![0, 1], vec![2, 3]]);
        let array = Arc::new(
            ShardedLevelArray::from_config_with_topology(&LevelArrayConfig::new(32), 4, topo)
                .unwrap(),
        );
        assert_eq!(array.topology().num_nodes(), 2);
        let barrier = Arc::new(Barrier::new(2));
        let homes: Vec<usize> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let array = Arc::clone(&array);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let home = array.home_shard();
                        // Keep both leases alive until each thread has one,
                        // so an early exit cannot recycle its token to the
                        // other thread.
                        barrier.wait();
                        home
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_ne!(
            homes[0] % 2,
            homes[1] % 2,
            "tokens 0 and 1 must interleave across the two nodes, got {homes:?}"
        );
    }

    #[test]
    fn occupancy_reports_per_shard_regions() {
        let array = ShardedLevelArray::new(32, 4);
        let mut rng = default_rng(6);
        for _ in 0..24 {
            let _ = array.get(&mut rng);
        }
        let snap = array.occupancy();
        assert_eq!(snap.num_shards(), 4);
        assert_eq!(snap.total_capacity(), array.capacity());
        assert_eq!(snap.total_occupied(), array.collect().len());
        // Every shard contributes its batch regions plus a backup region.
        let per_shard = array.shard_geometry().num_batches() + 1;
        assert_eq!(snap.regions().len(), 4 * per_shard);
        assert!(snap.shard_batch(0, 0).is_some());
        assert!(snap.shard_backup(3).is_some());
        // The aggregate view folds the shards back into plain batches.
        let agg = array.batchwise_occupancy();
        assert_eq!(agg.num_shards(), 0);
        assert_eq!(agg.total_capacity(), array.capacity());
        assert_eq!(agg.total_occupied(), snap.total_occupied());
        assert_eq!(agg.num_batches(), array.shard_geometry().num_batches());
        for batch in 0..agg.num_batches() {
            let total: usize = (0..4)
                .map(|s| snap.shard_batch(s, batch).map_or(0, |r| r.occupied()))
                .sum();
            assert_eq!(agg.batch(batch).unwrap().occupied(), total);
        }
    }

    #[test]
    fn generic_balance_consumers_see_the_sharded_census() {
        // The trait-level occupancy() feeds the same balance machinery the
        // plain array uses: per-shard regions aggregate, so a generic
        // consumer holding only a `dyn ActivityArray` judges balance
        // identically to the explicit batchwise view.
        use crate::balance::BalanceReport;
        let n = 256;
        let array = ShardedLevelArray::new(n, 4);
        let mut rng = default_rng(10);
        for _ in 0..n / 2 {
            let _ = array.get(&mut rng);
        }
        let per_shard = array.occupancy();
        let agg = array.batchwise_occupancy();
        assert_eq!(per_shard.num_batches(), agg.num_batches());
        assert_eq!(per_shard.batch_fill_fractions(), agg.batch_fill_fractions());
        let from_per_shard = BalanceReport::from_snapshot(&per_shard, n);
        let from_agg = BalanceReport::from_snapshot(&agg, n);
        assert_eq!(from_per_shard.batches(), from_agg.batches());
        assert_eq!(
            from_per_shard.is_fully_balanced(),
            from_agg.is_fully_balanced()
        );
    }

    #[test]
    fn single_shard_behaves_like_a_level_array() {
        let sharded = ShardedLevelArray::new(16, 1);
        let plain = crate::LevelArray::new(16);
        assert_eq!(sharded.capacity(), plain.capacity());
        assert_eq!(sharded.shard_geometry(), plain.geometry());
        let mut rng = default_rng(8);
        let mut held = Vec::new();
        for _ in 0..16 {
            held.push(sharded.get(&mut rng).name());
        }
        assert_eq!(sharded.collect().len(), 16);
        for name in held {
            sharded.free(name);
        }
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let array = ShardedLevelArray::new(8, 2);
        let mut rng = default_rng(9);
        let got = array.get(&mut rng);
        array.free(got.name());
        array.free(got.name());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn free_of_out_of_range_name_panics() {
        let array = ShardedLevelArray::new(8, 2);
        array.free(Name::new(1_000_000));
    }

    #[test]
    #[should_panic(expected = "epoch-0")]
    fn free_of_epoch_tagged_name_panics() {
        let array = ShardedLevelArray::new(8, 2);
        array.free(Name::with_epoch(1, 0));
    }

    #[test]
    fn free_hint_rewins_the_freed_global_slot_in_one_probe() {
        let off = ShardedLevelArray::new(8, 2);
        assert!(!off.free_hint_enabled(), "the hint defaults off");

        let array =
            ShardedLevelArray::from_config(&LevelArrayConfig::new(8).free_hint(true), 2).unwrap();
        assert!(array.free_hint_enabled());
        let mut rng = default_rng(77);
        let got = array.get(&mut rng);
        let name = got.name();
        array.free(name);
        let again = array.get(&mut rng);
        assert_eq!(again.name(), name, "the hint re-wins the freed slot");
        assert_eq!(again.probes(), 1);
        // A stolen hint falls through to the probe path without duplicating.
        array.free(name);
        assert!(array.force_occupy(name));
        let other = array.get(&mut rng);
        assert_ne!(other.name(), name);
    }

    #[test]
    fn shards_are_cache_padded() {
        assert_eq!(std::mem::align_of::<PaddedCore>(), 128);
        assert_eq!(std::mem::size_of::<PaddedCore>() % 128, 0);
    }

    #[test]
    fn concurrent_get_free_never_duplicates_names() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let n = 16;
        let array = Arc::new(ShardedLevelArray::new(n, 4));
        let owned: Arc<Vec<AtomicBool>> = Arc::new(
            (0..array.capacity())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        std::thread::scope(|scope| {
            for t in 0..n {
                let array = Arc::clone(&array);
                let owned = Arc::clone(&owned);
                scope.spawn(move || {
                    let mut rng = default_rng(2000 + t as u64);
                    for _ in 0..2_000 {
                        let got = array.get(&mut rng);
                        let idx = got.name().index();
                        assert!(
                            !owned[idx].swap(true, Ordering::SeqCst),
                            "slot {idx} handed to two threads at once"
                        );
                        owned[idx].store(false, Ordering::SeqCst);
                        array.free(got.name());
                    }
                });
            }
        });
        assert!(array.collect().is_empty());
    }
}
