//! The lock-free epoch chain: an atomic head pointer over an immutable
//! linked chain of nodes, with grace-counter reclamation.
//!
//! [`EpochChain`] is the concurrency substrate under
//! [`crate::ElasticLevelArray`], factored out so the protocol can be stated
//! (and tested) without any probing machinery on top.  The design follows
//! the shape of hazard-pointer registries (an atomic head over append-only
//! immutable cells) specialized to the elastic array's access pattern:
//!
//! * **The chain is immutable.**  Every [`ChainNode`] holds a value and an
//!   [`Arc`] link to the next-older node, fixed at construction.  The only
//!   mutable location is the chain's *head* pointer, so readers never
//!   observe a half-updated chain: whatever head they load is the root of a
//!   complete, immutable snapshot.
//! * **Growth is a CAS.**  [`ChainPin::try_push`] builds a fresh node whose
//!   `next` is the observed head and publishes it with a single
//!   compare-and-swap.  Losers of a publication race drop their candidate
//!   node and route into the winner's — nobody blocks, nobody retries
//!   inside the chain itself.
//! * **Removal republishes a filtered copy.**  [`ChainPin::try_remove`]
//!   rebuilds the prefix above the deepest removed node (sharing the
//!   suffix below it through the existing `Arc` links, and the values
//!   themselves via `T: Clone` — for the elastic array `T` is an
//!   `Arc<EpochCell>`, so a "copy" is a reference-count bump) and publishes
//!   the new head with the same CAS.
//! * **Reclamation waits for a grace period.**  Readers *pin* the chain
//!   ([`EpochChain::pin`]) by incrementing one of a set of cache-padded
//!   stripe counters before loading the head, and decrement it when the
//!   [`ChainPin`] drops.  A displaced head (the root of a replaced
//!   snapshot) goes onto a lock-free garbage stack;
//!   [`EpochChain::try_collect_garbage`] frees a batch only after observing
//!   **every** stripe at zero — at which point no reader can still hold a
//!   reference into the replaced snapshot, because any pin taken after the
//!   observation re-loads the (new) head.  The observation is a single
//!   non-blocking pass: if a reader is active the batch is pushed back and
//!   retried on a later call, so *nothing on this path ever waits*.
//!
//! The memory argument, spelled out once (and referenced by the `SAFETY`
//! comments below): a node is freed only by `try_collect_garbage`, which
//! (1) pops a garbage batch — every node in it was unlinked from the head
//! *before* the pop — and then (2) observes all pin stripes at zero with
//! sequentially consistent loads.  A reader that still held a reference
//! into the batch would have pinned before its unlink and not yet unpinned,
//! so its stripe would be non-zero at (2) and the batch would be pushed
//! back.  Conversely a reader whose increment is *not* visible at (2)
//! ordered its pin after the observation in the sequentially consistent
//! total order, so its subsequent head load returns the current head, from
//! which the popped batch is unreachable.  Either way no freed node is
//! reachable from any active or future pin.
//!
//! # Examples
//!
//! ```
//! use levelarray::epoch_chain::EpochChain;
//!
//! let chain: EpochChain<usize> = EpochChain::new(0);
//! {
//!     let pin = chain.pin();
//!     let head = pin.head();
//!     assert!(pin.try_push(head, 1)); // CAS-published growth
//!     assert_eq!(pin.num_nodes(), 2);
//!     // Newest-to-oldest traversal over the immutable snapshot.
//!     let values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
//!     assert_eq!(values, vec![1, 0]);
//!     // Remove the old generation: republishes a filtered chain.
//!     assert_eq!(pin.try_remove(|v| *v != 0), Ok(1));
//!     assert_eq!(pin.num_nodes(), 1);
//! }
//! // With no pins active, the displaced snapshots can be reclaimed.
//! assert!(chain.no_active_pins());
//! chain.try_collect_garbage();
//! assert_eq!(chain.pending_garbage(), 0);
//! ```

use la_fault::fail_point;
use la_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::cell::Cell;
use std::fmt;
use std::ptr;
use std::sync::Arc;

/// Milliseconds since an arbitrary process-local anchor — the advisory
/// clock behind stuck-pin ages and watchdog backoff deadlines.  Monotonic,
/// cheap, and deliberately *not* routed through `la_sync`: the timestamps
/// are diagnostics, not synchronization, so the loom model never sees them.
#[cfg(not(miri))]
pub(crate) fn now_ms() -> u64 {
    use std::time::Instant;
    static ANCHOR: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Miri's isolation mode forbids `Instant::now`; a ticking counter keeps
/// the ages monotonic (every read advances time by 1ms) without it.
#[cfg(miri)]
pub(crate) fn now_ms() -> u64 {
    static TICKS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    TICKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

/// Default number of pin stripes (see [`EpochChain::with_stripes`]).
pub const DEFAULT_PIN_STRIPES: usize = 16;

/// Hands each OS thread a small sticky token on first use, round-robin, so
/// threads spread over the pin stripes without hashing thread ids (the same
/// scheme as [`crate::ShardedLevelArray`]'s home-shard tokens).
static NEXT_THREAD_TOKEN: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's sticky stripe token, assigned on first pin.
    static THREAD_TOKEN: Cell<Option<usize>> = const { Cell::new(None) };
}

fn thread_token() -> usize {
    THREAD_TOKEN.with(|token| match token.get() {
        Some(t) => t,
        None => {
            let t = NEXT_THREAD_TOKEN.fetch_add(1, Ordering::Relaxed);
            token.set(Some(t));
            t
        }
    })
}

/// One reader-count stripe, padded to its own pair of cache lines so that
/// pin/unpin traffic from different threads never contends on one line.
#[derive(Debug)]
#[repr(align(128))]
struct PinStripe {
    active: AtomicUsize,
    /// [`now_ms`] stamp of the stripe's last idle→busy transition; only
    /// meaningful while `active > 0`.  A plain std atomic on purpose — it
    /// feeds the advisory stuck-pin watchdog, plays no part in the grace
    /// protocol, and must stay invisible to the loom model.
    busy_since: std::sync::atomic::AtomicU64,
}

/// One immutable link of the chain: a value plus the [`Arc`] link to the
/// next-older node.  Both are fixed at construction; all mutation happens by
/// publishing a *different* node as the chain head.
pub struct ChainNode<T> {
    value: T,
    next: Option<Arc<ChainNode<T>>>,
}

impl<T> ChainNode<T> {
    /// The value carried by this node.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// The next-older node, or `None` for the oldest node of the snapshot.
    pub fn next(&self) -> Option<&ChainNode<T>> {
        self.next.as_deref()
    }

    /// Iterates this node and everything older, newest first.
    pub fn iter(&self) -> ChainNodeIter<'_, T> {
        ChainNodeIter { cur: Some(self) }
    }

    /// The number of nodes from this one (inclusive) to the oldest.
    pub fn depth(&self) -> usize {
        self.iter().count()
    }
}

impl<T: fmt::Debug> fmt::Debug for ChainNode<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainNode")
            .field("value", &self.value)
            .field("depth", &self.depth())
            .finish()
    }
}

/// Newest-to-oldest traversal of an immutable chain snapshot (see
/// [`ChainNode::iter`] / [`ChainPin::iter`]).
#[derive(Debug)]
pub struct ChainNodeIter<'a, T> {
    cur: Option<&'a ChainNode<T>>,
}

impl<'a, T> Iterator for ChainNodeIter<'a, T> {
    type Item = &'a ChainNode<T>;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.cur?;
        self.cur = node.next();
        Some(node)
    }
}

/// One retired chain snapshot awaiting its grace period, stacked on the
/// chain's lock-free garbage list.
struct GarbageNode<T> {
    /// The strong reference the chain head used to own on the displaced
    /// snapshot's root; it is held only for its `Drop` — dropping it
    /// cascades through the snapshot's private prefix (nodes shared with
    /// the live chain survive via their own reference counts).
    #[allow(dead_code)]
    item: Arc<ChainNode<T>>,
    next: *mut GarbageNode<T>,
}

/// The error returned by [`ChainPin::try_remove`] when the head moved
/// between reading the snapshot and publishing the filtered copy (a
/// concurrent push or removal won the CAS).  The caller re-reads and
/// retries; somebody made progress either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainRace;

impl fmt::Display for ChainRace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the chain head moved before the update could be published"
        )
    }
}

impl std::error::Error for ChainRace {}

/// A lock-free chain of immutable nodes behind one atomic head pointer,
/// with striped grace counters for reclamation (see the [module
/// documentation](self) for the protocol and the memory argument).
pub struct EpochChain<T> {
    /// Owns exactly one strong reference on the current head node.  Never
    /// null.
    head: AtomicPtr<ChainNode<T>>,
    stripes: Box<[PinStripe]>,
    /// Treiber stack of displaced snapshots awaiting a grace period.
    garbage: AtomicPtr<GarbageNode<T>>,
    /// Advisory count of stacked garbage snapshots (kept in step with pushes
    /// and successful collections; see [`EpochChain::pending_garbage`]).
    garbage_len: AtomicUsize,
}

// SAFETY: the raw pointers inside are either the head (which owns one strong
// Arc reference and is only ever read through the pin protocol or with
// exclusive access in Drop) or the garbage stack (whose nodes are owned by
// the stack and only freed after the grace-period observation described in
// the module docs).  With `T: Send + Sync`, sharing or moving the whole
// structure across threads adds no capability beyond what `Arc<ChainNode<T>>`
// already allows.
unsafe impl<T: Send + Sync> Send for EpochChain<T> {}
// SAFETY: see the `Send` impl above; all shared mutation goes through
// atomics and the pin/grace protocol.
unsafe impl<T: Send + Sync> Sync for EpochChain<T> {}

impl<T> EpochChain<T> {
    /// Creates a chain whose only node carries `first`, with
    /// [`DEFAULT_PIN_STRIPES`] grace-counter stripes.
    pub fn new(first: T) -> Self {
        Self::with_stripes(first, DEFAULT_PIN_STRIPES)
    }

    /// Creates a chain with an explicit stripe count.  More stripes mean
    /// less pin/unpin contention between reader threads but a longer
    /// all-zero observation during reclamation; the default suits typical
    /// thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `stripes == 0` (the grace counter needs at least one
    /// stripe; [`crate::LevelArrayConfig::pin_stripes`] validates this
    /// ahead of time for elastic builds).
    pub fn with_stripes(first: T, stripes: usize) -> Self {
        assert!(stripes > 0, "the grace counter needs at least one stripe");
        let head = Arc::new(ChainNode {
            value: first,
            next: None,
        });
        EpochChain {
            head: AtomicPtr::new(Arc::into_raw(head).cast_mut()),
            stripes: (0..stripes)
                .map(|_| PinStripe {
                    active: AtomicUsize::new(0),
                    busy_since: std::sync::atomic::AtomicU64::new(0),
                })
                .collect(),
            garbage: AtomicPtr::new(ptr::null_mut()),
            garbage_len: AtomicUsize::new(0),
        }
    }

    /// Pins the calling thread: until the returned guard drops, every node
    /// reachable from the head (as loaded through the guard) is guaranteed
    /// to stay allocated.  Pinning is one striped `fetch_add`; it never
    /// blocks and never fails.
    #[must_use = "the guard is the protection; dropping it immediately unpins"]
    pub fn pin(&self) -> ChainPin<'_, T> {
        let stripe = thread_token() % self.stripes.len();
        if self.stripes[stripe].active.fetch_add(1, Ordering::SeqCst) == 0 {
            // Idle→busy: stamp the stripe so the watchdog can age it.  The
            // store may race another pin on the same stripe; either stamp is
            // a valid lower bound on how long the stripe has been busy.
            self.stripes[stripe]
                .busy_since
                .store(now_ms(), std::sync::atomic::Ordering::Relaxed);
        }
        let guard = ChainPin {
            chain: self,
            stripe,
        };
        // After guard construction on purpose: if the fault unwinds, the
        // guard's drop undoes the fetch_add and the pin count stays exact.
        fail_point!("epoch_chain::pinned");
        guard
    }

    /// Age in milliseconds of the oldest currently-active pin stripe, or
    /// `None` when no pins are active.  Advisory: the answer is a snapshot
    /// racing live pin/unpin traffic and over-approximates per stripe (a
    /// stripe's age is measured from its idle→busy transition, which may
    /// predate the oldest pin still held on it).  The stuck-pin watchdog
    /// only uses it to decide *when to back off*, never to justify an
    /// unlink — safety always comes from the grace-period observation.
    pub fn oldest_pin_age_ms(&self) -> Option<u64> {
        let now = now_ms();
        self.stripes
            .iter()
            .filter(|s| s.active.load(Ordering::SeqCst) > 0)
            .map(|s| now.saturating_sub(s.busy_since.load(std::sync::atomic::Ordering::Relaxed)))
            .max()
    }

    /// Whether every pin stripe currently reads zero — the grace-period
    /// observation reclamation and retirement protocols are built on.  A
    /// `true` result means every operation that pinned *before* the last
    /// stripe load has completed; it says nothing about operations that
    /// start afterwards.
    pub fn no_active_pins(&self) -> bool {
        self.stripes
            .iter()
            .all(|s| s.active.load(Ordering::SeqCst) == 0)
    }

    /// Number of displaced snapshots currently awaiting their grace period.
    pub fn pending_garbage(&self) -> usize {
        self.garbage_len.load(Ordering::Relaxed)
    }

    /// Attempts to free the stacked displaced snapshots: pops the whole
    /// garbage batch, then frees it if (and only if) every pin stripe is
    /// observed at zero; otherwise the batch is pushed back for a later
    /// call.  Never blocks.  Returns how many snapshots were freed.
    pub fn try_collect_garbage(&self) -> usize {
        // Fast paths: nothing stacked, or readers visibly active.  These
        // are plain loads — they keep a doomed attempt from paying the
        // swap + push-back RMW pair on the shared garbage head (which would
        // ping-pong that cache line across threads for zero freed
        // snapshots).  Neither load is part of the safety argument; the
        // post-pop observation below remains the gate.
        // Pre-effect: an unwind here has popped nothing, so no snapshot is
        // ever stranded half-collected.
        fail_point!("epoch_chain::collect");
        if self.garbage.load(Ordering::SeqCst).is_null() || !self.no_active_pins() {
            return 0;
        }
        // Pop first, observe second: every node in the popped batch was
        // unlinked before the pop, so the all-zero observation below proves
        // no reader can still reach it (module docs, "memory argument").
        let batch = self.garbage.swap(ptr::null_mut(), Ordering::SeqCst);
        if batch.is_null() {
            return 0;
        }
        if !self.no_active_pins() {
            self.push_garbage_batch(batch);
            return 0;
        }
        let mut freed = 0;
        let mut cur = batch;
        while !cur.is_null() {
            // SAFETY: the swap above transferred exclusive ownership of the
            // whole batch to this call, and the all-zero observation proves
            // no reader holds references into the snapshots it carries.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
            drop(node);
            freed += 1;
        }
        self.garbage_len.fetch_sub(freed, Ordering::Relaxed);
        freed
    }

    /// Stacks a displaced snapshot root for deferred reclamation.
    fn defer_drop(&self, item: Arc<ChainNode<T>>) {
        let node = Box::into_raw(Box::new(GarbageNode {
            item,
            next: ptr::null_mut(),
        }));
        self.garbage_len.fetch_add(1, Ordering::Relaxed);
        self.push_garbage_batch(node);
    }

    /// Splices an owned garbage batch (a `next`-linked list) onto the stack.
    fn push_garbage_batch(&self, batch: *mut GarbageNode<T>) {
        debug_assert!(!batch.is_null());
        let mut tail = batch;
        // SAFETY: the batch is exclusively owned by this call until the CAS
        // below publishes it, so walking and mutating its links is unshared.
        unsafe {
            while !(*tail).next.is_null() {
                tail = (*tail).next;
            }
        }
        let mut head = self.garbage.load(Ordering::SeqCst);
        loop {
            // SAFETY: `tail` is still exclusively owned (the CAS has not
            // succeeded yet), so writing its link is unshared.
            unsafe { (*tail).next = head };
            match self
                .garbage
                .compare_exchange(head, batch, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(observed) => head = observed,
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for EpochChain<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pin = self.pin();
        f.debug_struct("EpochChain")
            .field("head", pin.head())
            .field("num_nodes", &pin.num_nodes())
            .field("pending_garbage", &self.pending_garbage())
            .finish()
    }
}

impl<T> Drop for EpochChain<T> {
    fn drop(&mut self) {
        // SAFETY: `&mut self` proves no pin guard is alive (guards borrow the
        // chain), so reclaiming the head's strong reference and the garbage
        // stack with plain ownership transfers is race-free.
        unsafe {
            drop(Arc::from_raw(self.head.load(Ordering::Relaxed)));
            let mut cur = self.garbage.load(Ordering::Relaxed);
            while !cur.is_null() {
                let node = Box::from_raw(cur);
                cur = node.next;
                drop(node);
            }
        }
    }
}

/// An active reader registration on an [`EpochChain`]: while this guard
/// lives, every node reachable from [`ChainPin::head`] stays allocated (the
/// grace-period observation cannot succeed).  Dropping the guard is one
/// striped `fetch_sub`.
pub struct ChainPin<'c, T> {
    chain: &'c EpochChain<T>,
    stripe: usize,
}

impl<'c, T> ChainPin<'c, T> {
    /// Loads the current newest node.  Each call re-reads the head, so a
    /// long-lived pin observes concurrent growth; references obtained
    /// through the pin stay valid for the pin's lifetime either way.
    pub fn head(&self) -> &ChainNode<T> {
        let ptr = self.chain.head.load(Ordering::SeqCst);
        // SAFETY: the head is never null, and any node reachable from it
        // cannot be freed while this pin is active — reclamation requires
        // observing every stripe (including ours) at zero after the node
        // was unlinked (module docs, "memory argument").
        unsafe { &*ptr }
    }

    /// Iterates the chain newest to oldest, starting from the current head.
    pub fn iter(&self) -> ChainNodeIter<'_, T> {
        self.head().iter()
    }

    /// The number of live nodes (the chain is never empty).
    pub fn num_nodes(&self) -> usize {
        self.head().depth()
    }

    /// CAS-publishes `value` as the new newest node, linked to `expected` —
    /// but only if `expected` is still the head.  Returns `true` on
    /// success; on `false` the candidate value is dropped and the caller
    /// should re-read the head (a concurrent update won; "losers discard
    /// their cell and route into the winner's").
    #[must_use = "a false return means the value was discarded; the caller must re-read the head"]
    pub fn try_push(&self, expected: &ChainNode<T>, value: T) -> bool {
        // Pre-CAS: an unwind here drops `value` before anything is
        // published, which is exactly the losing-CAS cleanup path.
        fail_point!("epoch_chain::push");
        let expected_ptr = (expected as *const ChainNode<T>).cast_mut();
        // Re-load the head rather than using the reference-derived pointer
        // for the `Arc` bookkeeping below: the atomic holds a pointer minted
        // by `Arc::into_raw`, whose provenance spans the whole Arc
        // allocation (refcount header included), while `expected_ptr` only
        // covers the node payload.  If the head already moved, the CAS would
        // fail anyway — report the race without building a candidate.
        let current = self.chain.head.load(Ordering::SeqCst);
        if current != expected_ptr {
            return false;
        }
        // SAFETY: `current` was just observed as the head, so the chain holds
        // a strong reference on it (a node is only released after it has been
        // unlinked *and* a grace period has passed, which our live pin
        // forbids); bumping its strong count materializes a legitimate clone
        // of the Arc the chain handed out, and `from_raw` pairs with that
        // bump.
        let next = unsafe {
            Arc::increment_strong_count(current.cast_const());
            Arc::from_raw(current.cast_const())
        };
        let node = Arc::new(ChainNode {
            value,
            next: Some(next),
        });
        let new_ptr = Arc::into_raw(node).cast_mut();
        match self
            .chain
            .head
            .compare_exchange(current, new_ptr, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(displaced) => {
                // SAFETY: the CAS transferred the head's strong reference on
                // `displaced` to us.  The new head's `next` link holds its
                // own reference to the same node, so dropping this one here
                // cannot free it — the node stays reachable (and alive)
                // through the chain.
                drop(unsafe { Arc::from_raw(displaced.cast_const()) });
                true
            }
            Err(_) => {
                // SAFETY: `new_ptr` came from `Arc::into_raw` above and was
                // never published, so reclaiming it is an unshared move.
                drop(unsafe { Arc::from_raw(new_ptr.cast_const()) });
                false
            }
        }
    }

    /// CAS-publishes a copy of the chain without the nodes whose value
    /// fails `keep`, sharing the suffix below the deepest removed node.
    /// Returns the number of nodes removed (`Ok(0)` publishes nothing), or
    /// [`ChainRace`] if the head moved first — re-read and retry.
    ///
    /// The removed nodes' snapshot goes onto the garbage stack and is freed
    /// after a grace period ([`EpochChain::try_collect_garbage`]).
    ///
    /// # Panics
    ///
    /// Panics if `keep` rejects the newest node: the chain is never empty,
    /// and the elastic protocol never retires the serving epoch.
    pub fn try_remove<F>(&self, keep: F) -> Result<usize, ChainRace>
    where
        T: Clone,
        F: Fn(&T) -> bool,
    {
        let head = self.head();
        let nodes: Vec<&ChainNode<T>> = head.iter().collect();
        let kept: Vec<bool> = nodes.iter().map(|n| keep(n.value())).collect();
        assert!(kept[0], "the newest node of the chain cannot be removed");
        let Some(deepest_removed) = kept.iter().rposition(|&k| !k) else {
            return Ok(0);
        };
        let removed = kept.iter().filter(|&&k| !k).count();
        // Rebuild the prefix above the deepest removed node; everything
        // below it is shared with the old snapshot through its Arc link.
        let mut rebuilt: Option<Arc<ChainNode<T>>> = nodes[deepest_removed].next.clone();
        for idx in (0..deepest_removed).rev() {
            if kept[idx] {
                rebuilt = Some(Arc::new(ChainNode {
                    value: nodes[idx].value().clone(),
                    next: rebuilt,
                }));
            }
        }
        let new_head = rebuilt.expect("the kept newest node always yields a non-empty chain");
        let expected_ptr = (head as *const ChainNode<T>).cast_mut();
        let new_ptr = Arc::into_raw(new_head).cast_mut();
        match self.chain.head.compare_exchange(
            expected_ptr,
            new_ptr,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(displaced) => {
                // SAFETY: the CAS transferred the head's strong reference on
                // `displaced` to us.  Unlike a push, the new chain does not
                // link to the displaced prefix, so the reference is retired
                // through the grace-period garbage stack instead of dropped.
                let displaced = unsafe { Arc::from_raw(displaced.cast_const()) };
                self.chain.defer_drop(displaced);
                Ok(removed)
            }
            Err(_) => {
                // SAFETY: `new_ptr` came from `Arc::into_raw` above and was
                // never published, so reclaiming it is an unshared move.
                drop(unsafe { Arc::from_raw(new_ptr.cast_const()) });
                Err(ChainRace)
            }
        }
    }
}

impl<'c, T: fmt::Debug> fmt::Debug for ChainPin<'c, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainPin")
            .field("stripe", &self.stripe)
            .field("num_nodes", &self.num_nodes())
            .finish()
    }
}

impl<'c, T> Drop for ChainPin<'c, T> {
    fn drop(&mut self) {
        self.chain.stripes[self.stripe]
            .active
            .fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn single_node_chain() {
        let chain = EpochChain::new(7usize);
        let pin = chain.pin();
        assert_eq!(*pin.head().value(), 7);
        assert_eq!(pin.num_nodes(), 1);
        assert!(pin.head().next().is_none());
        assert_eq!(pin.head().depth(), 1);
    }

    #[test]
    fn push_prepends_and_preserves_the_tail() {
        let chain = EpochChain::new(0usize);
        let pin = chain.pin();
        for v in 1..=3 {
            let head = pin.head();
            assert!(pin.try_push(head, v));
        }
        let values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
        assert_eq!(values, vec![3, 2, 1, 0]);
        // Pushes link into the live chain: nothing awaits reclamation.
        assert_eq!(chain.pending_garbage(), 0);
    }

    #[test]
    fn stale_push_loses() {
        let chain = EpochChain::new(0usize);
        let pin = chain.pin();
        let stale = pin.head();
        assert!(pin.try_push(stale, 1));
        // `stale` is no longer the head: the CAS must reject the publish.
        assert!(!pin.try_push(stale, 99));
        let values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
        assert_eq!(values, vec![1, 0]);
    }

    #[test]
    fn remove_middle_shares_the_suffix() {
        let chain = EpochChain::new(0usize);
        let pin = chain.pin();
        for v in 1..=3 {
            let head = pin.head();
            assert!(pin.try_push(head, v));
        }
        // Remove 2 and 1; keep 3 (head) and 0 (suffix).
        assert_eq!(pin.try_remove(|v| *v == 3 || *v == 0), Ok(2));
        let values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
        assert_eq!(values, vec![3, 0]);
        assert_eq!(chain.pending_garbage(), 1);
    }

    #[test]
    fn remove_nothing_publishes_nothing() {
        let chain = EpochChain::new(0usize);
        let pin = chain.pin();
        let before: *const ChainNode<usize> = pin.head();
        assert_eq!(pin.try_remove(|_| true), Ok(0));
        assert!(
            ptr::eq(before, pin.head()),
            "no-op removal must not republish"
        );
        assert_eq!(chain.pending_garbage(), 0);
    }

    #[test]
    #[should_panic(expected = "newest node of the chain cannot be removed")]
    fn removing_the_head_panics() {
        let chain = EpochChain::new(0usize);
        let pin = chain.pin();
        let _ = pin.try_remove(|_| false);
    }

    #[test]
    fn garbage_is_held_while_pinned_and_freed_after() {
        let chain = EpochChain::new(0usize);
        {
            let pin = chain.pin();
            let head = pin.head();
            assert!(pin.try_push(head, 1));
            assert_eq!(pin.try_remove(|v| *v != 0), Ok(1));
            assert_eq!(chain.pending_garbage(), 1);
            // Our own pin blocks the grace observation.
            assert!(!chain.no_active_pins());
            assert_eq!(chain.try_collect_garbage(), 0);
            assert_eq!(chain.pending_garbage(), 1, "pushed back, not freed");
        }
        assert!(chain.no_active_pins());
        assert_eq!(chain.try_collect_garbage(), 1);
        assert_eq!(chain.pending_garbage(), 0);
    }

    #[test]
    fn drop_reclaims_unfreed_garbage() {
        // Values that flag their own drop so leaks are observable.
        struct Flagged(Arc<AtomicBool>);
        impl Drop for Flagged {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        impl Clone for Flagged {
            fn clone(&self) -> Self {
                Flagged(Arc::clone(&self.0))
            }
        }
        let dropped_old = Arc::new(AtomicBool::new(false));
        let dropped_new = Arc::new(AtomicBool::new(false));
        let chain = EpochChain::new(Flagged(Arc::clone(&dropped_old)));
        {
            let pin = chain.pin();
            let head = pin.head();
            assert!(pin.try_push(head, Flagged(Arc::clone(&dropped_new))));
            // Remove the old node but never collect: Drop must reclaim it.
            assert_eq!(pin.try_remove(|v| !Arc::ptr_eq(&v.0, &dropped_old)), Ok(1));
        }
        assert!(!dropped_old.load(Ordering::SeqCst));
        drop(chain);
        assert!(dropped_old.load(Ordering::SeqCst));
        assert!(dropped_new.load(Ordering::SeqCst));
    }

    #[test]
    fn concurrent_pushers_have_one_winner_per_round() {
        let chain = Arc::new(EpochChain::new(0usize));
        // Miri executes ~3 orders of magnitude slower; shrink the contention
        // storm while keeping at least one genuine CAS race per run.
        let threads = if cfg!(miri) { 3 } else { 8 };
        std::thread::scope(|scope| {
            for t in 1..=threads {
                let chain = Arc::clone(&chain);
                scope.spawn(move || {
                    // Every thread publishes exactly one value, retrying the
                    // CAS against whatever head it observes.
                    loop {
                        let pin = chain.pin();
                        let head = pin.head();
                        if pin.try_push(head, t * 1000) {
                            return;
                        }
                    }
                });
            }
        });
        let pin = chain.pin();
        assert_eq!(pin.num_nodes(), threads + 1);
        let mut values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
        values.sort_unstable();
        let mut expected: Vec<usize> = (1..=threads).map(|t| t * 1000).collect();
        expected.push(0);
        expected.sort_unstable();
        assert_eq!(values, expected, "every publisher must appear exactly once");
    }

    #[test]
    fn concurrent_readers_survive_removal_storms() {
        let chain = Arc::new(EpochChain::new(0usize));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let chain = Arc::clone(&chain);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let pin = chain.pin();
                        // Traverse the whole snapshot: every node must stay
                        // dereferenceable for the pin's lifetime.
                        let sum: usize = pin.iter().map(|n| *n.value()).sum();
                        let _ = std::hint::black_box(sum);
                    }
                });
            }
            let writer = {
                let chain = Arc::clone(&chain);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    let rounds = if cfg!(miri) { 20usize } else { 200usize };
                    for round in 1..=rounds {
                        loop {
                            let pin = chain.pin();
                            let head = pin.head();
                            if pin.try_push(head, round) {
                                break;
                            }
                        }
                        // Trim everything but the newest node and the root.
                        loop {
                            let pin = chain.pin();
                            let newest = *pin.head().value();
                            match pin.try_remove(|v| *v == newest || *v == 0) {
                                Ok(_) => break,
                                Err(ChainRace) => continue,
                            }
                        }
                        chain.try_collect_garbage();
                    }
                    stop.store(true, Ordering::Relaxed);
                })
            };
            writer.join().unwrap();
        });
        // Quiescent now: all garbage must be collectable.
        while chain.pending_garbage() > 0 {
            assert!(chain.no_active_pins());
            chain.try_collect_garbage();
        }
        let pin = chain.pin();
        assert_eq!(pin.num_nodes(), 2);
        assert_eq!(*pin.head().value(), if cfg!(miri) { 20 } else { 200 });
    }

    #[test]
    #[should_panic(expected = "at least one stripe")]
    fn zero_stripes_panics() {
        let _ = EpochChain::with_stripes(0usize, 0);
    }

    #[test]
    fn race_error_displays() {
        assert!(ChainRace.to_string().contains("head moved"));
        let _ = format!("{:?}", EpochChain::new(1usize));
    }
}
