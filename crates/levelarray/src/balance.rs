//! The paper's balance definitions (§5, Definition 2) as executable predicates.
//!
//! *Overcrowded*: batch `j ≥ 1` is overcrowded when at least `n / 2^(2^j + 1)`
//! of its slots are held (the paper writes this as `16·n_j`).  Batch 0 is never
//! overcrowded (its threshold, `16·n`, exceeds the number of processes).
//!
//! *Balanced up to `j`*: none of the batches `0..=j` are overcrowded.
//!
//! *Fully balanced*: balanced up to batch `log log n − 1`, i.e. over all the
//! batches the analysis tracks; later batches hold so few processes that they
//! are irrelevant to the argument.
//!
//! These predicates are what the simulation crate evaluates after every step
//! of an adversarial schedule to validate Theorem 1 (arrays stay balanced over
//! polynomial executions) and Theorem 2 (self-healing), and what the healing
//! benchmark uses to decide when the array has recovered.

use crate::occupancy::OccupancySnapshot;

/// The number of batch indices the balance analysis tracks for contention
/// bound `n`: `⌊log₂ log₂ n⌋ + 1` (at least 1), i.e. batches
/// `0 ..= ⌊log log n⌋`.
///
/// # Examples
///
/// ```
/// use levelarray::balance::tracked_batches;
/// assert_eq!(tracked_batches(2), 1);
/// assert_eq!(tracked_batches(16), 3);   // log2 log2 16 = 2
/// assert_eq!(tracked_batches(80), 3);
/// assert_eq!(tracked_batches(1 << 16), 5);
/// ```
pub fn tracked_batches(n: usize) -> usize {
    let log_n = usize::BITS - n.max(2).leading_zeros() - 1; // floor(log2 n)
    let log_log_n = usize::BITS - (log_n as usize).max(1).leading_zeros() - 1;
    log_log_n as usize + 1
}

/// The overcrowding threshold of batch `j` for contention bound `n`:
/// `Some(n / 2^(2^j + 1))` for tracked batches `j ≥ 1`, `None` for batch 0
/// (never overcrowded) and for batches beyond the tracked range (the analysis
/// makes no claim about them).
///
/// # Examples
///
/// ```
/// use levelarray::balance::overcrowding_threshold;
/// // n = 1024: batch 1 threshold = 1024 / 2^3 = 128, batch 2 = 1024 / 2^5 = 32.
/// assert_eq!(overcrowding_threshold(1024, 0), None);
/// assert_eq!(overcrowding_threshold(1024, 1), Some(128));
/// assert_eq!(overcrowding_threshold(1024, 2), Some(32));
/// ```
pub fn overcrowding_threshold(n: usize, batch: usize) -> Option<usize> {
    if batch == 0 || batch >= tracked_batches(n) {
        return None;
    }
    let exponent = (1usize << batch) + 1; // 2^j + 1
    if exponent >= usize::BITS as usize {
        return None;
    }
    Some(n >> exponent)
}

/// Returns `true` if batch `j` with `occupied` held slots is overcrowded for
/// contention bound `n` (always `false` for batch 0 and untracked batches).
pub fn is_overcrowded(n: usize, batch: usize, occupied: usize) -> bool {
    match overcrowding_threshold(n, batch) {
        Some(threshold) => occupied >= threshold.max(1),
        None => false,
    }
}

/// A per-batch balance verdict derived from an occupancy snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BalanceReport {
    n: usize,
    /// `(occupied, threshold, overcrowded)` per batch present in the snapshot.
    batches: Vec<BatchBalance>,
}

/// The balance verdict for a single batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchBalance {
    /// Batch index.
    pub batch: usize,
    /// Held slots observed in the batch.
    pub occupied: usize,
    /// Overcrowding threshold, if the analysis tracks this batch.
    pub threshold: Option<usize>,
    /// Whether the batch is overcrowded.
    pub overcrowded: bool,
}

impl BalanceReport {
    /// Evaluates the balance definitions against a snapshot, for contention
    /// bound `n`.
    ///
    /// Per-shard censuses (from a sharded array's `occupancy()`) aggregate:
    /// batch `j`'s occupancy is summed across shards before the predicates
    /// are evaluated.  Note that the report only covers the batch indices
    /// *present in the snapshot*: a sharded array's per-shard geometry is
    /// built for `⌈n/S⌉`, so at high shard counts it has fewer batches than
    /// a plain array for the same `n`, and the deeper tracked batches simply
    /// do not exist (their would-be occupants live in the shards' backup
    /// regions, which Definition 2 never judges).
    pub fn from_snapshot(snapshot: &OccupancySnapshot, n: usize) -> Self {
        let batches = (0..snapshot.num_batches())
            .map(|j| {
                let occupied = snapshot.batch_occupied(j);
                BatchBalance {
                    batch: j,
                    occupied,
                    threshold: overcrowding_threshold(n, j),
                    overcrowded: is_overcrowded(n, j, occupied),
                }
            })
            .collect();
        BalanceReport { n, batches }
    }

    /// The contention bound the report was evaluated against.
    pub fn contention_bound(&self) -> usize {
        self.n
    }

    /// Per-batch verdicts.
    pub fn batches(&self) -> &[BatchBalance] {
        &self.batches
    }

    /// Indices of overcrowded batches.
    pub fn overcrowded_batches(&self) -> Vec<usize> {
        self.batches
            .iter()
            .filter(|b| b.overcrowded)
            .map(|b| b.batch)
            .collect()
    }

    /// Definition 2: no batch in `0..=j` is overcrowded.
    pub fn is_balanced_up_to(&self, j: usize) -> bool {
        self.batches
            .iter()
            .take_while(|b| b.batch <= j)
            .all(|b| !b.overcrowded)
    }

    /// Definition 2: balanced over the whole tracked range.
    pub fn is_fully_balanced(&self) -> bool {
        self.batches.iter().all(|b| !b.overcrowded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::{Region, RegionOccupancy};

    fn snapshot(per_batch: &[(usize, usize)]) -> OccupancySnapshot {
        OccupancySnapshot::new(
            per_batch
                .iter()
                .enumerate()
                .map(|(i, &(cap, occ))| RegionOccupancy::new(Region::Batch(i), cap, occ))
                .collect(),
        )
    }

    #[test]
    fn tracked_batches_examples() {
        assert_eq!(tracked_batches(2), 1);
        assert_eq!(tracked_batches(4), 2);
        assert_eq!(tracked_batches(16), 3);
        assert_eq!(tracked_batches(256), 4);
        assert_eq!(tracked_batches(65536), 5);
        // Degenerate inputs are clamped rather than panicking.
        assert_eq!(tracked_batches(0), 1);
        assert_eq!(tracked_batches(1), 1);
    }

    #[test]
    fn thresholds_follow_the_definition() {
        let n = 1 << 20;
        assert_eq!(overcrowding_threshold(n, 0), None);
        assert_eq!(overcrowding_threshold(n, 1), Some(n >> 3));
        assert_eq!(overcrowding_threshold(n, 2), Some(n >> 5));
        assert_eq!(overcrowding_threshold(n, 3), Some(n >> 9));
        assert_eq!(overcrowding_threshold(n, 4), Some(n >> 17));
        // Batches beyond the tracked range are not judged.
        assert_eq!(overcrowding_threshold(n, tracked_batches(n)), None);
        assert_eq!(overcrowding_threshold(n, 60), None);
    }

    #[test]
    fn batch_zero_is_never_overcrowded() {
        assert!(!is_overcrowded(1024, 0, 1024));
        assert!(!is_overcrowded(4, 0, 4));
    }

    #[test]
    fn overcrowding_is_at_least_threshold() {
        let n = 1024;
        let t = overcrowding_threshold(n, 1).unwrap();
        assert!(!is_overcrowded(n, 1, t - 1));
        assert!(is_overcrowded(n, 1, t));
        assert!(is_overcrowded(n, 1, t + 5));
    }

    #[test]
    fn small_n_thresholds_clamp_to_one() {
        // n = 8: batch 1 threshold would be 8/8 = 1; batch 2 is untracked
        // (tracked_batches(8) = 2).
        assert_eq!(overcrowding_threshold(8, 1), Some(1));
        assert!(is_overcrowded(8, 1, 1));
        assert!(!is_overcrowded(8, 1, 0));
        assert_eq!(overcrowding_threshold(8, 2), None);
    }

    #[test]
    fn report_flags_the_right_batches() {
        // n = 1024, batch sizes roughly the paper's; batch 1 holds 200 >= 128
        // (overcrowded), batch 2 holds 10 < 32 (fine).
        let snap = snapshot(&[(1536, 700), (256, 200), (128, 10), (64, 0)]);
        let report = BalanceReport::from_snapshot(&snap, 1024);
        assert_eq!(report.contention_bound(), 1024);
        assert_eq!(report.overcrowded_batches(), vec![1]);
        assert!(report.is_balanced_up_to(0));
        assert!(!report.is_balanced_up_to(1));
        assert!(!report.is_fully_balanced());
        assert_eq!(report.batches()[1].threshold, Some(128));
    }

    #[test]
    fn balanced_array_is_fully_balanced() {
        let snap = snapshot(&[(1536, 900), (256, 50), (128, 3), (64, 0)]);
        let report = BalanceReport::from_snapshot(&snap, 1024);
        assert!(report.is_fully_balanced());
        assert!(report.is_balanced_up_to(100));
        assert!(report.overcrowded_batches().is_empty());
    }

    #[test]
    fn report_handles_missing_batches_gracefully() {
        let snap = OccupancySnapshot::new(vec![]);
        let report = BalanceReport::from_snapshot(&snap, 64);
        assert!(report.is_fully_balanced());
        assert!(report.batches().is_empty());
    }
}
