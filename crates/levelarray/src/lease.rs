//! [`LeaseRegistry`]: heartbeat leases and orphaned-name recovery.
//!
//! A [`crate::ThreadRegistry`] hands out names and trusts every holder to
//! eventually call `release`.  A client that crashes (or is killed, or wedges
//! forever) between `register` and `release` leaks its name, and under the
//! bounded-concurrency contract of the paper a few such leaks are enough to
//! exhaust the array.  The lease registry closes that hole *optionally*: each
//! registration becomes a [`Lease`] that the holder must renew by
//! [`LeaseRegistry::heartbeat`] at least once per `lease_ms` interval, and a
//! maintenance thread (or any caller) periodically runs
//! [`LeaseRegistry::sweep`] to recover names whose holders went silent.
//!
//! # The two-phase sweep
//!
//! Reclaiming on the *first* missed beat would race a client that is merely
//! slow.  The sweep therefore quarantines first and reclaims later:
//!
//! 1. **Quarantine** — a lease whose last beat is older than `lease_ms` is
//!    marked quarantined (with the generation it had at that moment).  The
//!    name is still owned by the client; nothing observable changes.
//! 2. **Reclaim** — on a *later* sweep, a lease that is still quarantined,
//!    still stale, and still on the same generation is declared orphaned: the
//!    name is freed back into the array and the lease is removed.  Any
//!    heartbeat in between clears the quarantine mark (and any
//!    release/re-register bumps the generation), so phase 2 validates that
//!    the world has not moved since phase 1 before it touches the slot —
//!    the lease generation plays the role of an epoch stamp.
//!
//! A late heartbeat *after* reclamation returns `false`: the client's name is
//! gone and it must re-register.  This is the standard lease contract — the
//! protocol is safe as long as a client that cannot beat also stops using its
//! name (e.g. it crashed), and `lease_ms` is chosen comfortably above the
//! worst-case beat jitter.
//!
//! Leasing is **off by default**: [`crate::LevelArrayConfig::lease_ms`] is
//! `None` unless set, and plain [`crate::ThreadRegistry`] use is completely
//! unaffected.  See `docs/ROBUSTNESS.md` for the full policy discussion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use la_fault::fail_point;

use crate::array::ActivityArray;
use crate::elastic::ElasticLevelArray;
use crate::name::Name;
use crate::registry::ThreadRegistry;
use crate::robust::RobustnessReport;

/// The clock the lease machinery reads.  Injectable so tests can drive
/// expiry deterministically instead of sleeping.
pub trait LeaseClock: Send + Sync + std::fmt::Debug {
    /// Milliseconds since an arbitrary fixed origin; must be monotonic.
    fn now_ms(&self) -> u64;
}

/// The default clock: monotonic process time.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl LeaseClock for SystemClock {
    fn now_ms(&self) -> u64 {
        crate::epoch_chain::now_ms()
    }
}

/// A hand-settable clock for deterministic tests.
#[derive(Debug, Default)]
pub struct ManualClock {
    ms: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance(&self, ms: u64) {
        self.ms.fetch_add(ms, Ordering::SeqCst);
    }
}

impl LeaseClock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.ms.load(Ordering::SeqCst)
    }
}

/// Proof of a leased registration: the name plus the generation stamp that
/// makes stale handles detectable.
///
/// Deliberately `Copy`-free and non-forgeable-by-accident: a `Lease` is the
/// token the holder presents to [`LeaseRegistry::heartbeat`] and
/// [`LeaseRegistry::release`].  Dropping it without releasing is exactly the
/// crash the sweep recovers from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    name: Name,
    generation: u64,
}

impl Lease {
    /// The leased name, usable wherever a plain registration's name is.
    pub fn name(&self) -> Name {
        self.name
    }
}

#[derive(Debug)]
struct LeaseEntry {
    /// Bumped on every grant of this name; a heartbeat or release whose
    /// lease carries an older generation is rejected.
    generation: u64,
    /// Clock reading of the most recent grant or heartbeat.
    last_beat_ms: u64,
    /// `Some(t)` once phase 1 of the sweep marked the lease stale at `t`.
    quarantined_since: Option<u64>,
}

#[derive(Debug, Default)]
struct LeaseState {
    entries: HashMap<Name, LeaseEntry>,
    next_generation: u64,
}

/// What one [`LeaseRegistry::sweep`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Leases newly quarantined by this pass (phase 1).
    pub newly_quarantined: usize,
    /// Orphaned names freed back into the array by this pass (phase 2).
    pub reclaimed: usize,
}

/// A [`ThreadRegistry`] with heartbeat leases and orphan recovery on top.
///
/// # Examples
///
/// ```
/// use levelarray::lease::{LeaseRegistry, ManualClock};
/// use levelarray::{LevelArray, ThreadRegistry};
/// use std::sync::Arc;
///
/// let clock = Arc::new(ManualClock::new());
/// let registry = LeaseRegistry::with_clock(
///     ThreadRegistry::new(LevelArray::new(8), 42),
///     100,
///     Arc::clone(&clock) as Arc<dyn levelarray::lease::LeaseClock>,
/// );
///
/// let lease = registry.register();
/// assert!(registry.heartbeat(&lease));
///
/// // The holder "crashes": no more heartbeats.  Two sweeps a lease apart
/// // quarantine and then reclaim the name.
/// clock.advance(150);
/// registry.sweep();
/// clock.advance(150);
/// let outcome = registry.sweep();
/// assert_eq!(outcome.reclaimed, 1);
/// assert!(registry.collect().is_empty());
/// assert!(!registry.heartbeat(&lease)); // late beat: name is gone
/// ```
#[derive(Debug)]
pub struct LeaseRegistry<A: ActivityArray = crate::LevelArray> {
    registry: ThreadRegistry<A>,
    lease_ms: u64,
    clock: std::sync::Arc<dyn LeaseClock>,
    state: Mutex<LeaseState>,
    orphaned_reclaimed: AtomicU64,
}

impl<A: ActivityArray> LeaseRegistry<A> {
    /// Wraps `registry` with a `lease_ms`-millisecond lease using the
    /// monotonic [`SystemClock`].
    ///
    /// # Panics
    ///
    /// Panics if `lease_ms == 0`; a zero lease means "leasing disabled"
    /// (see [`crate::LevelArrayConfig::lease_ms`]) and callers should use
    /// the plain [`ThreadRegistry`] instead.
    pub fn new(registry: ThreadRegistry<A>, lease_ms: u64) -> Self {
        Self::with_clock(registry, lease_ms, std::sync::Arc::new(SystemClock))
    }

    /// Like [`LeaseRegistry::new`] with an injected clock (tests use
    /// [`ManualClock`] to drive expiry deterministically).
    ///
    /// # Panics
    ///
    /// Panics if `lease_ms == 0`.
    pub fn with_clock(
        registry: ThreadRegistry<A>,
        lease_ms: u64,
        clock: std::sync::Arc<dyn LeaseClock>,
    ) -> Self {
        assert!(lease_ms > 0, "lease_ms must be positive (0 means disabled)");
        LeaseRegistry {
            registry,
            lease_ms,
            clock,
            state: Mutex::new(LeaseState::default()),
            orphaned_reclaimed: AtomicU64::new(0),
        }
    }

    /// The wrapped registry (and through it the underlying array).
    pub fn registry(&self) -> &ThreadRegistry<A> {
        &self.registry
    }

    /// The lease interval in milliseconds.
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// Registers the caller and grants a fresh lease on the name.
    ///
    /// # Panics
    ///
    /// Panics if the underlying array is exhausted (see
    /// [`ThreadRegistry::register`]).  Exhaustion under leasing usually
    /// means the sweep is not being run often enough to keep up with
    /// crashed holders.
    pub fn register(&self) -> Lease {
        let name = self.registry.register_leaked();
        // The lease entry goes in *before* the fault site: a panic past
        // this point models a client that died right after registering,
        // and the sweep reclaims it — no explicit rollback needed.
        let lease = {
            let mut state = self.lock_state();
            state.next_generation += 1;
            let generation = state.next_generation;
            state.entries.insert(
                name,
                LeaseEntry {
                    generation,
                    last_beat_ms: self.clock.now_ms(),
                    quarantined_since: None,
                },
            );
            Lease { name, generation }
        };
        fail_point!("lease::register");
        lease
    }

    /// Renews `lease`.  Returns `false` if the lease is no longer valid —
    /// the name was reclaimed by the sweep (or released) — in which case
    /// the holder must stop using the name and re-register.
    pub fn heartbeat(&self, lease: &Lease) -> bool {
        let mut state = self.lock_state();
        match state.entries.get_mut(&lease.name) {
            Some(entry) if entry.generation == lease.generation => {
                entry.last_beat_ms = self.clock.now_ms();
                entry.quarantined_since = None;
                true
            }
            _ => false,
        }
    }

    /// Releases `lease`, freeing the name.  Returns `false` (and frees
    /// nothing) if the lease was already reclaimed — the sweep got there
    /// first and the name now belongs to someone else.
    pub fn release(&self, lease: Lease) -> bool {
        // Removing the entry under the lock is what excludes the sweep:
        // whichever side removes it is the one that frees the name.
        let entry = {
            let mut state = self.lock_state();
            match state.entries.get(&lease.name) {
                Some(entry) if entry.generation == lease.generation => {
                    state.entries.remove(&lease.name).expect("entry just seen")
                }
                _ => return false,
            }
        };
        // The array's `free` is all-or-nothing (its fault sites are strictly
        // pre-effect): if it unwinds, the name is still held, so put the
        // lease back for the sweep to reclaim instead of leaking the name
        // outside the table forever.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.registry.release(lease.name)
        })) {
            Ok(()) => true,
            Err(payload) => {
                let _quiet = la_fault::suppress();
                self.lock_state().entries.insert(lease.name, entry);
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Runs one two-phase recovery pass (see the module docs): stale leases
    /// are quarantined, and leases that stayed quarantined and stale for a
    /// further full pass are reclaimed.  Cheap when everyone is beating;
    /// call it periodically from a maintenance thread.
    pub fn sweep(&self) -> SweepOutcome {
        fail_point!("lease::sweep", SweepOutcome::default());
        let now = self.clock.now_ms();
        let mut outcome = SweepOutcome::default();
        let mut reclaim: Vec<(Name, LeaseEntry)> = Vec::new();
        {
            let mut state = self.lock_state();
            let mut ripe: Vec<Name> = Vec::new();
            for (name, entry) in state.entries.iter_mut() {
                let stale = now.saturating_sub(entry.last_beat_ms) >= self.lease_ms;
                match entry.quarantined_since {
                    None if stale => {
                        // Phase 1: mark, touch nothing observable.
                        entry.quarantined_since = Some(now);
                        outcome.newly_quarantined += 1;
                    }
                    Some(since) if stale && now.saturating_sub(since) >= self.lease_ms => {
                        // Phase 2: still quarantined, still silent a full
                        // lease later, same generation (a heartbeat would
                        // have cleared the mark) — the holder is gone.
                        ripe.push(*name);
                    }
                    _ => {}
                }
            }
            for name in ripe {
                let entry = state.entries.remove(&name).expect("ripe entry present");
                reclaim.push((name, entry));
            }
        }
        // Free outside the lease lock: the array's free path has its own
        // synchronization (and its own fault sites), and holding the lease
        // lock across it would serialize sweeps against registrations.  An
        // injected unwind out of `free` left the name held (free is
        // all-or-nothing), so the entry goes back for the next sweep.
        for (name, entry) in reclaim {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.registry.release(name)
            })) {
                Ok(()) => outcome.reclaimed += 1,
                Err(payload) if la_fault::is_injected(payload.as_ref()) => {
                    let _quiet = la_fault::suppress();
                    self.lock_state().entries.insert(name, entry);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        self.orphaned_reclaimed
            .fetch_add(outcome.reclaimed as u64, Ordering::Relaxed);
        outcome
    }

    /// Scans the registered set (leased and sweep-pending names included),
    /// see [`ActivityArray::collect`].
    pub fn collect(&self) -> Vec<Name> {
        self.registry.collect()
    }

    /// The lease layer's view of the [`RobustnessReport`]: orphans reclaimed
    /// so far and the current quarantine size.  Pin/watchdog fields are
    /// zero — merge with the array's own report for those (elastic arrays
    /// get that merge for free via
    /// [`LeaseRegistry::robustness_report`](Self::robustness_report)).
    pub fn lease_report(&self) -> RobustnessReport {
        let quarantined = {
            let state = self.lock_state();
            state
                .entries
                .values()
                .filter(|e| e.quarantined_since.is_some())
                .count()
        };
        RobustnessReport {
            orphaned_reclaimed: self.orphaned_reclaimed.load(Ordering::Relaxed),
            quarantined,
            ..RobustnessReport::default()
        }
    }

    /// The lease table lock, tolerant of poisoning: a panic while holding
    /// it (fault injection included) leaves plain data in a consistent
    /// state, so later callers proceed rather than cascade the panic.
    fn lock_state(&self) -> MutexGuard<'_, LeaseState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl LeaseRegistry<ElasticLevelArray> {
    /// The combined [`RobustnessReport`]: this registry's orphan/quarantine
    /// view merged with the elastic array's stuck-pin watchdog view.
    pub fn robustness_report(&self) -> RobustnessReport {
        self.lease_report()
            .merge(self.registry.array().robustness_report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelArray;
    use std::sync::Arc;

    fn leased(capacity: usize, lease_ms: u64) -> (LeaseRegistry<LevelArray>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let registry = LeaseRegistry::with_clock(
            ThreadRegistry::new(LevelArray::new(capacity), 7),
            lease_ms,
            Arc::clone(&clock) as Arc<dyn LeaseClock>,
        );
        (registry, clock)
    }

    #[test]
    fn beating_holder_is_never_reclaimed() {
        let (registry, clock) = leased(4, 100);
        let lease = registry.register();
        for _ in 0..10 {
            clock.advance(60);
            assert!(registry.heartbeat(&lease));
            let outcome = registry.sweep();
            assert_eq!(outcome, SweepOutcome::default());
        }
        assert!(registry.release(lease));
        assert!(registry.collect().is_empty());
    }

    #[test]
    fn silent_holder_is_quarantined_then_reclaimed() {
        let (registry, clock) = leased(4, 100);
        let lease = registry.register();
        clock.advance(150);
        let first = registry.sweep();
        assert_eq!(first.newly_quarantined, 1);
        assert_eq!(first.reclaimed, 0);
        assert_eq!(registry.lease_report().quarantined, 1);
        // Quarantine alone changes nothing observable.
        assert_eq!(registry.collect(), vec![lease.name()]);

        clock.advance(150);
        let second = registry.sweep();
        assert_eq!(second.reclaimed, 1);
        assert!(registry.collect().is_empty());
        let report = registry.lease_report();
        assert_eq!(report.orphaned_reclaimed, 1);
        assert_eq!(report.quarantined, 0);
    }

    #[test]
    fn late_heartbeat_rescues_a_quarantined_lease() {
        let (registry, clock) = leased(4, 100);
        let lease = registry.register();
        clock.advance(150);
        assert_eq!(registry.sweep().newly_quarantined, 1);
        // The holder was merely slow: one beat un-quarantines.
        assert!(registry.heartbeat(&lease));
        clock.advance(150);
        // Stale again, but the earlier quarantine was cleared, so this pass
        // only re-quarantines — it must not reclaim.
        let outcome = registry.sweep();
        assert_eq!(outcome.newly_quarantined, 1);
        assert_eq!(outcome.reclaimed, 0);
        assert!(registry.release(lease));
    }

    #[test]
    fn reclaimed_lease_rejects_heartbeat_and_release() {
        let (registry, clock) = leased(4, 50);
        let lease = registry.register();
        clock.advance(60);
        registry.sweep();
        clock.advance(60);
        assert_eq!(registry.sweep().reclaimed, 1);
        assert!(!registry.heartbeat(&lease));
        // A release of the dead lease is a no-op, not a double free —
        // the name may already be held by a new registrant.
        let newcomer = registry.register();
        assert!(!registry.release(lease));
        assert_eq!(registry.collect(), vec![newcomer.name()]);
        assert!(registry.release(newcomer));
    }

    #[test]
    fn generation_stamps_disambiguate_reused_names() {
        let (registry, clock) = leased(1, 50);
        // Capacity 2 slots for bound 1; drain until the same physical name
        // comes back with a higher generation.
        let old = registry.register();
        clock.advance(60);
        registry.sweep();
        clock.advance(60);
        registry.sweep();
        let fresh = loop {
            let candidate = registry.register();
            if candidate.name() == old.name() {
                break candidate;
            }
            assert!(registry.release(candidate));
        };
        assert!(fresh.generation > old.generation);
        assert!(!registry.heartbeat(&old));
        assert!(registry.heartbeat(&fresh));
        assert!(registry.release(fresh));
    }

    #[test]
    fn elastic_report_merges_both_layers() {
        let array = crate::LevelArrayConfig::new(8)
            .build_elastic()
            .expect("elastic");
        let clock = Arc::new(ManualClock::new());
        let registry = LeaseRegistry::with_clock(
            ThreadRegistry::new(array, 9),
            100,
            clock.clone() as Arc<dyn LeaseClock>,
        );
        let _lease = registry.register();
        clock.advance(150);
        registry.sweep();
        let report = registry.robustness_report();
        assert_eq!(report.quarantined, 1);
        assert_eq!(report.orphaned_reclaimed, 0);
    }

    #[test]
    #[should_panic(expected = "lease_ms must be positive")]
    fn zero_lease_is_rejected() {
        let _ = LeaseRegistry::new(ThreadRegistry::new(LevelArray::new(4), 1), 0);
    }
}
