//! Occupancy snapshots: how full each region of an activity array is.
//!
//! A snapshot is a read-only census taken by scanning the array (the same scan
//! a `Collect` performs), broken down by *region*: one region per batch for the
//! LevelArray, plus its backup array, or a single region for the flat
//! baselines.  The healing experiment (paper Figure 3) plots exactly this
//! census over time, and the balance definitions of §5 are predicates over it
//! (see [`crate::balance`]).
//!
//! The scan cost depends on the [`crate::SlotLayout`] of the structure being
//! censused: word-per-slot reads one atomic word per slot, while the packed
//! layout snapshots one `AtomicU64` per 64 slots and counts set bits — the
//! same regions, the same numbers, 1/32 of the memory traffic.

use std::fmt;

/// Identifies a region of an activity array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Batch `i` of a LevelArray's main array.
    Batch(usize),
    /// The LevelArray's sequential backup array.
    Backup,
    /// The whole array of a structure that has no internal levels.
    Whole,
    /// Batch `batch` of shard `shard` of a sharded array.
    ShardBatch {
        /// Which shard the batch belongs to.
        shard: usize,
        /// The batch index within that shard's main array.
        batch: usize,
    },
    /// The sequential backup array of shard `shard` of a sharded array.
    ShardBackup(usize),
    /// Batch `batch` of epoch `epoch` of an elastic array.
    EpochBatch {
        /// Which epoch cell the batch belongs to.
        epoch: usize,
        /// The batch index within that epoch's main array.
        batch: usize,
    },
    /// The sequential backup array of epoch `epoch` of an elastic array.
    EpochBackup(usize),
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Batch(i) => write!(f, "batch {i}"),
            Region::Backup => write!(f, "backup"),
            Region::Whole => write!(f, "whole array"),
            Region::ShardBatch { shard, batch } => write!(f, "shard {shard} batch {batch}"),
            Region::ShardBackup(shard) => write!(f, "shard {shard} backup"),
            Region::EpochBatch { epoch, batch } => write!(f, "epoch {epoch} batch {batch}"),
            Region::EpochBackup(epoch) => write!(f, "epoch {epoch} backup"),
        }
    }
}

/// The census of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionOccupancy {
    region: Region,
    capacity: usize,
    occupied: usize,
}

impl RegionOccupancy {
    /// Creates a census entry.
    ///
    /// # Panics
    ///
    /// Panics if `occupied > capacity`.
    pub fn new(region: Region, capacity: usize, occupied: usize) -> Self {
        assert!(
            occupied <= capacity,
            "occupied ({occupied}) cannot exceed capacity ({capacity}) in {region}"
        );
        RegionOccupancy {
            region,
            capacity,
            occupied,
        }
    }

    /// Which region this entry describes.
    pub fn region(&self) -> Region {
        self.region
    }

    /// Number of slots in the region.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of held slots observed.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Fraction of the region's slots that were held (0 for an empty region).
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.occupied as f64 / self.capacity as f64
        }
    }
}

/// A point-in-time census of an entire activity array.
///
/// Snapshots are *not* atomic: they are assembled from individual slot reads,
/// exactly like a `Collect`.  Under concurrent modification the per-region
/// counts are approximations; in the single-threaded simulator they are exact.
///
/// On an elastic array the *region set* itself is dynamic: a snapshot walks
/// one pinned chain snapshot, so [`Region::EpochBatch`]/[`Region::EpochBackup`]
/// entries for an epoch appear when concurrent growth publishes it and vanish
/// once retirement unlinks it — two censuses taken around a growth or
/// retirement event legitimately differ in shape, not just in counts.  (The
/// one exception to "approximation" is the census inside
/// [`crate::ElasticLevelArray::try_retire`], which the seal-and-grace protocol
/// turns into a proof of quiescence — see the `elastic` module docs.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OccupancySnapshot {
    regions: Vec<RegionOccupancy>,
}

impl OccupancySnapshot {
    /// Builds a snapshot from region entries.
    pub fn new(regions: Vec<RegionOccupancy>) -> Self {
        OccupancySnapshot { regions }
    }

    /// The per-region census entries, in array order.
    pub fn regions(&self) -> &[RegionOccupancy] {
        &self.regions
    }

    /// Total capacity across all regions.
    pub fn total_capacity(&self) -> usize {
        self.regions.iter().map(|r| r.capacity()).sum()
    }

    /// Total held slots across all regions.
    pub fn total_occupied(&self) -> usize {
        self.regions.iter().map(|r| r.occupied()).sum()
    }

    /// Overall fill fraction.
    pub fn fill_fraction(&self) -> f64 {
        let cap = self.total_capacity();
        if cap == 0 {
            0.0
        } else {
            self.total_occupied() as f64 / cap as f64
        }
    }

    /// The census entry for batch `i` of the main array, if present.
    ///
    /// Only plain [`Region::Batch`] entries match; for censuses with
    /// per-shard regions use [`OccupancySnapshot::batch_occupied`] /
    /// [`OccupancySnapshot::batch_capacity`], which aggregate across shards.
    pub fn batch(&self, i: usize) -> Option<&RegionOccupancy> {
        self.regions.iter().find(|r| r.region() == Region::Batch(i))
    }

    /// The number of distinct batch indices present in the snapshot, counting
    /// plain [`Region::Batch`] entries, per-shard [`Region::ShardBatch`]
    /// entries and per-epoch [`Region::EpochBatch`] entries (batch `i` of
    /// every shard/epoch counts once), so batch-aggregating consumers —
    /// balance reports, fill series — see the same batch structure whether
    /// the census came from a plain, sharded or elastic array.
    pub fn num_batches(&self) -> usize {
        self.regions
            .iter()
            .filter_map(|r| match r.region() {
                Region::Batch(i)
                | Region::ShardBatch { batch: i, .. }
                | Region::EpochBatch { batch: i, .. } => Some(i + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// Total capacity of batch `i`, summed across shards/epochs when the
    /// census has per-shard or per-epoch regions.
    pub fn batch_capacity(&self, i: usize) -> usize {
        self.batch_entries(i).map(|r| r.capacity()).sum()
    }

    /// Total held slots in batch `i`, summed across shards/epochs when the
    /// census has per-shard or per-epoch regions.
    pub fn batch_occupied(&self, i: usize) -> usize {
        self.batch_entries(i).map(|r| r.occupied()).sum()
    }

    fn batch_entries(&self, i: usize) -> impl Iterator<Item = &RegionOccupancy> {
        self.regions.iter().filter(move |r| {
            matches!(r.region(),
                Region::Batch(b)
                | Region::ShardBatch { batch: b, .. }
                | Region::EpochBatch { batch: b, .. } if b == i)
        })
    }

    /// The census entry for the backup array, if the structure has one.
    pub fn backup(&self) -> Option<&RegionOccupancy> {
        self.regions.iter().find(|r| r.region() == Region::Backup)
    }

    /// The census entry for batch `batch` of shard `shard`, if present (only
    /// sharded arrays produce [`Region::ShardBatch`] entries).
    pub fn shard_batch(&self, shard: usize, batch: usize) -> Option<&RegionOccupancy> {
        self.regions
            .iter()
            .find(|r| r.region() == Region::ShardBatch { shard, batch })
    }

    /// The census entry for the backup array of shard `shard`, if present.
    pub fn shard_backup(&self, shard: usize) -> Option<&RegionOccupancy> {
        self.regions
            .iter()
            .find(|r| r.region() == Region::ShardBackup(shard))
    }

    /// The number of distinct shards appearing in the snapshot (0 for the
    /// snapshots of unsharded structures).
    pub fn num_shards(&self) -> usize {
        self.regions
            .iter()
            .filter_map(|r| match r.region() {
                Region::ShardBatch { shard, .. } | Region::ShardBackup(shard) => Some(shard + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }

    /// The census entry for batch `batch` of epoch `epoch`, if present (only
    /// elastic arrays produce [`Region::EpochBatch`] entries).
    pub fn epoch_batch(&self, epoch: usize, batch: usize) -> Option<&RegionOccupancy> {
        self.regions
            .iter()
            .find(|r| r.region() == Region::EpochBatch { epoch, batch })
    }

    /// The census entry for the backup array of epoch `epoch`, if present.
    pub fn epoch_backup(&self, epoch: usize) -> Option<&RegionOccupancy> {
        self.regions
            .iter()
            .find(|r| r.region() == Region::EpochBackup(epoch))
    }

    /// The distinct epoch tags appearing in the snapshot, in ascending order
    /// (empty for the snapshots of non-elastic structures).
    pub fn epoch_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .regions
            .iter()
            .filter_map(|r| match r.region() {
                Region::EpochBatch { epoch, .. } | Region::EpochBackup(epoch) => Some(epoch),
                _ => None,
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total held slots across every region of epoch `epoch` — the per-epoch
    /// occupancy a retirement decision watches drain to zero.
    pub fn epoch_occupied(&self, epoch: usize) -> usize {
        self.regions
            .iter()
            .filter(|r| {
                matches!(r.region(),
                    Region::EpochBatch { epoch: e, .. } | Region::EpochBackup(e) if e == epoch)
            })
            .map(|r| r.occupied())
            .sum()
    }

    /// Per-batch fill fractions, in batch order — the series plotted in the
    /// paper's Figure 3.  Per-shard censuses aggregate: the fraction for
    /// batch `i` is total-held over total-capacity across every shard.
    pub fn batch_fill_fractions(&self) -> Vec<f64> {
        (0..self.num_batches())
            .map(|i| {
                let capacity = self.batch_capacity(i);
                if capacity == 0 {
                    0.0
                } else {
                    self.batch_occupied(i) as f64 / capacity as f64
                }
            })
            .collect()
    }
}

impl fmt::Display for OccupancySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} occupied",
            self.total_occupied(),
            self.total_capacity()
        )?;
        for r in &self.regions {
            write!(f, "; {}: {}/{}", r.region(), r.occupied(), r.capacity())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OccupancySnapshot {
        OccupancySnapshot::new(vec![
            RegionOccupancy::new(Region::Batch(0), 96, 48),
            RegionOccupancy::new(Region::Batch(1), 16, 8),
            RegionOccupancy::new(Region::Batch(2), 16, 0),
            RegionOccupancy::new(Region::Backup, 64, 0),
        ])
    }

    #[test]
    fn totals_are_sums_over_regions() {
        let s = sample();
        assert_eq!(s.total_capacity(), 96 + 16 + 16 + 64);
        assert_eq!(s.total_occupied(), 56);
        assert!((s.fill_fraction() - 56.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn batch_lookup_and_count() {
        let s = sample();
        assert_eq!(s.num_batches(), 3);
        assert_eq!(s.batch(1).unwrap().occupied(), 8);
        assert!(s.batch(5).is_none());
        assert_eq!(s.backup().unwrap().capacity(), 64);
    }

    #[test]
    fn fill_fractions_per_batch() {
        let s = sample();
        let fractions = s.batch_fill_fractions();
        assert_eq!(fractions.len(), 3);
        assert!((fractions[0] - 0.5).abs() < 1e-12);
        assert!((fractions[1] - 0.5).abs() < 1e-12);
        assert_eq!(fractions[2], 0.0);
    }

    #[test]
    fn empty_regions_have_zero_fill() {
        let r = RegionOccupancy::new(Region::Whole, 0, 0);
        assert_eq!(r.fill_fraction(), 0.0);
        let s = OccupancySnapshot::new(vec![]);
        assert_eq!(s.fill_fraction(), 0.0);
        assert_eq!(s.num_batches(), 0);
        assert!(s.backup().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot exceed capacity")]
    fn overfull_region_panics() {
        let _ = RegionOccupancy::new(Region::Batch(0), 4, 5);
    }

    #[test]
    fn display_mentions_every_region() {
        let text = sample().to_string();
        assert!(text.contains("batch 0"));
        assert!(text.contains("backup"));
        assert!(text.contains("56/192"));
    }

    #[test]
    fn sharded_regions_aggregate_in_batch_queries() {
        // Two shards, two batches each, plus per-shard backups.
        let s = OccupancySnapshot::new(vec![
            RegionOccupancy::new(Region::ShardBatch { shard: 0, batch: 0 }, 12, 6),
            RegionOccupancy::new(Region::ShardBatch { shard: 0, batch: 1 }, 4, 1),
            RegionOccupancy::new(Region::ShardBackup(0), 8, 0),
            RegionOccupancy::new(Region::ShardBatch { shard: 1, batch: 0 }, 12, 2),
            RegionOccupancy::new(Region::ShardBatch { shard: 1, batch: 1 }, 4, 3),
            RegionOccupancy::new(Region::ShardBackup(1), 8, 2),
        ]);
        assert_eq!(s.num_shards(), 2);
        assert_eq!(s.num_batches(), 2);
        assert_eq!(s.batch_capacity(0), 24);
        assert_eq!(s.batch_occupied(0), 8);
        assert_eq!(s.batch_capacity(1), 8);
        assert_eq!(s.batch_occupied(1), 4);
        // batch() only matches plain entries; the aggregate queries are the
        // shard-aware path.
        assert!(s.batch(0).is_none());
        let fills = s.batch_fill_fractions();
        assert!((fills[0] - 8.0 / 24.0).abs() < 1e-12);
        assert!((fills[1] - 0.5).abs() < 1e-12);
        assert_eq!(s.shard_batch(1, 1).unwrap().occupied(), 3);
        assert_eq!(s.shard_backup(1).unwrap().occupied(), 2);
    }

    #[test]
    fn region_display() {
        assert_eq!(Region::Batch(3).to_string(), "batch 3");
        assert_eq!(Region::Backup.to_string(), "backup");
        assert_eq!(Region::Whole.to_string(), "whole array");
        assert_eq!(
            Region::EpochBatch { epoch: 2, batch: 1 }.to_string(),
            "epoch 2 batch 1"
        );
        assert_eq!(Region::EpochBackup(2).to_string(), "epoch 2 backup");
    }

    #[test]
    fn epoch_regions_aggregate_in_batch_queries() {
        // Two epochs of different geometry: epoch 1 is twice the size and has
        // one more batch, as an elastic doubling chain produces.
        let s = OccupancySnapshot::new(vec![
            RegionOccupancy::new(Region::EpochBatch { epoch: 0, batch: 0 }, 12, 6),
            RegionOccupancy::new(Region::EpochBatch { epoch: 0, batch: 1 }, 4, 1),
            RegionOccupancy::new(Region::EpochBackup(0), 8, 0),
            RegionOccupancy::new(Region::EpochBatch { epoch: 1, batch: 0 }, 24, 2),
            RegionOccupancy::new(Region::EpochBatch { epoch: 1, batch: 1 }, 8, 3),
            RegionOccupancy::new(Region::EpochBatch { epoch: 1, batch: 2 }, 4, 1),
            RegionOccupancy::new(Region::EpochBackup(1), 16, 2),
        ]);
        assert_eq!(s.num_shards(), 0);
        assert_eq!(s.num_batches(), 3);
        assert_eq!(s.epoch_ids(), vec![0, 1]);
        assert_eq!(s.batch_capacity(0), 36);
        assert_eq!(s.batch_occupied(0), 8);
        // Batch 2 exists only in the larger epoch.
        assert_eq!(s.batch_capacity(2), 4);
        assert_eq!(s.batch_occupied(2), 1);
        assert_eq!(s.epoch_occupied(0), 7);
        assert_eq!(s.epoch_occupied(1), 8);
        assert_eq!(s.epoch_batch(1, 2).unwrap().occupied(), 1);
        assert_eq!(s.epoch_backup(1).unwrap().occupied(), 2);
        assert!(s.epoch_batch(2, 0).is_none());
        assert!(s.batch(0).is_none(), "only plain entries match batch()");
    }
}
