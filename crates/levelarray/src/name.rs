//! The [`Name`] type: the index a process acquires from an activity array.
//!
//! In the renaming literature a "name" is a small integer drawn from a
//! namespace whose size is proportional to the maximal contention `n`; in the
//! activity-array formulation the name doubles as the index of the array slot
//! the process holds.  The newtype keeps names from being confused with other
//! integers (probe counts, batch indices, thread ids, ...).

use std::fmt;

/// A name (slot index) held by a process between a `Get` and the matching
/// `Free`.
///
/// Names are dense: a structure with capacity `C` only ever hands out names in
/// `0..C`, which is what makes `Collect` proportional to the contention bound
/// rather than to the thread-ID space.
///
/// # Examples
///
/// ```
/// use levelarray::Name;
/// let name = Name::new(17);
/// assert_eq!(name.index(), 17);
/// assert_eq!(usize::from(name), 17);
/// assert_eq!(format!("{name}"), "17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(usize);

impl Name {
    /// Wraps a raw slot index as a name.
    pub const fn new(index: usize) -> Self {
        Name(index)
    }

    /// The raw slot index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for Name {
    fn from(index: usize) -> Self {
        Name(index)
    }
}

impl From<Name> for usize {
    fn from(name: Name) -> Self {
        name.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn round_trip_conversions() {
        for i in [0usize, 1, 7, 1000, usize::MAX] {
            let n = Name::from(i);
            assert_eq!(usize::from(n), i);
            assert_eq!(n.index(), i);
            assert_eq!(Name::new(i), n);
        }
    }

    #[test]
    fn ordering_matches_index_ordering() {
        let names: BTreeSet<Name> = [3usize, 1, 2].into_iter().map(Name::new).collect();
        let sorted: Vec<usize> = names.into_iter().map(Name::index).collect();
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    #[test]
    fn display_is_the_bare_index() {
        assert_eq!(Name::new(42).to_string(), "42");
    }

    #[test]
    fn hashable_and_copy() {
        let mut set = std::collections::HashSet::new();
        let n = Name::new(5);
        set.insert(n);
        set.insert(n); // Copy: still usable after insert
        assert_eq!(set.len(), 1);
    }
}
