//! The [`Name`] type: the index a process acquires from an activity array,
//! tagged with the *epoch* of the array that handed it out.
//!
//! In the renaming literature a "name" is a small integer drawn from a
//! namespace whose size is proportional to the maximal contention `n`; in the
//! activity-array formulation the name doubles as the index of the array slot
//! the process holds.  Elastic arrays ([`crate::ElasticLevelArray`]) relax the
//! fixed-`n` assumption by chaining *epochs* — successively larger arrays —
//! so a name is really a pair `(epoch, index)`: which generation of the
//! structure the slot belongs to, and the dense slot index within it.
//!
//! The encoding packs the epoch into the high [`Name::EPOCH_BITS`] bits of a
//! `usize` and the index into the remaining low bits.  Epoch-0 names are
//! therefore bit-identical to plain slot indices, which is what keeps the
//! fixed-size structures ([`crate::LevelArray`], [`crate::ShardedLevelArray`],
//! the baselines) and every dense-array consumer (publication records, barrier
//! slots) working on raw `index()` values unchanged.

use std::fmt;

/// A name held by a process between a `Get` and the matching `Free`: an
/// `(epoch, index)` pair packed into one `usize`.
///
/// Names are dense *within an epoch*: a structure (or epoch cell) with
/// capacity `C` only ever hands out indices in `0..C`, which is what makes
/// `Collect` proportional to the contention bound rather than to the
/// thread-ID space.  Fixed-size structures use epoch 0 exclusively, so for
/// them `index()` is the full dense name, exactly as before the epoch tag
/// existed.
///
/// The derived ordering is epoch-major: all names of epoch `e` sort before
/// any name of epoch `e + 1`, and within an epoch names sort by index.
///
/// # Examples
///
/// ```
/// use levelarray::Name;
///
/// // Fixed-size structures hand out epoch-0 names: plain slot indices.
/// let name = Name::new(17);
/// assert_eq!(name.index(), 17);
/// assert_eq!(name.epoch(), 0);
/// assert_eq!(usize::from(name), 17);
/// assert_eq!(format!("{name}"), "17");
///
/// // Elastic structures tag the epoch explicitly.
/// let grown = Name::with_epoch(3, 17);
/// assert_eq!(grown.epoch(), 3);
/// assert_eq!(grown.index(), 17);
/// assert_eq!(format!("{grown}"), "e3:17");
/// assert_ne!(grown, name);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(usize);

impl Name {
    /// Number of high bits reserved for the epoch tag (up to
    /// [`Name::MAX_EPOCH`]` + 1` epochs over a structure's lifetime).
    pub const EPOCH_BITS: u32 = 10;

    /// Number of low bits carrying the slot index within an epoch.
    pub const INDEX_BITS: u32 = usize::BITS - Self::EPOCH_BITS;

    /// The largest representable epoch tag.
    pub const MAX_EPOCH: usize = (1 << Self::EPOCH_BITS) - 1;

    /// The largest representable slot index within an epoch.
    pub const MAX_INDEX: usize = (1 << Self::INDEX_BITS) - 1;

    /// Wraps a raw slot index as an epoch-0 name (the encoding every
    /// fixed-size activity array uses).
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Name::MAX_INDEX`].
    pub const fn new(index: usize) -> Self {
        Self::with_epoch(0, index)
    }

    /// Builds a name from an explicit `(epoch, index)` pair.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` exceeds [`Name::MAX_EPOCH`] or `index` exceeds
    /// [`Name::MAX_INDEX`].
    pub const fn with_epoch(epoch: usize, index: usize) -> Self {
        assert!(epoch <= Self::MAX_EPOCH, "epoch exceeds Name::MAX_EPOCH");
        assert!(index <= Self::MAX_INDEX, "index exceeds Name::MAX_INDEX");
        Name((epoch << Self::INDEX_BITS) | index)
    }

    /// The epoch of the array generation this name belongs to (0 for every
    /// name handed out by a fixed-size structure).
    pub const fn epoch(self) -> usize {
        self.0 >> Self::INDEX_BITS
    }

    /// The slot index within the name's epoch.
    pub const fn index(self) -> usize {
        self.0 & Self::MAX_INDEX
    }

    /// The full packed encoding.  For epoch-0 names this equals `index()`.
    pub const fn raw(self) -> usize {
        self.0
    }

    /// Rebuilds a name from a packed encoding previously obtained from
    /// [`Name::raw`].
    pub const fn from_raw(raw: usize) -> Self {
        Name(raw)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.epoch() == 0 {
            write!(f, "{}", self.index())
        } else {
            write!(f, "e{}:{}", self.epoch(), self.index())
        }
    }
}

impl From<usize> for Name {
    /// Interprets `raw` as a packed encoding (see [`Name::from_raw`]); for
    /// values up to [`Name::MAX_INDEX`] this is the same as [`Name::new`].
    fn from(raw: usize) -> Self {
        Name::from_raw(raw)
    }
}

impl From<Name> for usize {
    /// The packed encoding (see [`Name::raw`]).
    fn from(name: Name) -> Self {
        name.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn round_trip_conversions() {
        for i in [0usize, 1, 7, 1000, Name::MAX_INDEX] {
            let n = Name::new(i);
            assert_eq!(n.index(), i);
            assert_eq!(n.epoch(), 0);
            assert_eq!(usize::from(n), i);
            assert_eq!(Name::from(i), n);
        }
        // The raw conversions are lossless over the full usize domain.
        for raw in [0usize, 1, Name::MAX_INDEX, Name::MAX_INDEX + 1, usize::MAX] {
            assert_eq!(Name::from_raw(raw).raw(), raw);
            assert_eq!(usize::from(Name::from(raw)), raw);
        }
    }

    #[test]
    fn epoch_and_index_round_trip() {
        for epoch in [0usize, 1, 2, 63, Name::MAX_EPOCH] {
            for index in [0usize, 1, 5000, Name::MAX_INDEX] {
                let n = Name::with_epoch(epoch, index);
                assert_eq!(n.epoch(), epoch);
                assert_eq!(n.index(), index);
                assert_eq!(Name::from_raw(n.raw()), n);
            }
        }
    }

    #[test]
    fn epoch_zero_names_are_bit_compatible_with_plain_indices() {
        // The invariant every dense-index consumer (publication records,
        // barrier slots, test claim arrays) relies on.
        for i in [0usize, 3, 129, 100_000] {
            assert_eq!(Name::new(i).raw(), i);
            assert_eq!(Name::with_epoch(0, i), Name::new(i));
        }
    }

    #[test]
    fn ordering_is_epoch_major() {
        let names: BTreeSet<Name> = [
            Name::with_epoch(1, 0),
            Name::new(3),
            Name::new(1),
            Name::with_epoch(1, 2),
            Name::new(2),
        ]
        .into_iter()
        .collect();
        let sorted: Vec<(usize, usize)> =
            names.into_iter().map(|n| (n.epoch(), n.index())).collect();
        assert_eq!(sorted, vec![(0, 1), (0, 2), (0, 3), (1, 0), (1, 2)]);
    }

    #[test]
    fn display_shows_the_epoch_only_when_nonzero() {
        assert_eq!(Name::new(42).to_string(), "42");
        assert_eq!(Name::with_epoch(2, 42).to_string(), "e2:42");
    }

    #[test]
    fn hashable_and_copy() {
        let mut set = std::collections::HashSet::new();
        let n = Name::with_epoch(1, 5);
        set.insert(n);
        set.insert(n); // Copy: still usable after insert
        set.insert(Name::new(5)); // different epoch -> different name
        assert_eq!(set.len(), 2);
    }

    #[test]
    #[should_panic(expected = "epoch exceeds Name::MAX_EPOCH")]
    fn oversized_epoch_panics() {
        let _ = Name::with_epoch(Name::MAX_EPOCH + 1, 0);
    }

    #[test]
    #[should_panic(expected = "index exceeds Name::MAX_INDEX")]
    fn oversized_index_panics() {
        let _ = Name::new(Name::MAX_INDEX + 1);
    }
}
