//! Machine topology discovery and topology-aware home-shard routing.
//!
//! The sharded layouts ([`crate::ShardedLevelArray`] and the sharded epoch
//! backends of a hierarchical [`crate::ElasticLevelArray`]) pin each thread
//! to a sticky *home shard*.  Which shard a thread should call home is a
//! placement question: on a multi-socket machine the shards' cache lines
//! live on specific NUMA nodes, so homes should first spread across nodes
//! and only then fill within a node.  [`Topology`] answers that question:
//!
//! * [`Topology::discover`] parses the kernel's view of the machine from
//!   `/sys/devices/system/node/node*/cpulist` (each file a cpulist like
//!   `0-3,8,10-11`).  On machines without that tree — non-Linux, containers
//!   with `/sys` masked — it falls back to a single synthetic node holding
//!   every available CPU, which degrades the node-interleaved assignment to
//!   plain round-robin.
//! * [`Topology::synthetic`] builds an explicit layout, so the simulator and
//!   the tests can study placement on machines they are not running on.
//! * [`Topology::assign_home`] maps a dense *home token* to a shard,
//!   node-interleaved: consecutive tokens land on shards of *different*
//!   nodes first (token 0 → a node-0 shard, token 1 → a node-1 shard, …),
//!   then wrap around within each node's shard group.  Over tokens
//!   `0..shards` the assignment is a bijection, so a full population covers
//!   every shard exactly once — the same guarantee plain round-robin gives,
//!   plus the cross-node spreading.
//!
//! # Home tokens are leased, not burned
//!
//! The pool behind the sticky assignment (`HomePool`, crate-internal)
//! hands each newly arriving thread the smallest free token: freshly `0, 1,
//! 2, …` while threads only arrive, and *recycled* tokens once threads
//! leave — a thread's token is returned to the pool when the thread exits
//! (or re-pins to a different array).  This is the invariant that keeps the
//! assignment stable under churn: **a population of at most `T` concurrent
//! threads only ever occupies tokens `0..T`**, so short-lived threads reuse
//! the home (and the warm cache lines) their predecessors vacated instead
//! of marching the round-robin cursor ever forward and piling every
//! long-run workload onto whatever shards the cursor happens to pass.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The machine's CPU topology: which logical CPUs belong to which NUMA node.
///
/// # Examples
///
/// ```
/// use levelarray::topology::Topology;
///
/// // A synthetic two-socket box with four CPUs per socket.
/// let topo = Topology::synthetic(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
/// assert_eq!(topo.num_nodes(), 2);
/// assert_eq!(topo.node_of_cpu(5), Some(1));
///
/// // Home tokens interleave across the nodes first: with 4 shards the
/// // even shards belong to node 0, the odd ones to node 1, and the first
/// // two tokens land on different nodes.
/// assert_eq!(topo.assign_home(0, 4), 0); // node 0
/// assert_eq!(topo.assign_home(1, 4), 1); // node 1
/// assert_eq!(topo.assign_home(2, 4), 2); // node 0 again
/// assert_eq!(topo.assign_home(3, 4), 3);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Topology {
    /// CPUs per node, in node order.  Never empty; every node list is
    /// non-empty.
    nodes: Vec<Vec<usize>>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("num_nodes", &self.num_nodes())
            .field("num_cpus", &self.num_cpus())
            .finish()
    }
}

impl Topology {
    /// Discovers the machine topology from
    /// `/sys/devices/system/node/node*/cpulist`, falling back to a single
    /// node holding every available CPU when the sysfs tree is absent or
    /// unparsable (non-Linux platforms, masked `/sys` in containers).  The
    /// fallback makes [`Topology::assign_home`] plain round-robin.
    pub fn discover() -> Self {
        // Miri isolates the interpreted program from the host filesystem, so
        // the sysfs probe would abort the interpreter rather than fail the
        // read; go straight to the fallback there.
        #[cfg(miri)]
        return Self::fallback();
        #[cfg(not(miri))]
        Self::from_sysfs("/sys/devices/system/node").unwrap_or_else(Self::fallback)
    }

    /// The process-wide discovered topology, computed once and cached.  The
    /// sharded facades route through this unless an explicit topology was
    /// injected at construction.
    pub fn current() -> &'static Topology {
        static CURRENT: OnceLock<Topology> = OnceLock::new();
        CURRENT.get_or_init(Topology::discover)
    }

    /// Builds an explicit topology: `nodes[i]` is the CPU list of node `i`.
    /// Empty node lists are dropped; an entirely empty layout collapses to
    /// the single-node fallback.  This is the injection point for the
    /// simulator and the tests.
    pub fn synthetic(nodes: Vec<Vec<usize>>) -> Self {
        let nodes: Vec<Vec<usize>> = nodes.into_iter().filter(|n| !n.is_empty()).collect();
        if nodes.is_empty() {
            return Self::fallback();
        }
        Topology { nodes }
    }

    /// Parses one sysfs node directory tree.  `None` when the tree is
    /// missing, holds no `node*` entries, or none of them parse.
    fn from_sysfs(root: &str) -> Option<Self> {
        let entries = std::fs::read_dir(root).ok()?;
        let mut nodes: Vec<(usize, Vec<usize>)> = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("node")
                .and_then(|s| s.parse::<usize>().ok())
            else {
                continue;
            };
            let path = entry.path().join("cpulist");
            let Ok(contents) = std::fs::read_to_string(&path) else {
                continue;
            };
            let cpus = parse_cpulist(contents.trim());
            if !cpus.is_empty() {
                nodes.push((id, cpus));
            }
        }
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_by_key(|(id, _)| *id);
        Some(Topology {
            nodes: nodes.into_iter().map(|(_, cpus)| cpus).collect(),
        })
    }

    /// The round-robin fallback: one node holding every available CPU.
    fn fallback() -> Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Topology {
            nodes: vec![(0..cpus).collect()],
        }
    }

    /// Number of NUMA nodes (at least 1).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of logical CPUs across all nodes.
    pub fn num_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.len()).sum()
    }

    /// The CPU list of node `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= num_nodes()`.
    pub fn node_cpus(&self, node: usize) -> &[usize] {
        &self.nodes[node]
    }

    /// The node owning logical CPU `cpu`, if any.
    pub fn node_of_cpu(&self, cpu: usize) -> Option<usize> {
        self.nodes.iter().position(|cpus| cpus.contains(&cpu))
    }

    /// Maps a dense home token to one of `shards` shards, node-interleaved:
    /// shard `s` belongs to node `s % K` (with `K = min(num_nodes, shards)`
    /// so every group is non-empty), and token `t` picks node `t % K`, then
    /// walks that node's shard group round-robin.  Consecutive tokens
    /// therefore land on different nodes first; over tokens `0..shards` the
    /// map is a bijection onto `0..shards`.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn assign_home(&self, token: usize, shards: usize) -> usize {
        assert!(shards > 0, "cannot assign a home among zero shards");
        let groups = self.num_nodes().min(shards);
        let node = token % groups;
        let within = token / groups;
        // Node `node` owns shards {node, node + groups, node + 2*groups, …}.
        let group_len = (shards - node).div_ceil(groups);
        node + (within % group_len) * groups
    }
}

/// Parses a kernel cpulist such as `0-3,8,10-11` into the listed CPU ids.
/// Malformed fragments are skipped rather than failing the whole list.
fn parse_cpulist(list: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in list.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((lo, hi)) = part.split_once('-') {
            if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                if lo <= hi {
                    cpus.extend(lo..=hi);
                }
            }
        } else if let Ok(cpu) = part.parse::<usize>() {
            cpus.push(cpu);
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// The token pool behind sticky home assignment: hands each arriving thread
/// the smallest free token and takes tokens back when threads leave, so the
/// population of live tokens is always a dense prefix `0..T` (see the
/// module docs for why that matters under churn).
#[derive(Debug)]
pub(crate) struct HomePool {
    topology: Topology,
    /// High-water mark: the next never-used token.
    next: AtomicUsize,
    /// Tokens returned by departed (or re-pinned) threads, reused LIFO so a
    /// successor inherits the most recently vacated — warmest — home.
    freed: Mutex<Vec<usize>>,
}

impl HomePool {
    pub(crate) fn new(topology: Topology) -> Self {
        HomePool {
            topology,
            next: AtomicUsize::new(0),
            freed: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Leases a token: a recycled one if any thread has departed, else the
    /// next fresh one.  The lease returns the token on drop.
    pub(crate) fn lease(self: &Arc<Self>) -> HomeLease {
        let recycled = self
            .freed
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop();
        let token = recycled.unwrap_or_else(|| self.next.fetch_add(1, Ordering::Relaxed));
        HomeLease {
            pool: Arc::clone(self),
            token,
        }
    }

    fn release(&self, token: usize) {
        self.freed
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(token);
    }
}

/// A leased home token; returns itself to the pool on drop (thread exit, or
/// the thread re-pinning to a different array).
#[derive(Debug)]
pub(crate) struct HomeLease {
    pool: Arc<HomePool>,
    token: usize,
}

impl HomeLease {
    #[cfg(test)]
    pub(crate) fn token(&self) -> usize {
        self.token
    }

    /// The shard this lease maps to for a layout of `shards` shards, via the
    /// pool's topology.
    pub(crate) fn shard(&self, shards: usize) -> usize {
        self.pool.topology.assign_home(self.token, shards)
    }
}

impl Drop for HomeLease {
    fn drop(&mut self) {
        self.pool.release(self.token);
    }
}

/// How the calling thread's home was decided for one array.
#[derive(Debug)]
pub(crate) enum ThreadHome {
    /// An explicit `pin_home`/`route_hint` assignment: interpreted as a raw
    /// token, mapped onto a shard count by plain modulo (no topology
    /// indirection, so `pin_home(s)` on an `S`-shard array with `s < S`
    /// pins shard `s` exactly).
    Pinned(usize),
    /// A pool-leased token, mapped through the pool's topology.
    Leased(HomeLease),
}

impl ThreadHome {
    /// The shard this home resolves to among `shards` shards.
    pub(crate) fn shard(&self, shards: usize) -> usize {
        match self {
            ThreadHome::Pinned(token) => token % shards,
            ThreadHome::Leased(lease) => lease.shard(shards),
        }
    }
}

thread_local! {
    /// The calling thread's home for the sharded facade it touched most
    /// recently: `(array identity, home)`.  One entry suffices in the
    /// overwhelmingly common one-array-per-process case; a thread
    /// alternating between arrays re-pins on each switch, and the dropped
    /// entry's lease returns its token to the *previous* array's pool.
    static THREAD_HOME: std::cell::RefCell<Option<(u64, ThreadHome)>> =
        const { std::cell::RefCell::new(None) };
}

/// The calling thread's home shard for array `array_id` with `shards`
/// shards, leasing a token from `pool` on first touch.
pub(crate) fn home_shard(array_id: u64, pool: &Arc<HomePool>, shards: usize) -> usize {
    THREAD_HOME.with(|cell| {
        let mut entry = cell.borrow_mut();
        match entry.as_ref() {
            Some((id, home)) if *id == array_id => home.shard(shards),
            _ => {
                let home = ThreadHome::Leased(pool.lease());
                let shard = home.shard(shards);
                *entry = Some((array_id, home));
                shard
            }
        }
    })
}

/// Explicitly pins the calling thread's home token for array `array_id`
/// (replacing any lease, whose token returns to its pool).
pub(crate) fn pin_home(array_id: u64, token: usize) {
    THREAD_HOME.with(|cell| {
        *cell.borrow_mut() = Some((array_id, ThreadHome::Pinned(token)));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_cpulist_handles_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3,8,10-11"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        assert_eq!(parse_cpulist("2-2"), vec![2]);
        // Malformed fragments are skipped, valid ones kept.
        assert_eq!(parse_cpulist("x,1,3-z,4-2,7"), vec![1, 7]);
        // Overlaps deduplicate.
        assert_eq!(parse_cpulist("0-2,1-3"), vec![0, 1, 2, 3]);
    }

    #[test]
    fn discover_never_panics_and_has_at_least_one_node() {
        let topo = Topology::discover();
        assert!(topo.num_nodes() >= 1);
        assert!(topo.num_cpus() >= 1);
        // Every CPU maps back to its node.
        for node in 0..topo.num_nodes() {
            for &cpu in topo.node_cpus(node) {
                assert_eq!(topo.node_of_cpu(cpu), Some(node));
            }
        }
        // current() is cached and stable.
        assert_eq!(Topology::current(), Topology::current());
    }

    #[test]
    fn synthetic_drops_empty_nodes_and_falls_back_when_empty() {
        let topo = Topology::synthetic(vec![vec![0, 1], vec![], vec![2]]);
        assert_eq!(topo.num_nodes(), 2);
        let empty = Topology::synthetic(vec![]);
        assert_eq!(empty.num_nodes(), 1);
        assert!(empty.num_cpus() >= 1);
    }

    #[test]
    fn assign_home_is_a_bijection_over_one_round() {
        for nodes in 1..=5usize {
            let topo = Topology::synthetic((0..nodes).map(|n| vec![n]).collect());
            for shards in 1..=9usize {
                let mut seen = vec![false; shards];
                for token in 0..shards {
                    let shard = topo.assign_home(token, shards);
                    assert!(shard < shards);
                    assert!(
                        !seen[shard],
                        "token {token} collided on shard {shard} ({nodes} nodes, {shards} shards)"
                    );
                    seen[shard] = true;
                }
                assert!(seen.iter().all(|&s| s), "{nodes} nodes, {shards} shards");
            }
        }
    }

    #[test]
    fn assign_home_interleaves_across_nodes_first() {
        let topo = Topology::synthetic(vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        // 4 shards over 2 nodes: shards {0, 2} are node 0, {1, 3} node 1.
        // The first two tokens must land on different nodes.
        let s0 = topo.assign_home(0, 4);
        let s1 = topo.assign_home(1, 4);
        assert_eq!(s0 % 2, 0, "token 0 belongs to node 0");
        assert_eq!(s1 % 2, 1, "token 1 belongs to node 1");
        // Tokens beyond one full round wrap deterministically.
        assert_eq!(topo.assign_home(4, 4), topo.assign_home(0, 4));
        // More nodes than shards: the extra nodes fold away.
        let wide = Topology::synthetic((0..8).map(|n| vec![n]).collect());
        for token in 0..6 {
            assert!(wide.assign_home(token, 3) < 3);
        }
    }

    #[test]
    fn home_pool_reuses_freed_tokens() {
        let pool = Arc::new(HomePool::new(Topology::synthetic(vec![vec![0]])));
        let a = pool.lease();
        let b = pool.lease();
        assert_eq!(a.token(), 0);
        assert_eq!(b.token(), 1);
        drop(a);
        // The departed thread's token is recycled before any fresh one.
        let c = pool.lease();
        assert_eq!(c.token(), 0);
        let d = pool.lease();
        assert_eq!(d.token(), 2);
        drop(d);
        drop(b);
        drop(c);
        // All returned: the dense prefix is fully available again.
        let mut tokens: Vec<usize> = (0..3).map(|_| pool.lease().token()).collect();
        // (Leases dropped immediately, so each lease re-recycles; collect the
        // set of tokens seen instead of asserting order.)
        tokens.sort_unstable();
        assert!(tokens.iter().all(|&t| t <= 2));
    }

    #[test]
    fn thread_home_resolution_is_sticky_and_churn_stable() {
        let pool = Arc::new(HomePool::new(Topology::synthetic(vec![vec![0]])));
        let id = crate::hint::next_array_id();
        let first = home_shard(id, &pool, 4);
        assert_eq!(first, home_shard(id, &pool, 4), "sticky");
        // A sequence of short-lived threads all inherit the same home:
        // each thread's lease returns its token on exit, so the next
        // thread's lease recycles it instead of advancing the cursor.
        let homes: Vec<usize> = (0..5)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || home_shard(id, &pool, 4))
                    .join()
                    .unwrap()
            })
            .collect();
        assert!(
            homes.windows(2).all(|w| w[0] == w[1]),
            "churned threads must reuse the vacated home token, got {homes:?}"
        );
        assert_ne!(
            homes[0], first,
            "the live main thread keeps its own distinct token"
        );
        // Explicit pinning overrides the lease (and modulo-maps).
        pin_home(id, 7);
        THREAD_HOME.with(|cell| {
            let entry = cell.borrow();
            let (got_id, home) = entry.as_ref().expect("pinned");
            assert_eq!(*got_id, id);
            assert_eq!(home.shard(4), 3);
        });
    }
}
