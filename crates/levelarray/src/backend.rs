//! The storage backend of one elastic epoch cell: flat or sharded.
//!
//! [`crate::ElasticLevelArray`] composes the repo's two scaling mechanisms
//! one level deep each: the epoch chain grows the *contention bound*, and —
//! with [`crate::LevelArrayConfig::shard_group`] set — every epoch's storage
//! is itself split into cache-padded shard cores so the *memory traffic* of
//! a big epoch stays spread out.  [`CellBackend`] is that seam: the epoch
//! cell talks to one backend, which is either a single [`ProbeCore`] (flat,
//! the PR 4 layout) or a [`ShardGroup`] of `⌈C / g⌉` padded cores for group
//! size `g` and cell contention `C`.  Doubling the chain therefore *adds
//! shard groups* instead of doubling one contended slab.
//!
//! Within a backend the slot namespace is dense —
//! `shard · shard_capacity + local` — exactly the mapping
//! [`crate::ShardedLevelArray`] uses, so the epoch tag plus the dense index
//! (`Name::with_epoch(epoch, dense)`) routes every `Free`/`is_held`/hint
//! unambiguously through both levels without a lookup table.

use crate::array::Acquired;
use crate::config::{ConfigError, LevelArrayConfig};
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::{Region, RegionOccupancy};
use crate::probe_core::ProbeCore;
use crate::slot::SlotLayout;
use larng::RandomSource;

/// One shard core, padded to two cache lines (same rationale as the sharded
/// facade: neighbouring shards' hot atomics must not share a line).
#[derive(Debug)]
#[repr(align(128))]
struct PaddedCore(ProbeCore);

/// A group of cache-padded shard cores backing one epoch cell.
#[derive(Debug)]
pub(crate) struct ShardGroup {
    shards: Box<[PaddedCore]>,
    /// Capacity of each shard — the stride of the dense in-cell namespace.
    shard_capacity: usize,
    /// Cached cost of exhausting *every* shard (the steal walk's full
    /// deterministic probe budget).
    exhausted_probes: u32,
}

/// The storage behind one epoch cell.
#[derive(Debug)]
pub(crate) enum CellBackend {
    /// One flat probing core (the default, `shard_group == 0`).
    Flat(ProbeCore),
    /// `⌈C / g⌉` cache-padded cores with sticky home routing and stealing.
    Sharded(ShardGroup),
}

impl CellBackend {
    /// Materializes the backend for an epoch of bound `contention`, built
    /// from the shared base configuration.  `shard_group == 0` yields a
    /// flat core; otherwise the contention is split over `⌈C / g⌉` shards
    /// of bound `⌈C / shards⌉` each (a hybrid slot split chosen against the
    /// full main array is rescaled per shard, mirroring
    /// [`crate::ShardedLevelArray::from_config`]).
    pub(crate) fn build(base: &LevelArrayConfig, contention: usize) -> Result<Self, ConfigError> {
        let sized = base.clone().with_contention(contention);
        let group = base.shard_group_value();
        if group == 0 {
            return Ok(CellBackend::Flat(sized.validate()?.into_probe_core()));
        }
        let shards = contention.div_ceil(group).max(1);
        let shard_contention = contention.div_ceil(shards);
        let mut per_shard = sized.with_contention(shard_contention);
        if let SlotLayout::Hybrid { packed_from } = per_shard.slot_layout_value() {
            let split = packed_from.div_ceil(shards).min(per_shard.main_len());
            per_shard = per_shard.slot_layout(SlotLayout::Hybrid { packed_from: split });
        }
        let cores: Vec<PaddedCore> = (0..shards)
            .map(|_| Ok(PaddedCore(per_shard.validate()?.into_probe_core())))
            .collect::<Result<_, ConfigError>>()?;
        let shard_capacity = cores[0].0.capacity();
        let exhausted_probes = cores.iter().map(|c| c.0.exhausted_probe_count()).sum();
        Ok(CellBackend::Sharded(ShardGroup {
            shards: cores.into_boxed_slice(),
            shard_capacity,
            exhausted_probes,
        }))
    }

    /// Number of shard cores (1 for a flat backend).
    pub(crate) fn num_shards(&self) -> usize {
        match self {
            CellBackend::Flat(_) => 1,
            CellBackend::Sharded(g) => g.shards.len(),
        }
    }

    /// The stride of the dense in-cell namespace (a flat backend's full
    /// capacity).
    pub(crate) fn shard_capacity(&self) -> usize {
        match self {
            CellBackend::Flat(core) => core.capacity(),
            CellBackend::Sharded(g) => g.shard_capacity,
        }
    }

    /// Total slots across all shards.
    pub(crate) fn capacity(&self) -> usize {
        match self {
            CellBackend::Flat(core) => core.capacity(),
            CellBackend::Sharded(g) => g.shard_capacity * g.shards.len(),
        }
    }

    /// The per-shard batch layout (a flat backend's own geometry).
    pub(crate) fn geometry(&self) -> &BatchGeometry {
        match self {
            CellBackend::Flat(core) => core.geometry(),
            CellBackend::Sharded(g) => g.shards[0].0.geometry(),
        }
    }

    /// The full deterministic probe budget of a failed `Get` (every shard
    /// exhausted, backups included).
    pub(crate) fn exhausted_probe_count(&self) -> u32 {
        match self {
            CellBackend::Flat(core) => core.exhausted_probe_count(),
            CellBackend::Sharded(g) => g.exhausted_probes,
        }
    }

    /// The paper's `Get` over this backend: flat runs it directly; sharded
    /// routes to `home` (already reduced modulo the shard count by the
    /// caller's topology mapping) and steals ring-order on exhaustion.
    /// Returns an acquisition whose name is dense in the cell's namespace.
    pub(crate) fn try_get<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        home: usize,
    ) -> Option<Acquired> {
        match self {
            CellBackend::Flat(core) => core.try_get(rng),
            CellBackend::Sharded(g) => {
                let num_shards = g.shards.len();
                debug_assert!(home < num_shards);
                let mut probes = 0u32;
                for hop in 0..num_shards {
                    let shard = (home + hop) % num_shards;
                    let core = &g.shards[shard].0;
                    match core.try_get(rng) {
                        Some(local) => {
                            return Some(Acquired::new(
                                Name::new(shard * g.shard_capacity + local.name().index()),
                                probes + local.probes(),
                                local.batch(),
                                local.used_backup(),
                            ));
                        }
                        None => probes += core.exhausted_probe_count(),
                    }
                }
                None
            }
        }
    }

    /// The batched `Get` over this backend (see [`ProbeCore::try_get_many`]):
    /// flat runs the batched kernel directly; sharded routes the whole batch
    /// through the `home` shard first and spills the unfilled remainder into
    /// the ring-order steal walk, threading the probe accumulator through
    /// every core walked.  Appended names are dense in the cell's namespace.
    pub(crate) fn try_get_many<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        home: usize,
        k: usize,
        probes: &mut u32,
        out: &mut Vec<Acquired>,
    ) -> usize {
        match self {
            CellBackend::Flat(core) => core.try_get_many(rng, k, probes, out),
            CellBackend::Sharded(g) => {
                let num_shards = g.shards.len();
                debug_assert!(home < num_shards);
                let mut remaining = k;
                for hop in 0..num_shards {
                    if remaining == 0 {
                        break;
                    }
                    let shard = (home + hop) % num_shards;
                    let before = out.len();
                    let won = g.shards[shard].0.try_get_many(rng, remaining, probes, out);
                    let base = shard * g.shard_capacity;
                    for got in &mut out[before..] {
                        *got = Acquired::new(
                            Name::new(base + got.name().index()),
                            got.probes(),
                            got.batch(),
                            got.used_backup(),
                        );
                    }
                    remaining -= won;
                }
                k - remaining
            }
        }
    }

    /// The batched `Free` over this backend: dense in-cell names are sorted
    /// once, split into per-shard runs, and each run is released through the
    /// owning core's bulk kernel ([`ProbeCore::free_many`]).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a double free.
    pub(crate) fn free_many(&self, names: &[Name]) {
        match self {
            CellBackend::Flat(core) => core.free_many(names),
            CellBackend::Sharded(g) => {
                let mut sorted = names.to_vec();
                sorted.sort_unstable();
                let mut start = 0;
                while start < sorted.len() {
                    let shard = sorted[start].index() / g.shard_capacity;
                    assert!(
                        shard < g.shards.len(),
                        "index {} out of range for a {}-shard cell of capacity {}",
                        sorted[start].index(),
                        g.shards.len(),
                        self.capacity()
                    );
                    let base = shard * g.shard_capacity;
                    let end = sorted.partition_point(|n| n.index() < base + g.shard_capacity);
                    for name in &mut sorted[start..end] {
                        *name = Name::new(name.index() - base);
                    }
                    g.shards[shard].0.free_many(&sorted[start..end]);
                    start = end;
                }
            }
        }
    }

    /// Splits a dense in-cell index into `(shard core, local name)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range (the shard core's own checks
    /// reject out-of-range locals; this rejects out-of-range shards).
    fn locate(&self, dense: Name) -> (&ProbeCore, Name) {
        match self {
            CellBackend::Flat(core) => (core, dense),
            CellBackend::Sharded(g) => {
                let shard = dense.index() / g.shard_capacity;
                assert!(
                    shard < g.shards.len(),
                    "index {} out of range for a {}-shard cell of capacity {}",
                    dense.index(),
                    g.shards.len(),
                    self.capacity()
                );
                (
                    &g.shards[shard].0,
                    Name::new(dense.index() % g.shard_capacity),
                )
            }
        }
    }

    /// Releases a dense in-cell slot.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index or a double free.
    pub(crate) fn free(&self, dense: Name) {
        let (core, local) = self.locate(dense);
        core.free(local);
    }

    /// One test-and-set on the hinted dense slot (see
    /// [`ProbeCore::hint_acquire`]); stale hints are rejected, never panic.
    pub(crate) fn hint_acquire(&self, dense: Name) -> Option<Acquired> {
        match self {
            CellBackend::Flat(core) => core.hint_acquire(dense),
            CellBackend::Sharded(g) => {
                let shard = dense.index() / g.shard_capacity;
                if shard >= g.shards.len() {
                    return None;
                }
                let local = Name::new(dense.index() % g.shard_capacity);
                let got = g.shards[shard].0.hint_acquire(local)?;
                Some(Acquired::new(
                    Name::new(shard * g.shard_capacity + got.name().index()),
                    got.probes(),
                    got.batch(),
                    got.used_backup(),
                ))
            }
        }
    }

    /// Directly occupies a dense in-cell slot (test/experiment hook).
    pub(crate) fn force_occupy(&self, dense: Name) -> bool {
        let (core, local) = self.locate(dense);
        core.force_occupy(local)
    }

    /// Whether a dense in-cell slot is currently held.
    pub(crate) fn is_held(&self, dense: Name) -> bool {
        let (core, local) = self.locate(dense);
        core.is_held(local)
    }

    /// Whether any slot of any shard is held (the drained check).
    pub(crate) fn any_held(&self) -> bool {
        match self {
            CellBackend::Flat(core) => core.any_held(),
            CellBackend::Sharded(g) => g.shards.iter().any(|s| s.0.any_held()),
        }
    }

    /// Visits every held slot's dense in-cell index.
    pub(crate) fn for_each_held(&self, mut f: impl FnMut(usize)) {
        match self {
            CellBackend::Flat(core) => core.for_each_held(f),
            CellBackend::Sharded(g) => {
                for (shard, core) in g.shards.iter().enumerate() {
                    let base = shard * g.shard_capacity;
                    core.0.for_each_held(|local| f(base + local));
                }
            }
        }
    }

    /// Held slots in batch `i`, summed across shards.
    pub(crate) fn batch_occupancy(&self, i: usize) -> usize {
        match self {
            CellBackend::Flat(core) => core.batch_occupancy(i),
            CellBackend::Sharded(g) => g.shards.iter().map(|s| s.0.batch_occupancy(i)).sum(),
        }
    }

    /// Capacity of batch `i`, summed across shards.
    pub(crate) fn batch_capacity(&self, i: usize) -> usize {
        self.geometry().batch_len(i) * self.num_shards()
    }

    /// Total backup slots across shards.
    pub(crate) fn backup_capacity(&self) -> usize {
        match self {
            CellBackend::Flat(core) => core.backup_len(),
            CellBackend::Sharded(g) => g.shards.iter().map(|s| s.0.backup_len()).sum(),
        }
    }

    /// Held backup slots, summed across shards.
    pub(crate) fn backup_occupancy(&self) -> usize {
        match self {
            CellBackend::Flat(core) => core.backup_occupancy(),
            CellBackend::Sharded(g) => g.shards.iter().map(|s| s.0.backup_occupancy()).sum(),
        }
    }

    /// The cell's census as labelled regions: per-batch totals aggregated
    /// across the shard group (so one epoch reports one region per batch
    /// plus one backup region, whatever its shard count), then relabelled
    /// through `label` — the hook the elastic census uses to tag regions
    /// with the epoch id.
    pub(crate) fn region_occupancies(
        &self,
        label: impl Fn(Region) -> Region,
    ) -> Vec<RegionOccupancy> {
        match self {
            CellBackend::Flat(core) => core.region_occupancies(label),
            CellBackend::Sharded(_) => {
                let geometry = self.geometry();
                let mut regions: Vec<RegionOccupancy> = (0..geometry.num_batches())
                    .map(|batch| {
                        RegionOccupancy::new(
                            label(Region::Batch(batch)),
                            self.batch_capacity(batch),
                            self.batch_occupancy(batch),
                        )
                    })
                    .collect();
                let backup_capacity = self.backup_capacity();
                if backup_capacity > 0 {
                    regions.push(RegionOccupancy::new(
                        label(Region::Backup),
                        backup_capacity,
                        self.backup_occupancy(),
                    ));
                }
                regions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::default_rng;
    use std::collections::HashSet;

    fn sharded_backend(n: usize, group: usize) -> CellBackend {
        CellBackend::build(&LevelArrayConfig::new(n).shard_group(group), n).unwrap()
    }

    #[test]
    fn zero_group_builds_flat() {
        let backend = CellBackend::build(&LevelArrayConfig::new(16), 16).unwrap();
        assert!(matches!(backend, CellBackend::Flat(_)));
        assert_eq!(backend.num_shards(), 1);
        assert_eq!(backend.capacity(), 16 * 2 + 16);
        assert_eq!(backend.shard_capacity(), backend.capacity());
    }

    #[test]
    fn group_size_sets_the_shard_count() {
        // Contention 64, groups of 16: 4 shards of bound 16 each.
        let backend = sharded_backend(64, 16);
        assert_eq!(backend.num_shards(), 4);
        assert_eq!(backend.shard_capacity(), 16 * 2 + 16);
        assert_eq!(backend.capacity(), 4 * 48);
        // A contention no bigger than the group stays single-shard (but
        // still cache-padded — the sharded representation is kept so a
        // doubled successor's layout is the same shape).
        let small = sharded_backend(8, 16);
        assert_eq!(small.num_shards(), 1);
        // Uneven splits round the shard bound up.
        let uneven = sharded_backend(40, 16);
        assert_eq!(uneven.num_shards(), 3);
        assert_eq!(uneven.geometry().main_len(), 14 * 2);
    }

    #[test]
    fn dense_namespace_round_trips_across_shards() {
        let backend = sharded_backend(32, 8);
        assert_eq!(backend.num_shards(), 4);
        let mut rng = default_rng(5);
        let mut held = HashSet::new();
        // Fill everything through every home shard; names must be unique
        // and dense.
        for home in 0..backend.num_shards() {
            for _ in 0..backend.capacity() {
                if let Some(got) = backend.try_get(&mut rng, home) {
                    assert!(got.name().index() < backend.capacity());
                    assert!(held.insert(got.name()), "duplicate {}", got.name());
                }
            }
        }
        assert_eq!(held.len(), backend.capacity());
        assert!(backend.try_get(&mut rng, 0).is_none());
        assert!(backend.any_held());
        // for_each_held visits exactly the dense indices handed out.
        let mut seen = HashSet::new();
        backend.for_each_held(|dense| {
            assert!(seen.insert(dense));
        });
        let expected: HashSet<usize> = held.iter().map(|n| n.index()).collect();
        assert_eq!(seen, expected);
        // Free them all back through the dense namespace.
        for name in held {
            backend.free(name);
        }
        assert!(!backend.any_held());
    }

    #[test]
    fn frees_and_hints_route_to_the_owning_shard() {
        let backend = sharded_backend(32, 8);
        let mut rng = default_rng(6);
        let got = backend.try_get(&mut rng, 2).expect("empty backend");
        let name = got.name();
        assert!(backend.is_held(name));
        backend.free(name);
        assert!(!backend.is_held(name));
        // The hint re-wins exactly the freed dense slot.
        let again = backend.hint_acquire(name).expect("free slot");
        assert_eq!(again.name(), name);
        // A held slot rejects the hint; an out-of-range dense index is
        // rejected, not a panic.
        assert!(backend.hint_acquire(name).is_none());
        assert!(backend
            .hint_acquire(Name::new(backend.capacity() * 4))
            .is_none());
        backend.free(name);
    }

    #[test]
    fn occupancy_aggregates_across_the_group() {
        let backend = sharded_backend(64, 16);
        // Occupy slot 0 of every shard: batch 0 of the aggregate census
        // holds 4.
        for shard in 0..backend.num_shards() {
            assert!(backend.force_occupy(Name::new(shard * backend.shard_capacity())));
        }
        assert_eq!(backend.batch_occupancy(0), 4);
        assert_eq!(
            backend.batch_capacity(0),
            backend.geometry().batch_len(0) * 4
        );
        assert_eq!(backend.backup_capacity(), 4 * 16);
        assert_eq!(backend.backup_occupancy(), 0);
        let regions = backend.region_occupancies(|r| r);
        assert_eq!(
            regions.len(),
            backend.geometry().num_batches() + 1,
            "one region per batch plus the backup, whatever the shard count"
        );
        assert_eq!(regions[0].occupied(), 4);
        let total: usize = regions.iter().map(|r| r.capacity()).sum();
        assert_eq!(total, backend.capacity());
    }

    #[test]
    fn steal_walk_charges_the_full_budget_of_skipped_shards() {
        let backend = sharded_backend(16, 8);
        assert_eq!(backend.num_shards(), 2);
        // Fill shard 0 completely.
        for local in 0..backend.shard_capacity() {
            assert!(backend.force_occupy(Name::new(local)));
        }
        let mut rng = default_rng(9);
        let got = backend.try_get(&mut rng, 0).expect("shard 1 is empty");
        assert!(
            got.name().index() >= backend.shard_capacity(),
            "must have stolen from shard 1"
        );
        let shard0_budget = match &backend {
            CellBackend::Sharded(g) => g.shards[0].0.exhausted_probe_count(),
            CellBackend::Flat(_) => unreachable!(),
        };
        assert!(got.probes() > shard0_budget);
        // And the whole-backend exhausted budget is the sum over shards.
        assert_eq!(
            backend.exhausted_probe_count(),
            shard0_budget * 2,
            "both shards share one sizing, so the budget doubles"
        );
    }

    #[test]
    fn hybrid_split_rescales_per_shard() {
        // n = 64 → main 128, batch-0 boundary 96.  With groups of 16 (4
        // shards of main 32) the per-shard split must shrink to ≤ 32.
        let config = LevelArrayConfig::new(64).hybrid_layout().shard_group(16);
        let backend = CellBackend::build(&config, 64).unwrap();
        match &backend {
            CellBackend::Sharded(g) => {
                let layout = g.shards[0].0.slot_layout();
                match layout {
                    SlotLayout::Hybrid { packed_from } => {
                        assert!(packed_from <= g.shards[0].0.main_len());
                        assert_eq!(packed_from, 24, "96 split 4 ways");
                    }
                    other => panic!("expected a hybrid shard layout, got {other:?}"),
                }
            }
            CellBackend::Flat(_) => panic!("expected a sharded backend"),
        }
    }
}
