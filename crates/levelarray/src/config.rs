//! Configuration for the [`crate::LevelArray`].
//!
//! The defaults reproduce the configuration benchmarked in the paper (§6):
//! a main array of `2n` slots, first batch `3n/2`, **one** probe per batch, a
//! backup array of `n` slots, and compare-and-swap as the test-and-set
//! primitive.  Every knob called out in DESIGN.md §7 ("design decisions for
//! ablation") is exposed here.

use std::fmt;

use crate::balance::BalanceReport;
use crate::geometry::{BatchGeometry, GeometryError};
use crate::occupancy::OccupancySnapshot;
use crate::slot::{SlotLayout, TasKind};

/// How many random probes a `Get` performs in each batch before moving on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProbePolicy {
    /// The same number of probes in every batch.  The paper's implementation
    /// uses `Uniform(1)`; its analysis assumes a larger constant (≥ 16) purely
    /// to obtain high-probability concentration bounds.
    Uniform(u32),
    /// An explicit per-batch count `c_i`; batches beyond the end of the vector
    /// reuse the last entry.
    PerBatch(Vec<u32>),
}

impl Default for ProbePolicy {
    fn default() -> Self {
        ProbePolicy::Uniform(1)
    }
}

impl ProbePolicy {
    /// The number of probes to perform in batch `i`.
    pub fn probes_in_batch(&self, i: usize) -> u32 {
        match self {
            ProbePolicy::Uniform(c) => *c,
            ProbePolicy::PerBatch(v) => *v
                .get(i)
                .or_else(|| v.last())
                .expect("validated non-empty in LevelArrayConfig::validate"),
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ProbePolicy::Uniform(0) => Err(ConfigError::ZeroProbes),
            ProbePolicy::Uniform(_) => Ok(()),
            ProbePolicy::PerBatch(v) if v.is_empty() => Err(ConfigError::EmptyProbeVector),
            ProbePolicy::PerBatch(v) if v.contains(&0) => Err(ConfigError::ZeroProbes),
            ProbePolicy::PerBatch(_) => Ok(()),
        }
    }
}

/// How an elastic array reacts when its newest epoch saturates (every random
/// probe lost *and* the sequential backup region is full).
///
/// The policy is the knob behind [`crate::ElasticLevelArray`]: `Fixed`
/// reproduces the paper's fixed-contention-bound model, `Doubling` opens a
/// fresh epoch of twice the previous contention bound, migrating new
/// registrations to it while the old epochs drain and are eventually retired.
///
/// # Examples
///
/// ```
/// use levelarray::{ActivityArray, GrowthPolicy, LevelArrayConfig};
/// use larng::default_rng;
///
/// // Start tiny (n = 4) but allow the array to double through 3 epochs.
/// let array = LevelArrayConfig::new(4)
///     .growth(GrowthPolicy::Doubling { max_epochs: 3 })
///     .build_elastic()
///     .unwrap();
/// let mut rng = default_rng(1);
///
/// // Register far beyond the initial sizing: Get never fails, it opens new
/// // epochs (4 -> 8 -> 16) as each generation saturates.
/// let names: Vec<_> = (0..40).map(|_| array.get(&mut rng).name()).collect();
/// assert!(array.num_epochs() >= 2, "the array must have grown");
/// assert!(names.iter().any(|n| n.epoch() > 0), "later names carry the epoch tag");
///
/// // Draining an old epoch lets the chain shrink back.
/// for name in names {
///     array.free(name);
/// }
/// array.try_retire();
/// assert_eq!(array.num_epochs(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum GrowthPolicy {
    /// Never grow: the initial epoch is the whole structure.  An elastic
    /// array under this policy behaves like a plain [`crate::LevelArray`]
    /// whose names happen to carry an (always-zero) epoch tag.
    #[default]
    Fixed,
    /// Open a new epoch of doubled contention bound whenever the newest
    /// epoch saturates, keeping at most `max_epochs` epochs alive at once.
    /// When the chain is at its bound, `Get` falls back to probing the older
    /// epochs instead of growing.
    Doubling {
        /// Upper bound on simultaneously live epochs (must be at least 1).
        max_epochs: usize,
    },
}

impl GrowthPolicy {
    /// The maximum number of simultaneously live epochs this policy allows.
    pub fn max_live_epochs(&self) -> usize {
        match self {
            GrowthPolicy::Fixed => 1,
            GrowthPolicy::Doubling { max_epochs } => *max_epochs,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        match self {
            GrowthPolicy::Doubling { max_epochs: 0 } => Err(ConfigError::ZeroEpochs),
            _ => Ok(()),
        }
    }
}

/// Builder-style configuration for a [`crate::LevelArray`].
///
/// # Examples
///
/// ```
/// use levelarray::{ActivityArray, LevelArrayConfig};
///
/// // The paper's benchmark configuration for 32 threads.
/// let array = LevelArrayConfig::new(32).build().unwrap();
/// assert_eq!(array.capacity(), 32 * 2 + 32); // main (2n) + backup (n)
///
/// // An ablation: 4x space, two probes per batch, no backup.
/// let wide = LevelArrayConfig::new(32)
///     .space_factor(4.0)
///     .probes_per_batch(2)
///     .backup(false)
///     .build()
///     .unwrap();
/// assert_eq!(wide.capacity(), 32 * 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LevelArrayConfig {
    max_concurrency: usize,
    space_factor: f64,
    first_batch_fraction: f64,
    probe_policy: ProbePolicy,
    backup: bool,
    tas_kind: TasKind,
    slot_layout: SlotLayout,
    growth: GrowthPolicy,
    auto_retire: bool,
    pin_stripes: usize,
    free_hint: bool,
    shard_group: usize,
    shrink_watermark: Option<f64>,
    lease_ms: Option<u64>,
    stuck_pin_threshold_ms: u64,
}

/// Default stuck-pin watchdog threshold (see
/// [`LevelArrayConfig::stuck_pin_threshold_ms`]): a pin stuck for a full
/// second is pathological on any schedule a healthy client runs — normal
/// pins live for one `Get`/`Free`/`Collect`, i.e. microseconds.
pub const DEFAULT_STUCK_PIN_THRESHOLD_MS: u64 = 1000;

/// The committed default shard-group size for
/// [`LevelArrayConfig::hierarchical`]: the per-group contention bound at
/// which an elastic epoch splits into one more cache-padded shard.  Picked
/// from the `bench-topology` shard-scaling sweep (see
/// `bench/baselines/smoke.json`, the `sweeps/hier/*` cells): groups of 64
/// keep each shard's hot batch-0 lines private to a handful of threads
/// while leaving the per-shard arrays large enough that the paper's O(1)
/// expected probing is undisturbed.
pub const DEFAULT_SHARD_GROUP: usize = 64;

/// The committed default shrink watermark for
/// [`LevelArrayConfig::hierarchical`]: the long-term fill fraction of the
/// newest epoch below which the chain opens a *smaller* epoch and retires
/// the large one.  1/4 sits well under the self-healing balance thresholds
/// (paper §5), so a shrink never fires on an epoch the workload still
/// meaningfully uses, and a freshly halved epoch (fill ≈ 2× the old one's)
/// does not immediately re-trigger.
pub const DEFAULT_SHRINK_WATERMARK: f64 = 0.25;

impl LevelArrayConfig {
    /// Starts a configuration for at most `max_concurrency` simultaneously
    /// registered processes (the paper's `n`).
    pub fn new(max_concurrency: usize) -> Self {
        LevelArrayConfig {
            max_concurrency,
            space_factor: 2.0,
            first_batch_fraction: BatchGeometry::DEFAULT_FIRST_FRACTION,
            probe_policy: ProbePolicy::default(),
            backup: true,
            tas_kind: TasKind::default(),
            slot_layout: SlotLayout::default(),
            growth: GrowthPolicy::default(),
            auto_retire: true,
            pin_stripes: crate::epoch_chain::DEFAULT_PIN_STRIPES,
            free_hint: false,
            shard_group: 0,
            shrink_watermark: None,
            lease_ms: None,
            stuck_pin_threshold_ms: DEFAULT_STUCK_PIN_THRESHOLD_MS,
        }
    }

    /// Replaces the contention bound, keeping every other knob.  This is how
    /// [`crate::ShardedLevelArray`] derives its per-shard configuration from
    /// one shared workload configuration.
    pub fn with_contention(mut self, max_concurrency: usize) -> Self {
        self.max_concurrency = max_concurrency;
        self
    }

    /// Sets the ratio between the main-array length and `n` (the paper's
    /// evaluation uses values in `[2, 4]`; the algorithm requires `> 1`).
    pub fn space_factor(mut self, factor: f64) -> Self {
        self.space_factor = factor;
        self
    }

    /// Sets the fraction of the main array given to batch 0 (paper: 3/4).
    pub fn first_batch_fraction(mut self, fraction: f64) -> Self {
        self.first_batch_fraction = fraction;
        self
    }

    /// Sets a uniform number of probes per batch (paper implementation: 1).
    pub fn probes_per_batch(mut self, probes: u32) -> Self {
        self.probe_policy = ProbePolicy::Uniform(probes);
        self
    }

    /// Sets an explicit per-batch probe count `c_i` (paper analysis: ≥ 16).
    pub fn probe_policy(mut self, policy: ProbePolicy) -> Self {
        self.probe_policy = policy;
        self
    }

    /// Enables or disables the sequential backup array (paper: enabled, size
    /// exactly `n`).  Disabling it makes `try_get` return `None` when all
    /// random probes fail, which is useful for studying the main array alone.
    pub fn backup(mut self, enabled: bool) -> Self {
        self.backup = enabled;
        self
    }

    /// Selects the test-and-set primitive (ablation knob).
    pub fn tas_kind(mut self, kind: TasKind) -> Self {
        self.tas_kind = kind;
        self
    }

    /// Selects the slot representation (default:
    /// [`SlotLayout::WordPerSlot`]).  [`SlotLayout::Packed`] stores 64 slots
    /// per atomic word so `Collect` and the occupancy censuses scan 32× less
    /// memory, at the price of denser false sharing between concurrent
    /// `Get`s; both layouts behave identically (see [`SlotLayout`]).  Every
    /// build honors it — flat, sharded and elastic all thread it through the
    /// shared probing core.
    pub fn slot_layout(mut self, layout: SlotLayout) -> Self {
        self.slot_layout = layout;
        self
    }

    /// The slot representation this configuration carries.
    pub fn slot_layout_value(&self) -> SlotLayout {
        self.slot_layout
    }

    /// Selects [`SlotLayout::Hybrid`] with the default crossover: the
    /// boundary of batch 0, computed from the *current* contention bound,
    /// space factor and first-batch fraction.
    ///
    /// Batch 0 is where a `Get`'s first — and under the paper's default
    /// policy usually only — random probe lands, so it takes the CAS storms;
    /// keeping it word-per-slot avoids packed-word false sharing there while
    /// the scan-dominated tail batches and the backup region stay packed.
    /// The layout-ablation sweep (`make bench-layout`) measures this
    /// crossover against both pure layouts.
    ///
    /// Call this *after* setting [`LevelArrayConfig::space_factor`] /
    /// [`LevelArrayConfig::first_batch_fraction`]; like every explicit
    /// [`SlotLayout::Hybrid`], the split is validated against the main-array
    /// length by [`LevelArrayConfig::validate`].
    #[must_use = "builder methods return the updated configuration"]
    pub fn hybrid_layout(mut self) -> Self {
        let packed_from = BatchGeometry::new(self.main_len(), self.first_batch_fraction)
            .map(|g| g.batch_len(0))
            .unwrap_or_else(|_| self.main_len());
        self.slot_layout = SlotLayout::Hybrid { packed_from };
        self
    }

    /// Enables or disables the Free→Get hint cache (default: disabled).
    ///
    /// With the hint enabled, every `free` records the released slot in a
    /// per-thread (per-epoch, for an elastic array) hint and the next
    /// same-thread `try_get` retries exactly that slot with one test-and-set
    /// *before* the probe sequence — making the common Free→Get pair a
    /// single cache-hot CAS.  A miss (the slot was stolen in between, or the
    /// hint belongs to a retired epoch) falls through to the unchanged probe
    /// path, so uniqueness and wait-freedom are untouched; the hint attempt
    /// is not counted as a probe because it sits outside the paper's probe
    /// sequence.
    ///
    /// The knob defaults to off because re-acquiring the just-freed slot
    /// keeps the occupancy distribution exactly where it was, which is the
    /// opposite of what the self-healing experiments (paper §5.2, the
    /// `healing` bench) are measuring — enable it for churn-heavy production
    /// workloads, leave it off when reproducing the paper's figures.
    #[must_use = "builder methods return the updated configuration"]
    pub fn free_hint(mut self, enabled: bool) -> Self {
        self.free_hint = enabled;
        self
    }

    /// Whether the Free→Get hint cache is enabled.
    pub fn free_hint_enabled(&self) -> bool {
        self.free_hint
    }

    /// Sets the shard-group size of an elastic build's epoch cells
    /// (default: 0 = flat epochs).  With a non-zero group size `g`, an epoch
    /// sized for contention bound `C` is materialized as
    /// `⌈C / g⌉` cache-padded shard cores instead of one flat core — so a
    /// [`GrowthPolicy::Doubling`] chain grows by *adding shard groups*
    /// (each doubling doubles the group count) rather than doubling one
    /// contended slab.  Threads keep sticky, topology-aware home shards
    /// within every epoch (see [`crate::topology::Topology`]); epoch-tagged
    /// names route through the shard split unambiguously (the index part is
    /// `shard · shard_capacity + local`).  Only
    /// [`LevelArrayConfig::build_elastic`] consults it.
    #[must_use = "builder methods return the updated configuration"]
    pub fn shard_group(mut self, group_size: usize) -> Self {
        self.shard_group = group_size;
        self
    }

    /// The shard-group size an elastic build uses (0 = flat epochs).
    pub fn shard_group_value(&self) -> usize {
        self.shard_group
    }

    /// Enables elastic shrink: when the newest epoch's occupancy stays at or
    /// below `watermark` (a fill fraction of its contention bound) for a
    /// sustained stretch of `free` traffic, the chain opens a *smaller*
    /// epoch (half the bound, never below the initial one) and retires the
    /// large epoch through the same seal→grace→census→unlink protocol that
    /// retires drained predecessors after growth — run in reverse: the big
    /// cell drains while the small successor serves.  Disabled by default;
    /// only meaningful under [`GrowthPolicy::Doubling`].  Only
    /// [`LevelArrayConfig::build_elastic`] consults it.
    #[must_use = "builder methods return the updated configuration"]
    pub fn shrink_watermark(mut self, watermark: f64) -> Self {
        self.shrink_watermark = Some(watermark);
        self
    }

    /// The shrink watermark, if elastic shrink is enabled.
    pub fn shrink_watermark_value(&self) -> Option<f64> {
        self.shrink_watermark
    }

    /// Enables the heartbeat/lease layer with the given lease duration: a
    /// [`crate::lease::LeaseRegistry`] built from this configuration
    /// quarantines names whose holder has not heartbeat within `lease_ms`
    /// milliseconds, and reclaims them one sweep later (see
    /// `docs/ROBUSTNESS.md`).  Off by default — the lease layer costs one
    /// map entry and one timestamp store per heartbeat, and most
    /// deployments have supervised clients that never crash-leak.  A value
    /// of `0` is treated as disabled.
    #[must_use = "builder methods return the updated configuration"]
    pub fn lease_ms(mut self, lease_ms: u64) -> Self {
        self.lease_ms = if lease_ms == 0 { None } else { Some(lease_ms) };
        self
    }

    /// The lease duration, if the heartbeat/lease layer is enabled.
    pub fn lease_ms_value(&self) -> Option<u64> {
        self.lease_ms
    }

    /// Sets the stuck-pin watchdog threshold (default
    /// [`DEFAULT_STUCK_PIN_THRESHOLD_MS`]): when an elastic array's
    /// retirement grace observation fails *and* the oldest active chain pin
    /// is at least this old, the array stops hammering retirement and
    /// defers it (and shrink) under a capped exponential backoff instead of
    /// livelocking against a wedged reader.  See
    /// [`crate::ElasticLevelArray::robustness_report`].
    #[must_use = "builder methods return the updated configuration"]
    pub fn stuck_pin_threshold_ms(mut self, threshold_ms: u64) -> Self {
        self.stuck_pin_threshold_ms = threshold_ms;
        self
    }

    /// The stuck-pin watchdog threshold in milliseconds.
    pub fn stuck_pin_threshold_ms_value(&self) -> u64 {
        self.stuck_pin_threshold_ms
    }

    /// The hierarchical preset: elastic epochs sharded into groups of
    /// [`DEFAULT_SHARD_GROUP`] and shrink at [`DEFAULT_SHRINK_WATERMARK`] —
    /// the defaults the `bench-topology` sweeps committed.  Combine with
    /// [`LevelArrayConfig::growth`] and build with
    /// [`LevelArrayConfig::build_elastic`].
    #[must_use = "builder methods return the updated configuration"]
    pub fn hierarchical(self) -> Self {
        self.shard_group(DEFAULT_SHARD_GROUP)
            .shrink_watermark(DEFAULT_SHRINK_WATERMARK)
    }

    /// Selects the growth policy an elastic build uses when its newest epoch
    /// saturates (default: [`GrowthPolicy::Fixed`]).  Only
    /// [`LevelArrayConfig::build_elastic`] consults it; the fixed-size builds
    /// ignore it.
    pub fn growth(mut self, policy: GrowthPolicy) -> Self {
        self.growth = policy;
        self
    }

    /// The growth policy this configuration carries.
    pub fn growth_policy(&self) -> GrowthPolicy {
        self.growth
    }

    /// Enables or disables the deferred retirement check a draining `Free`
    /// schedules on an elastic array (default: enabled).  With it disabled,
    /// drained epochs are only retired by explicit
    /// [`crate::ElasticLevelArray::try_retire`] calls — useful when the
    /// caller wants to batch retirement onto a maintenance thread.  Only
    /// [`LevelArrayConfig::build_elastic`] consults it.
    pub fn auto_retire(mut self, enabled: bool) -> Self {
        self.auto_retire = enabled;
        self
    }

    /// Whether a draining `Free` on an elastic array schedules the deferred
    /// retirement check.
    pub fn auto_retire_enabled(&self) -> bool {
        self.auto_retire
    }

    /// Sets the number of cache-padded grace-counter stripes the elastic
    /// epoch chain uses to track in-flight operations (default:
    /// [`crate::epoch_chain::DEFAULT_PIN_STRIPES`]).  More stripes mean less
    /// pin/unpin contention between reader threads but a longer all-zero
    /// observation during retirement and reclamation.  Only
    /// [`LevelArrayConfig::build_elastic`] consults it.
    pub fn pin_stripes(mut self, stripes: usize) -> Self {
        self.pin_stripes = stripes;
        self
    }

    /// The grace-counter stripe count an elastic build uses.
    pub fn pin_stripes_value(&self) -> usize {
        self.pin_stripes
    }

    /// The contention bound `n` this configuration targets.
    pub fn max_concurrency_value(&self) -> usize {
        self.max_concurrency
    }

    /// The main-array length this configuration produces:
    /// `⌊n · space_factor⌋`, clamped to at least one slot.
    ///
    /// This is the workspace's *single* sizing rule: the LevelArray's own
    /// geometry, the flat baselines, and the bench harness all size their
    /// arrays through it, so "`L` slots for contention bound `n`" always means
    /// the same number everywhere.
    pub fn main_len(&self) -> usize {
        (((self.max_concurrency as f64) * self.space_factor).floor() as usize).max(1)
    }

    /// Evaluates the paper's balance definitions (§5, Definition 2) against a
    /// snapshot taken from an array built with this configuration, using this
    /// configuration's contention bound.
    pub fn balance_report(&self, snapshot: &OccupancySnapshot) -> BalanceReport {
        BalanceReport::from_snapshot(snapshot, self.max_concurrency)
    }

    /// Validates the configuration and materializes the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if `n == 0`, the space factor is not a finite
    /// value `≥ 1`, the first-batch fraction is outside `(0, 1)`, or the probe
    /// policy asks for zero probes.
    pub fn validate(&self) -> Result<ValidatedConfig, ConfigError> {
        if self.max_concurrency == 0 {
            return Err(ConfigError::ZeroConcurrency);
        }
        if !self.space_factor.is_finite() || self.space_factor < 1.0 {
            return Err(ConfigError::InvalidSpaceFactor(self.space_factor));
        }
        self.probe_policy.validate()?;
        self.growth.validate()?;
        if self.pin_stripes == 0 {
            return Err(ConfigError::ZeroPinStripes);
        }
        if let Some(w) = self.shrink_watermark {
            if !w.is_finite() || w <= 0.0 || w >= 1.0 {
                return Err(ConfigError::InvalidShrinkWatermark(w));
            }
        }
        if let SlotLayout::Hybrid { packed_from } = self.slot_layout {
            if packed_from > self.main_len() {
                return Err(ConfigError::HybridSplitOutOfRange {
                    packed_from,
                    main_len: self.main_len(),
                });
            }
        }

        let geometry = BatchGeometry::new(self.main_len(), self.first_batch_fraction)
            .map_err(ConfigError::Geometry)?;
        let backup_len = if self.backup { self.max_concurrency } else { 0 };

        Ok(ValidatedConfig {
            max_concurrency: self.max_concurrency,
            geometry,
            backup_len,
            probe_policy: self.probe_policy.clone(),
            tas_kind: self.tas_kind,
            slot_layout: self.slot_layout,
            free_hint: self.free_hint,
        })
    }

    /// Validates the configuration and builds the [`crate::LevelArray`].
    ///
    /// # Errors
    ///
    /// See [`LevelArrayConfig::validate`].
    pub fn build(&self) -> Result<crate::LevelArray, ConfigError> {
        Ok(crate::LevelArray::from_validated(self.validate()?))
    }

    /// Validates the configuration and builds a [`crate::ShardedLevelArray`]
    /// that partitions this contention bound across `shards` shards.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroShards`] if `shards == 0`; otherwise see
    /// [`LevelArrayConfig::validate`] (applied to the per-shard
    /// configuration).
    pub fn build_sharded(&self, shards: usize) -> Result<crate::ShardedLevelArray, ConfigError> {
        crate::ShardedLevelArray::from_config(self, shards)
    }

    /// Validates the configuration and builds a [`crate::ElasticLevelArray`]
    /// whose initial epoch has this contention bound and whose growth follows
    /// [`LevelArrayConfig::growth_policy`].
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroEpochs`] if the growth policy allows zero
    /// live epochs; otherwise see [`LevelArrayConfig::validate`].
    pub fn build_elastic(&self) -> Result<crate::ElasticLevelArray, ConfigError> {
        crate::ElasticLevelArray::from_config(self)
    }
}

/// A fully validated configuration, ready to materialize a `LevelArray`.
#[derive(Debug, Clone)]
pub struct ValidatedConfig {
    pub(crate) max_concurrency: usize,
    pub(crate) geometry: BatchGeometry,
    pub(crate) backup_len: usize,
    pub(crate) probe_policy: ProbePolicy,
    pub(crate) tas_kind: TasKind,
    pub(crate) slot_layout: SlotLayout,
    pub(crate) free_hint: bool,
}

impl ValidatedConfig {
    /// Materializes the probing core this configuration describes (the slots,
    /// geometry, probe policy and TAS primitive — everything except the
    /// contention bound, which belongs to the facade).
    pub fn into_probe_core(self) -> crate::probe_core::ProbeCore {
        crate::probe_core::ProbeCore::new(
            self.geometry,
            self.backup_len,
            self.probe_policy,
            self.tas_kind,
            self.slot_layout,
        )
    }
}

/// Errors produced while validating a [`LevelArrayConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `max_concurrency` was zero.
    ZeroConcurrency,
    /// The space factor was below 1 or not finite.
    InvalidSpaceFactor(f64),
    /// A probe policy requested zero probes in some batch.
    ZeroProbes,
    /// A per-batch probe policy was given an empty vector.
    EmptyProbeVector,
    /// The derived geometry was invalid (bad first-batch fraction).
    Geometry(GeometryError),
    /// A hybrid layout's `packed_from` split exceeded the main-array length.
    HybridSplitOutOfRange {
        /// The requested crossover index.
        packed_from: usize,
        /// The main-array length it must not exceed.
        main_len: usize,
    },
    /// A sharded build was requested with zero shards.
    ZeroShards,
    /// An elastic growth policy allowed zero live epochs.
    ZeroEpochs,
    /// The elastic grace counter was configured with zero pin stripes.
    ZeroPinStripes,
    /// A shrink watermark was outside the open interval `(0, 1)`.
    InvalidShrinkWatermark(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroConcurrency => write!(f, "max concurrency must be at least 1"),
            ConfigError::InvalidSpaceFactor(x) => {
                write!(f, "space factor must be a finite value >= 1, got {x}")
            }
            ConfigError::ZeroProbes => write!(f, "probe counts must be at least 1"),
            ConfigError::EmptyProbeVector => {
                write!(f, "per-batch probe policy needs at least one entry")
            }
            ConfigError::Geometry(e) => write!(f, "invalid geometry: {e}"),
            ConfigError::HybridSplitOutOfRange {
                packed_from,
                main_len,
            } => write!(
                f,
                "hybrid layout split {packed_from} exceeds the main-array length {main_len}"
            ),
            ConfigError::ZeroShards => write!(f, "a sharded array needs at least one shard"),
            ConfigError::ZeroEpochs => {
                write!(f, "an elastic growth policy needs at least one live epoch")
            }
            ConfigError::ZeroPinStripes => {
                write!(f, "the elastic grace counter needs at least one pin stripe")
            }
            ConfigError::InvalidShrinkWatermark(w) => {
                write!(
                    f,
                    "a shrink watermark must be a fill fraction strictly between 0 and 1, got {w}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Geometry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeometryError> for ConfigError {
    fn from(e: GeometryError) -> Self {
        ConfigError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ActivityArray;

    #[test]
    fn default_configuration_matches_paper() {
        let v = LevelArrayConfig::new(64).validate().unwrap();
        assert_eq!(v.max_concurrency, 64);
        assert_eq!(v.geometry.main_len(), 128);
        assert_eq!(v.geometry.batch_len(0), 96);
        assert_eq!(v.backup_len, 64);
        assert_eq!(v.probe_policy.probes_in_batch(0), 1);
        assert_eq!(v.tas_kind, TasKind::CompareExchange);
        assert_eq!(v.slot_layout, SlotLayout::WordPerSlot);
    }

    #[test]
    fn slot_layout_knob_round_trips_into_every_build() {
        let config = LevelArrayConfig::new(8).slot_layout(SlotLayout::Packed);
        assert_eq!(config.slot_layout_value(), SlotLayout::Packed);
        assert_eq!(config.validate().unwrap().slot_layout, SlotLayout::Packed);
        let flat = config.build().unwrap();
        assert_eq!(flat.slot_layout(), SlotLayout::Packed);
        let sharded = config.build_sharded(2).unwrap();
        assert_eq!(sharded.slot_layout(), SlotLayout::Packed);
        let elastic = config.build_elastic().unwrap();
        assert_eq!(elastic.slot_layout(), SlotLayout::Packed);
        // The default stays word-per-slot.
        assert_eq!(
            LevelArrayConfig::new(8).slot_layout_value(),
            SlotLayout::WordPerSlot
        );
    }

    #[test]
    fn space_factor_scales_main_array() {
        for factor in [2.0, 2.5, 3.0, 4.0] {
            let v = LevelArrayConfig::new(100)
                .space_factor(factor)
                .validate()
                .unwrap();
            assert_eq!(v.geometry.main_len(), (100.0 * factor) as usize);
        }
    }

    #[test]
    fn disabling_backup_removes_it() {
        let v = LevelArrayConfig::new(10).backup(false).validate().unwrap();
        assert_eq!(v.backup_len, 0);
    }

    #[test]
    fn probe_policies() {
        assert_eq!(ProbePolicy::Uniform(3).probes_in_batch(7), 3);
        let per = ProbePolicy::PerBatch(vec![16, 8, 4]);
        assert_eq!(per.probes_in_batch(0), 16);
        assert_eq!(per.probes_in_batch(2), 4);
        // Batches past the end reuse the last entry.
        assert_eq!(per.probes_in_batch(9), 4);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert_eq!(
            LevelArrayConfig::new(0).validate().unwrap_err(),
            ConfigError::ZeroConcurrency
        );
        assert!(matches!(
            LevelArrayConfig::new(4)
                .space_factor(0.5)
                .validate()
                .unwrap_err(),
            ConfigError::InvalidSpaceFactor(_)
        ));
        assert!(matches!(
            LevelArrayConfig::new(4)
                .space_factor(f64::INFINITY)
                .validate()
                .unwrap_err(),
            ConfigError::InvalidSpaceFactor(_)
        ));
        assert_eq!(
            LevelArrayConfig::new(4)
                .probes_per_batch(0)
                .validate()
                .unwrap_err(),
            ConfigError::ZeroProbes
        );
        assert_eq!(
            LevelArrayConfig::new(4)
                .probe_policy(ProbePolicy::PerBatch(vec![]))
                .validate()
                .unwrap_err(),
            ConfigError::EmptyProbeVector
        );
        assert!(matches!(
            LevelArrayConfig::new(4)
                .first_batch_fraction(1.5)
                .validate()
                .unwrap_err(),
            ConfigError::Geometry(_)
        ));
    }

    #[test]
    fn hybrid_layout_defaults_to_the_batch0_boundary() {
        // n = 64: main 128, batch 0 = 96 slots — the contended head.
        let config = LevelArrayConfig::new(64).hybrid_layout();
        assert_eq!(
            config.slot_layout_value(),
            SlotLayout::Hybrid { packed_from: 96 }
        );
        assert!(config.validate().is_ok());
        // The crossover follows the sizing knobs in effect when it is taken.
        let wide = LevelArrayConfig::new(64).space_factor(4.0).hybrid_layout();
        assert_eq!(
            wide.slot_layout_value(),
            SlotLayout::Hybrid { packed_from: 192 }
        );
    }

    #[test]
    fn hybrid_split_is_validated_against_the_main_length() {
        // Both edges are legal: 0 (fully packed main) and main_len (fully
        // word-per-slot main, packed backup).
        for packed_from in [0usize, 7, 16] {
            assert!(
                LevelArrayConfig::new(8)
                    .slot_layout(SlotLayout::Hybrid { packed_from })
                    .validate()
                    .is_ok(),
                "split {packed_from} should be accepted"
            );
        }
        let err = LevelArrayConfig::new(8)
            .slot_layout(SlotLayout::hybrid(17))
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::HybridSplitOutOfRange {
                packed_from: 17,
                main_len: 16
            }
        );
        assert!(err.to_string().contains("17"));
        assert!(err.to_string().contains("16"));
    }

    #[test]
    fn free_hint_knob_round_trips() {
        let config = LevelArrayConfig::new(8);
        assert!(!config.free_hint_enabled(), "hint cache defaults off");
        assert!(!config.validate().unwrap().free_hint);
        let hinted = config.free_hint(true);
        assert!(hinted.free_hint_enabled());
        assert!(hinted.validate().unwrap().free_hint);
    }

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e = ConfigError::Geometry(GeometryError::EmptyArray);
        assert!(e.to_string().contains("geometry"));
        assert!(e.source().is_some());
        assert!(ConfigError::ZeroConcurrency.source().is_none());
        assert!(ConfigError::InvalidSpaceFactor(0.1)
            .to_string()
            .contains("0.1"));
    }

    #[test]
    fn config_is_reusable_after_build() {
        let config = LevelArrayConfig::new(8);
        let a = config.build().unwrap();
        let b = config.build().unwrap();
        assert_eq!(a.capacity(), b.capacity());
    }

    #[test]
    fn growth_policy_defaults_and_bounds() {
        assert_eq!(GrowthPolicy::default(), GrowthPolicy::Fixed);
        assert_eq!(GrowthPolicy::Fixed.max_live_epochs(), 1);
        assert_eq!(
            GrowthPolicy::Doubling { max_epochs: 5 }.max_live_epochs(),
            5
        );
        assert_eq!(
            LevelArrayConfig::new(8).growth_policy(),
            GrowthPolicy::Fixed
        );
        let grown = LevelArrayConfig::new(8).growth(GrowthPolicy::Doubling { max_epochs: 3 });
        assert_eq!(
            grown.growth_policy(),
            GrowthPolicy::Doubling { max_epochs: 3 }
        );
    }

    #[test]
    fn retirement_knobs_default_and_validate() {
        let config = LevelArrayConfig::new(8);
        assert!(config.auto_retire_enabled());
        assert_eq!(
            config.pin_stripes_value(),
            crate::epoch_chain::DEFAULT_PIN_STRIPES
        );
        let tuned = LevelArrayConfig::new(8).auto_retire(false).pin_stripes(4);
        assert!(!tuned.auto_retire_enabled());
        assert_eq!(tuned.pin_stripes_value(), 4);
        assert!(tuned.validate().is_ok());
        assert_eq!(
            LevelArrayConfig::new(8)
                .pin_stripes(0)
                .validate()
                .unwrap_err(),
            ConfigError::ZeroPinStripes
        );
        assert!(ConfigError::ZeroPinStripes.to_string().contains("stripe"));
    }

    #[test]
    fn zero_epoch_growth_is_rejected() {
        assert_eq!(
            LevelArrayConfig::new(8)
                .growth(GrowthPolicy::Doubling { max_epochs: 0 })
                .validate()
                .unwrap_err(),
            ConfigError::ZeroEpochs
        );
        assert!(ConfigError::ZeroEpochs.to_string().contains("epoch"));
    }
}
