//! The per-thread Free→Get hint cache.
//!
//! When a facade has the hint enabled ([`crate::LevelArrayConfig::free_hint`]),
//! every `free` records the released name here and the next same-thread
//! `try_get` on the same facade retries exactly that slot with one
//! test-and-set before entering the probe sequence.  The slot a thread just
//! freed is still exclusively cached by that thread's core, so the common
//! Free→Get churn pair becomes a single cache-hot CAS; a miss (the slot was
//! stolen in between) falls through to the unchanged probe path.
//!
//! The cache is keyed by a process-unique facade identity (the same scheme
//! the sharded facade uses for its sticky `HOME_TOKEN`), so two arrays on
//! one thread never trade hints — in particular, the differential
//! conformance suite drives a word-per-slot and a packed instance in
//! lockstep, and each must hit its own hint.  A taken entry is cleared
//! (hints are single-shot) and re-armed by the next `free`.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::name::Name;

/// Entries each thread keeps — one per facade instance it recently freed on.
/// Small and linear-scanned: the hot case is the first entry.
const ENTRIES: usize = 4;

/// Allocates a process-unique identity for one hint-using facade instance.
pub(crate) fn next_array_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// The calling thread's most recent frees, newest first, keyed by the
    /// owning facade's identity.
    static HINTS: Cell<[Option<(u64, Name)>; ENTRIES]> = const { Cell::new([None; ENTRIES]) };
}

/// Records `name` as the freshest hint for facade `array`, evicting any
/// previous hint of the same facade (and, at capacity, the oldest entry).
pub(crate) fn record(array: u64, name: Name) {
    HINTS.with(|cell| {
        let entries = cell.get();
        let mut next = [None; ENTRIES];
        next[0] = Some((array, name));
        let mut at = 1;
        for entry in entries {
            if at == ENTRIES {
                break;
            }
            match entry {
                Some((a, _)) if a == array => {}
                Some(_) => {
                    next[at] = entry;
                    at += 1;
                }
                None => {}
            }
        }
        cell.set(next);
    });
}

/// Takes (and clears) the calling thread's hint for facade `array`, if any.
pub(crate) fn take(array: u64) -> Option<Name> {
    HINTS.with(|cell| {
        let mut entries = cell.get();
        for slot in entries.iter_mut() {
            if let Some((a, name)) = *slot {
                if a == array {
                    *slot = None;
                    cell.set(entries);
                    return Some(name);
                }
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = next_array_id();
        let b = next_array_id();
        assert_ne!(a, b);
    }

    #[test]
    fn record_take_round_trips_and_is_single_shot() {
        let id = next_array_id();
        assert_eq!(take(id), None);
        record(id, Name::new(7));
        assert_eq!(take(id), Some(Name::new(7)));
        assert_eq!(take(id), None, "hints are single-shot");
    }

    #[test]
    fn facades_do_not_trade_hints() {
        let a = next_array_id();
        let b = next_array_id();
        record(a, Name::new(1));
        record(b, Name::new(2));
        assert_eq!(take(a), Some(Name::new(1)));
        assert_eq!(take(b), Some(Name::new(2)));
    }

    #[test]
    fn a_newer_free_replaces_the_same_facades_hint() {
        let id = next_array_id();
        record(id, Name::new(1));
        record(id, Name::new(2));
        assert_eq!(take(id), Some(Name::new(2)));
        assert_eq!(take(id), None, "the replaced entry must not linger");
    }

    #[test]
    fn capacity_evicts_the_oldest_entry() {
        let ids: Vec<u64> = (0..=ENTRIES).map(|_| next_array_id()).collect();
        for (i, &id) in ids.iter().enumerate() {
            record(id, Name::new(i));
        }
        assert_eq!(take(ids[0]), None, "oldest entry is evicted");
        for (i, &id) in ids.iter().enumerate().skip(1) {
            assert_eq!(take(id), Some(Name::new(i)));
        }
    }
}
