//! Batch geometry: how the main array is split into levels (paper §4).
//!
//! For an array of size `2n` the paper uses `log n` batches where batch `B0`
//! holds the first `⌊3n/2⌋` locations and each later batch `Bi` holds
//! `⌊n/2^{i+1}⌋` locations.  [`BatchGeometry`] generalizes this to an arbitrary
//! main-array length `L` and first-batch fraction `f` (defaults `L = 2n`,
//! `f = 3/4`, which reproduce the paper exactly): batch 0 has `⌊f·L⌋` slots and
//! batch `i ≥ 1` has `⌊(1−f)·L/2^i⌋` slots; slots lost to rounding are folded
//! into the last batch so that every location belongs to exactly one batch.

use std::fmt;
use std::ops::Range;

/// The partition of the main array into geometrically shrinking batches.
///
/// # Examples
///
/// ```
/// use levelarray::geometry::BatchGeometry;
///
/// // The paper's layout for n = 64: main array of 128 slots,
/// // batches of 96, 16, 8, 4, 2, 1, 1 slots.
/// let g = BatchGeometry::for_contention(64);
/// assert_eq!(g.main_len(), 128);
/// assert_eq!(g.batch_len(0), 96);
/// assert_eq!(g.batch_len(1), 16);
/// assert_eq!(g.batch_of(100), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchGeometry {
    /// `starts[i]..starts[i + 1]` is the index range of batch `i`.
    starts: Vec<usize>,
}

/// Error returned when a geometry cannot be constructed from the requested
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// The main array must contain at least one slot.
    EmptyArray,
    /// The first-batch fraction must lie strictly between 0 and 1.
    InvalidFraction(f64),
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyArray => write!(f, "main array must have at least one slot"),
            GeometryError::InvalidFraction(x) => {
                write!(f, "first-batch fraction must be in (0, 1), got {x}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

impl BatchGeometry {
    /// The paper's default first-batch fraction: batch 0 takes 3/4 of the main
    /// array (i.e. `3n/2` slots of a `2n`-slot array).
    pub const DEFAULT_FIRST_FRACTION: f64 = 0.75;

    /// Builds the paper's geometry for a contention bound `n`: a main array of
    /// `2n` slots with first-batch fraction 3/4.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn for_contention(n: usize) -> Self {
        assert!(n > 0, "contention bound must be at least 1");
        Self::new(2 * n, Self::DEFAULT_FIRST_FRACTION)
            .expect("2n slots with fraction 3/4 is always valid")
    }

    /// Builds a geometry over `main_len` slots with the given first-batch
    /// fraction.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::EmptyArray`] if `main_len == 0` and
    /// [`GeometryError::InvalidFraction`] if `first_fraction` is not strictly
    /// between 0 and 1 (or is not finite).
    pub fn new(main_len: usize, first_fraction: f64) -> Result<Self, GeometryError> {
        if main_len == 0 {
            return Err(GeometryError::EmptyArray);
        }
        if !first_fraction.is_finite() || first_fraction <= 0.0 || first_fraction >= 1.0 {
            return Err(GeometryError::InvalidFraction(first_fraction));
        }

        let first = ((main_len as f64) * first_fraction).floor() as usize;
        let first = first.clamp(1, main_len);

        let mut starts = vec![0, first];
        let tail = main_len - first;
        let mut covered = first;
        let mut i = 1u32;
        loop {
            // Batch i >= 1 gets floor(tail / 2^i) slots.
            let size = tail >> i;
            if size == 0 || covered + size > main_len {
                break;
            }
            covered += size;
            starts.push(covered);
            i += 1;
        }
        // Fold slots lost to rounding into the last batch.
        if covered < main_len {
            *starts.last_mut().expect("at least batch 0 exists") = main_len;
        }
        Ok(BatchGeometry { starts })
    }

    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of slots in the main array.
    pub fn main_len(&self) -> usize {
        *self.starts.last().expect("non-empty")
    }

    /// The slot-index range of batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches()`.
    pub fn batch_range(&self, i: usize) -> Range<usize> {
        assert!(i < self.num_batches(), "batch {i} out of range");
        self.starts[i]..self.starts[i + 1]
    }

    /// The number of slots in batch `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_batches()`.
    pub fn batch_len(&self, i: usize) -> usize {
        let r = self.batch_range(i);
        r.end - r.start
    }

    /// The batch containing slot index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= main_len()`.
    pub fn batch_of(&self, idx: usize) -> usize {
        assert!(idx < self.main_len(), "index {idx} outside the main array");
        // starts is sorted; find the last start <= idx.
        match self.starts.binary_search(&idx) {
            Ok(pos) if pos == self.num_batches() => pos - 1,
            Ok(pos) => pos,
            Err(pos) => pos - 1,
        }
    }

    /// Iterates over the batch ranges in order.
    pub fn batches(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.num_batches()).map(move |i| self.batch_range(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_for_power_of_two() {
        // n = 64: 2n = 128; B0 = 96, then 16, 8, 4, 2, 1, 1 (the final 1 is the
        // rounding remainder folded into the last batch).
        let g = BatchGeometry::for_contention(64);
        assert_eq!(g.main_len(), 128);
        assert_eq!(g.batch_len(0), 96);
        assert_eq!(g.batch_len(1), 16);
        assert_eq!(g.batch_len(2), 8);
        assert_eq!(g.batch_len(3), 4);
        let total: usize = g.batches().map(|r| r.len()).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn batches_partition_the_array() {
        for n in [1usize, 2, 3, 5, 8, 17, 64, 100, 1000, 4096] {
            let g = BatchGeometry::for_contention(n);
            assert_eq!(g.main_len(), 2 * n, "n={n}");
            let mut expected_start = 0;
            for (i, r) in g.batches().enumerate() {
                assert_eq!(r.start, expected_start, "n={n} batch={i}");
                assert!(!r.is_empty(), "n={n} batch={i} empty");
                expected_start = r.end;
            }
            assert_eq!(expected_start, g.main_len(), "n={n}");
        }
    }

    #[test]
    fn batch_sizes_follow_paper_formula_before_rounding_tail() {
        // For power-of-two n, batch i >= 1 should have exactly n / 2^(i+1)
        // slots (except possibly the last batch which absorbs the remainder).
        for exp in 3..12u32 {
            let n = 1usize << exp;
            let g = BatchGeometry::for_contention(n);
            assert_eq!(g.batch_len(0), 3 * n / 2);
            for i in 1..g.num_batches() - 1 {
                assert_eq!(g.batch_len(i), n >> (i + 1), "n={n} batch={i}");
            }
        }
    }

    #[test]
    fn number_of_batches_is_logarithmic() {
        for exp in 1..16u32 {
            let n = 1usize << exp;
            let g = BatchGeometry::for_contention(n);
            let batches = g.num_batches();
            assert!(
                batches <= exp as usize + 1,
                "n={n}: {batches} batches > log2(n)+1"
            );
        }
    }

    #[test]
    fn batch_of_agrees_with_ranges() {
        for n in [1usize, 2, 7, 64, 100, 513] {
            let g = BatchGeometry::for_contention(n);
            for (i, r) in g.batches().enumerate() {
                assert_eq!(g.batch_of(r.start), i, "n={n}");
                assert_eq!(g.batch_of(r.end - 1), i, "n={n}");
            }
        }
    }

    #[test]
    fn tiny_arrays_are_single_batch() {
        let g = BatchGeometry::for_contention(1);
        assert_eq!(g.main_len(), 2);
        assert_eq!(g.num_batches(), 1);
        assert_eq!(g.batch_len(0), 2);
    }

    #[test]
    fn custom_fraction_and_length() {
        let g = BatchGeometry::new(100, 0.5).unwrap();
        assert_eq!(g.main_len(), 100);
        assert_eq!(g.batch_len(0), 50);
        assert_eq!(g.batch_len(1), 25);
        let total: usize = g.batches().map(|r| r.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert_eq!(BatchGeometry::new(0, 0.75), Err(GeometryError::EmptyArray));
        assert!(matches!(
            BatchGeometry::new(10, 0.0),
            Err(GeometryError::InvalidFraction(_))
        ));
        assert!(matches!(
            BatchGeometry::new(10, 1.0),
            Err(GeometryError::InvalidFraction(_))
        ));
        assert!(matches!(
            BatchGeometry::new(10, f64::NAN),
            Err(GeometryError::InvalidFraction(_))
        ));
        assert!(matches!(
            BatchGeometry::new(10, -0.5),
            Err(GeometryError::InvalidFraction(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(GeometryError::EmptyArray
            .to_string()
            .contains("at least one slot"));
        assert!(GeometryError::InvalidFraction(2.0)
            .to_string()
            .contains("2"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_range_out_of_range_panics() {
        let g = BatchGeometry::for_contention(4);
        let _ = g.batch_range(100);
    }

    #[test]
    #[should_panic(expected = "outside the main array")]
    fn batch_of_out_of_range_panics() {
        let g = BatchGeometry::for_contention(4);
        let _ = g.batch_of(8);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_contention_panics() {
        let _ = BatchGeometry::for_contention(0);
    }
}
