//! The LevelArray: the paper's long-lived renaming algorithm (§4).
//!
//! A `Get` walks the batches of the main array in increasing order, performing
//! `c_i` test-and-set probes on uniformly random slots of batch `i`, and stops
//! at the first probe it wins.  If every randomized probe loses (which the
//! analysis shows is vanishingly unlikely), it probes the backup array
//! *sequentially*, guaranteeing wait-freedom and a bounded namespace.  `Free`
//! resets the held slot; `Collect` scans every slot.

use larng::RandomSource;

use crate::array::{Acquired, ActivityArray};
use crate::config::{LevelArrayConfig, ProbePolicy, ValidatedConfig};
use crate::geometry::BatchGeometry;
use crate::name::Name;
use crate::occupancy::OccupancySnapshot;
use crate::probe_core::ProbeCore;
use crate::slot::{SlotLayout, TasKind};

/// The LevelArray long-lived renaming structure.
///
/// # Examples
///
/// Basic register / scan / deregister cycle:
///
/// ```
/// use levelarray::{ActivityArray, LevelArray};
/// use larng::default_rng;
///
/// let array = LevelArray::new(16);          // up to 16 concurrent holders
/// let mut rng = default_rng(1);
///
/// let got = array.get(&mut rng);
/// assert!(got.probes() >= 1);
/// assert!(array.collect().contains(&got.name()));
/// array.free(got.name());
/// assert!(array.collect().is_empty());
/// ```
///
/// Shared across threads (the intended use):
///
/// ```
/// use levelarray::{ActivityArray, LevelArray};
/// use larng::{default_rng, SeedSequence};
/// use std::sync::Arc;
///
/// let array = Arc::new(LevelArray::new(8));
/// let mut seeds = SeedSequence::new(42);
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let array = Arc::clone(&array);
///         let seed = seeds.next_seed();
///         scope.spawn(move || {
///             let mut rng = default_rng(seed);
///             for _ in 0..100 {
///                 let got = array.get(&mut rng);
///                 array.free(got.name());
///             }
///         });
///     }
/// });
/// assert!(array.collect().is_empty());
/// ```
#[derive(Debug)]
pub struct LevelArray {
    core: ProbeCore,
    max_concurrency: usize,
    /// Process-unique identity keying this instance's per-thread Free→Get
    /// hints (see [`crate::hint`]).
    array_id: u64,
    /// Whether `free` records — and `try_get` consults — the hint cache.
    free_hint: bool,
}

impl LevelArray {
    /// Creates a LevelArray with the paper's default configuration for at most
    /// `max_concurrency` simultaneously registered processes: a `2n`-slot main
    /// array (first batch `3n/2`), an `n`-slot backup array, one probe per
    /// batch, compare-and-swap as the TAS primitive.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrency == 0`.  Use [`LevelArrayConfig`] for
    /// fallible construction and for non-default parameters.
    pub fn new(max_concurrency: usize) -> Self {
        LevelArrayConfig::new(max_concurrency)
            .build()
            .expect("default configuration is valid for any non-zero contention bound")
    }

    pub(crate) fn from_validated(config: ValidatedConfig) -> Self {
        let max_concurrency = config.max_concurrency;
        let free_hint = config.free_hint;
        LevelArray {
            core: config.into_probe_core(),
            max_concurrency,
            array_id: crate::hint::next_array_id(),
            free_hint,
        }
    }

    /// Whether the Free→Get hint cache is enabled on this instance (the
    /// [`LevelArrayConfig::free_hint`] knob).
    pub fn free_hint_enabled(&self) -> bool {
        self.free_hint
    }

    /// The probing core this facade wraps: the slots, geometry, probe policy
    /// and TAS primitive, behind the reusable probing machinery shared with
    /// [`crate::ShardedLevelArray`].
    pub fn probe_core(&self) -> &ProbeCore {
        &self.core
    }

    /// The batch layout of the main array.
    pub fn geometry(&self) -> &BatchGeometry {
        self.core.geometry()
    }

    /// Number of slots in the main (randomly probed) array.
    pub fn main_len(&self) -> usize {
        self.core.main_len()
    }

    /// Number of slots in the sequential backup array (0 if disabled).
    pub fn backup_len(&self) -> usize {
        self.core.backup_len()
    }

    /// The test-and-set primitive this instance uses.
    pub fn tas_kind(&self) -> TasKind {
        self.core.tas_kind()
    }

    /// The slot representation this instance stores its registers in.
    pub fn slot_layout(&self) -> SlotLayout {
        self.core.slot_layout()
    }

    /// The paper's `Get`, monomorphized over the caller's random source so
    /// the per-probe draw inlines into the probing loop.  This inherent
    /// method shadows [`ActivityArray::try_get`] for callers holding the
    /// concrete type; the trait method remains the object-safe wrapper
    /// (`&mut dyn RandomSource` also works here, through the blanket
    /// `impl RandomSource for &mut R`).
    ///
    /// With the [`LevelArrayConfig::free_hint`] knob enabled, the slot this
    /// thread most recently freed here is retried with one test-and-set
    /// before the probe sequence; a miss falls through unchanged.
    #[must_use = "dropping the result leaks the acquired name"]
    pub fn try_get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Option<Acquired> {
        if self.free_hint {
            if let Some(name) = crate::hint::take(self.array_id) {
                if let Some(got) = self.core.hint_acquire(name) {
                    return Some(got);
                }
            }
        }
        self.core.try_get(rng)
    }

    /// The batched `Get`, monomorphized over the caller's random source (see
    /// [`ActivityArray::get_many`] for the contract).  With the
    /// [`LevelArrayConfig::free_hint`] knob enabled the hint cache is
    /// consulted once for the whole batch — a hit supplies the first name in
    /// one test-and-set — and the remainder takes the batched probing kernel
    /// ([`ProbeCore::try_get_many`]).
    pub fn get_many<R: RandomSource + ?Sized>(
        &self,
        rng: &mut R,
        k: usize,
        out: &mut Vec<Acquired>,
    ) -> usize {
        if k == 0 {
            return 0;
        }
        let mut acquired = 0usize;
        if self.free_hint {
            if let Some(name) = crate::hint::take(self.array_id) {
                if let Some(got) = self.core.hint_acquire(name) {
                    out.push(got);
                    acquired = 1;
                }
            }
        }
        let mut probes = 0u32;
        if acquired == 0 {
            return self.core.try_get_many(rng, k, &mut probes, out);
        }
        // A hint win is already in `out`; if the batched kernel panics it
        // rolls back its own wins (see [`ProbeCore::try_get_many`]), but the
        // hint win would leak.  Free it too so the batch stays
        // all-or-nothing.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.core.try_get_many(rng, k - 1, &mut probes, out)
        })) {
            Ok(won) => 1 + won,
            Err(payload) => {
                let _quiet = la_fault::suppress();
                let hinted = out.pop().expect("the hint win was just pushed");
                ActivityArray::free(self, hinted.name());
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Registers through the monomorphized hot path, panicking if the
    /// structure is exhausted (same contract as [`ActivityArray::get`]).
    ///
    /// # Panics
    ///
    /// Panics if no free slot could be acquired, i.e. the caller violated the
    /// contention bound.
    pub fn get<R: RandomSource + ?Sized>(&self, rng: &mut R) -> Acquired {
        self.try_get(rng).unwrap_or_else(|| {
            panic!(
                "{}: no free slot; the contention bound ({}) was exceeded",
                ActivityArray::algorithm_name(self),
                self.max_concurrency
            )
        })
    }

    /// The probe policy (`c_i`) this instance uses.
    pub fn probe_policy(&self) -> &ProbePolicy {
        self.core.probe_policy()
    }

    /// Whether `name` lies in the backup array.
    pub fn is_backup_name(&self, name: Name) -> bool {
        self.core.is_backup_name(name)
    }

    /// Directly occupies a specific slot, bypassing the probing strategy.
    ///
    /// Returns `true` if the slot was free and is now held by the caller.
    /// This is **not** part of the renaming protocol; it exists so that tests
    /// and the healing experiment (paper Figure 3) can place the array in an
    /// arbitrary — possibly unbalanced — initial state.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    #[must_use = "a false return means the slot was already held; ignoring it leaks the intent"]
    pub fn force_occupy(&self, name: Name) -> bool {
        self.core.force_occupy(name)
    }

    /// Reads whether a specific slot is currently held.
    ///
    /// # Panics
    ///
    /// Panics if `name` is out of range.
    pub fn is_held(&self, name: Name) -> bool {
        self.core.is_held(name)
    }

    /// The number of occupied slots in batch `i` of the main array.
    pub fn batch_occupancy(&self, i: usize) -> usize {
        self.core.batch_occupancy(i)
    }
}

impl ActivityArray for LevelArray {
    fn algorithm_name(&self) -> &'static str {
        "LevelArray"
    }

    fn try_get(&self, rng: &mut dyn RandomSource) -> Option<Acquired> {
        LevelArray::try_get(self, rng)
    }

    fn get_many(&self, rng: &mut dyn RandomSource, k: usize, out: &mut Vec<Acquired>) -> usize {
        LevelArray::get_many(self, rng, k, out)
    }

    fn free(&self, name: Name) {
        self.core.free(name);
        if self.free_hint {
            crate::hint::record(self.array_id, name);
        }
    }

    fn free_many(&self, names: &[Name]) {
        self.core.free_many(names);
        // Refill the Free→Get hint with the last name of the batch — the
        // bulk path must feed the cache exactly as a singleton loop's final
        // free would, not bypass it.
        if self.free_hint {
            if let Some(&last) = names.last() {
                crate::hint::record(self.array_id, last);
            }
        }
    }

    fn collect(&self) -> Vec<Name> {
        let mut held = Vec::new();
        self.core.collect_into(0, &mut held);
        held
    }

    fn collect_into(&self, out: &mut Vec<Name>) {
        self.core.collect_into(0, out);
    }

    fn capacity(&self) -> usize {
        self.core.capacity()
    }

    fn max_participants(&self) -> usize {
        self.max_concurrency
    }

    fn occupancy(&self) -> OccupancySnapshot {
        OccupancySnapshot::new(self.core.region_occupancies(|r| r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::BalanceReport;
    use crate::config::LevelArrayConfig;
    use larng::{default_rng, SequenceRng};
    use std::collections::HashSet;

    #[test]
    fn new_array_matches_paper_dimensions() {
        let array = LevelArray::new(64);
        assert_eq!(array.main_len(), 128);
        assert_eq!(array.backup_len(), 64);
        assert_eq!(array.capacity(), 192);
        assert_eq!(array.max_participants(), 64);
        assert_eq!(array.algorithm_name(), "LevelArray");
        assert!(array.collect().is_empty());
    }

    #[test]
    fn get_free_round_trip() {
        let array = LevelArray::new(8);
        let mut rng = default_rng(1);
        let got = array.get(&mut rng);
        assert!(got.probes() >= 1);
        assert!(!got.used_backup());
        assert!(array.is_held(got.name()));
        array.free(got.name());
        assert!(!array.is_held(got.name()));
    }

    #[test]
    fn names_are_unique_while_held() {
        let array = LevelArray::new(32);
        let mut rng = default_rng(2);
        let mut held = HashSet::new();
        for _ in 0..32 {
            let got = array.get(&mut rng);
            assert!(held.insert(got.name()), "duplicate name {}", got.name());
        }
        assert_eq!(array.collect().len(), 32);
        for name in held {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn full_capacity_is_reachable_and_exhaustion_is_detected() {
        // With the backup array the structure can hand out every slot, even
        // when oversubscribed beyond n; after that, try_get must return None.
        let array = LevelArray::new(4);
        let mut rng = default_rng(3);
        let mut held = Vec::new();
        for _ in 0..10_000 {
            match array.try_get(&mut rng) {
                Some(got) => held.push(got.name()),
                None => break,
            }
        }
        assert_eq!(held.len(), array.capacity());
        assert!(array.try_get(&mut rng).is_none());
        let unique: HashSet<_> = held.iter().collect();
        assert_eq!(unique.len(), held.len());
    }

    #[test]
    fn backup_is_used_only_when_random_probes_all_fail() {
        // Force every random probe to hit slot 0 of each batch, and occupy
        // those slots beforehand: the Get must fall through to the backup.
        let array = LevelArray::new(8);
        let num_batches = array.geometry().num_batches();
        for b in 0..num_batches {
            let start = array.geometry().batch_range(b).start;
            assert!(array.force_occupy(Name::new(start)));
        }
        // Script one probe per batch, each hitting the (occupied) first slot.
        let script: Vec<u64> = (0..num_batches)
            .map(|b| larng::mock::raw_for_index(0, array.geometry().batch_len(b) as u64))
            .collect();
        let mut rng = SequenceRng::new(script);
        let got = array.get(&mut rng);
        assert!(got.used_backup());
        assert_eq!(got.batch(), None);
        assert!(array.is_backup_name(got.name()));
        assert_eq!(got.probes(), num_batches as u32 + 1);
    }

    #[test]
    fn probes_are_counted_per_batch_policy() {
        // Two probes per batch and scripted misses in batch 0: the operation
        // should charge 2 probes before reaching batch 1.
        let array = LevelArrayConfig::new(16)
            .probes_per_batch(2)
            .build()
            .unwrap();
        let b0 = array.geometry().batch_range(0);
        let b0_len = b0.end - b0.start;
        // Occupy all of batch 0 so any probe there fails.
        for idx in b0.clone() {
            assert!(array.force_occupy(Name::new(idx)));
        }
        let mut rng = default_rng(11);
        let got = array.get(&mut rng);
        assert!(
            got.probes() > 2,
            "had to probe beyond batch 0: {}",
            got.probes()
        );
        assert_ne!(got.batch(), Some(0));
        assert!(got.name().index() >= b0_len || got.used_backup());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let array = LevelArray::new(4);
        let mut rng = default_rng(5);
        let got = array.get(&mut rng);
        array.free(got.name());
        array.free(got.name());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn free_of_out_of_range_name_panics() {
        let array = LevelArray::new(4);
        array.free(Name::new(10_000));
    }

    #[test]
    fn collect_reports_exactly_the_held_names() {
        let array = LevelArray::new(16);
        let mut rng = default_rng(6);
        let mut held: Vec<Name> = (0..10).map(|_| array.get(&mut rng).name()).collect();
        let mut collected = array.collect();
        collected.sort();
        held.sort();
        assert_eq!(collected, held);

        // Free half and re-check.
        for name in held.drain(..5) {
            array.free(name);
        }
        let mut collected = array.collect();
        collected.sort();
        assert_eq!(collected, held);
    }

    #[test]
    fn occupancy_snapshot_matches_collect() {
        let array = LevelArray::new(32);
        let mut rng = default_rng(7);
        for _ in 0..20 {
            let _ = array.get(&mut rng);
        }
        let snap = array.occupancy();
        assert_eq!(snap.total_occupied(), array.collect().len());
        assert_eq!(snap.total_capacity(), array.capacity());
        assert_eq!(snap.num_batches(), array.geometry().num_batches());
        // Per-batch counts agree with direct slot scans.
        for i in 0..array.geometry().num_batches() {
            assert_eq!(snap.batch(i).unwrap().occupied(), array.batch_occupancy(i));
        }
    }

    #[test]
    fn typical_load_keeps_the_array_balanced() {
        // Register n/2 of n = 256 processes; the array must be fully balanced
        // per Definition 2 (this is a sanity check of the common case, not a
        // statistical claim).
        let n = 256;
        let array = LevelArray::new(n);
        let mut rng = default_rng(8);
        for _ in 0..n / 2 {
            let _ = array.get(&mut rng);
        }
        let report = BalanceReport::from_snapshot(&array.occupancy(), n);
        assert!(report.is_fully_balanced(), "{report:?}");
    }

    #[test]
    fn swap_tas_behaves_like_compare_exchange() {
        let array = LevelArrayConfig::new(8)
            .tas_kind(TasKind::Swap)
            .build()
            .unwrap();
        let mut rng = default_rng(9);
        let mut names = HashSet::new();
        for _ in 0..8 {
            assert!(names.insert(array.get(&mut rng).name()));
        }
        assert_eq!(array.collect().len(), 8);
        for name in names {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn disabled_backup_limits_capacity_to_main_array() {
        let array = LevelArrayConfig::new(8).backup(false).build().unwrap();
        assert_eq!(array.backup_len(), 0);
        assert_eq!(array.capacity(), array.main_len());
        // occupancy() must not report a backup region.
        assert!(array.occupancy().backup().is_none());
    }

    #[test]
    fn free_hint_returns_the_just_freed_slot_in_one_probe() {
        let array = LevelArrayConfig::new(8).free_hint(true).build().unwrap();
        assert!(array.free_hint_enabled());
        assert!(!LevelArray::new(8).free_hint_enabled(), "default stays off");
        let mut rng = default_rng(13);
        let got = array.get(&mut rng);
        array.free(got.name());
        let again = array.get(&mut rng);
        assert_eq!(again.name(), got.name(), "the hint re-wins the freed slot");
        assert_eq!(again.probes(), 1);
        assert_eq!(again.used_backup(), array.is_backup_name(again.name()));
        array.free(again.name());
    }

    #[test]
    fn force_occupy_reports_conflicts() {
        let array = LevelArray::new(4);
        assert!(array.force_occupy(Name::new(0)));
        assert!(!array.force_occupy(Name::new(0)));
        array.free(Name::new(0));
        assert!(array.force_occupy(Name::new(0)));
    }

    #[test]
    fn concurrent_get_free_never_duplicates_names() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        let n = 16;
        let array = Arc::new(LevelArray::new(n));
        // One ownership flag per slot, maintained by the test: a second owner
        // of the same slot would trip the swap assertion.
        let owned: Arc<Vec<AtomicBool>> = Arc::new(
            (0..array.capacity())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        std::thread::scope(|scope| {
            for t in 0..n {
                let array = Arc::clone(&array);
                let owned = Arc::clone(&owned);
                scope.spawn(move || {
                    let mut rng = default_rng(1000 + t as u64);
                    for _ in 0..2_000 {
                        let got = array.get(&mut rng);
                        let idx = got.name().index();
                        assert!(
                            !owned[idx].swap(true, Ordering::SeqCst),
                            "slot {idx} handed to two threads at once"
                        );
                        owned[idx].store(false, Ordering::SeqCst);
                        array.free(got.name());
                    }
                });
            }
        });
        assert!(array.collect().is_empty());
    }
}
