//! The atomic slot: a test-and-set register.
//!
//! The paper's abstract algorithm acquires a slot with a *test-and-set* (TAS)
//! and releases it by resetting the location to 0; its implementation section
//! notes that the authors used compare-and-swap.  [`Slot`] supports both, and
//! [`TasKind`] selects which primitive a structure uses (an ablation knob for
//! the benchmark harness — on most hardware `swap` and `compare_exchange`
//! behave identically for this workload).
//!
//! [`Slot`] is the *word-per-slot* representation: one `AtomicU32` per one-bit
//! held/free state.  [`SlotLayout`] selects between it and the bit-packed
//! representation of [`crate::packed::PackedSlots`], which stores 64 slots per
//! atomic word so that `Collect` and the occupancy censuses scan 32× less
//! memory (at the price of denser false sharing between concurrent `Get`s).

use la_sync::atomic::{AtomicU32, Ordering};

/// How the one-bit held/free state of the slots is laid out in memory.
///
/// This is an implementation ablation of the paper's TAS register (in the
/// same spirit as [`TasKind`]): both layouts expose the identical
/// test-and-set / reset / read semantics, so every probing facade behaves
/// the same under either — the conformance suite
/// (`tests/layout_conformance.rs`) drives both with identical seeds and
/// asserts identical results.  The trade-off is purely architectural:
///
/// * [`SlotLayout::WordPerSlot`] — one `AtomicU32` per slot.  Concurrent
///   `Get`s contend on a cache line only when their slots are within 16
///   indices of each other.
/// * [`SlotLayout::Packed`] — one *bit* per slot in a slab of `AtomicU64`
///   words.  `Collect` and the censuses snapshot each word once and walk set
///   bits with `trailing_zeros`, touching 1/32 of the memory; in exchange,
///   512 slots share each cache line, so the randomized probing spreads
///   writers over fewer lines.
/// * [`SlotLayout::Hybrid`] — word-per-slot for the main array's contended
///   head (where `Get` CAS storms land), bit-packed for its tail and the
///   whole backup region (where scans dominate).  The crossover index is the
///   knob; [`crate::LevelArrayConfig::hybrid_layout`] picks the boundary of
///   batch 0, the spot the layout-ablation sweep justifies as the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SlotLayout {
    /// One `AtomicU32` word per slot (the seed representation).
    #[default]
    WordPerSlot,
    /// One bit per slot, 64 slots per `AtomicU64` word.
    Packed,
    /// Word-per-slot head, bit-packed tail: main-array slots below
    /// `packed_from` are `AtomicU32` [`Slot`]s, slots at or above it — and
    /// the entire backup region — are packed 64-per-word.
    ///
    /// `packed_from` is an index into the *main* array and must not exceed
    /// its length; [`crate::LevelArrayConfig::validate`] rejects
    /// out-of-range values with
    /// [`crate::ConfigError::HybridSplitOutOfRange`].  `packed_from == 0`
    /// degenerates to [`SlotLayout::Packed`]; `packed_from == main_len`
    /// keeps the whole main array word-per-slot and packs only the backup.
    Hybrid {
        /// First main-array index stored in the bit-packed tail.
        packed_from: usize,
    },
}

impl SlotLayout {
    /// Builds a [`SlotLayout::Hybrid`] with the given crossover index.
    ///
    /// Equivalent to writing the variant literally; exists so call sites can
    /// construct the layout without naming the field.  The value is validated
    /// against the main-array length by
    /// [`crate::LevelArrayConfig::validate`], not here.
    #[must_use]
    pub const fn hybrid(packed_from: usize) -> Self {
        SlotLayout::Hybrid { packed_from }
    }
}

/// Which hardware primitive `Get` uses to win a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TasKind {
    /// `compare_exchange(FREE, HELD)` — the paper's implementation choice.
    #[default]
    CompareExchange,
    /// `swap(HELD)` — a pure test-and-set; never fails spuriously but always
    /// performs a write, even on an already-held slot.
    Swap,
}

const FREE: u32 = 0;
const HELD: u32 = 1;

/// A single activity-array location.
///
/// The slot is a one-bit register exposed through atomic operations; it is
/// deliberately *not* padded to a cache line because the whole point of the
/// activity array is that `Collect` scans it with good cache behaviour
/// (paper §1).  False sharing between neighbouring slots is part of the
/// faithful reproduction; the randomized probing spreads writers out.
#[derive(Debug, Default)]
pub struct Slot {
    state: AtomicU32,
}

impl Slot {
    /// Creates a free slot.
    pub const fn new() -> Self {
        Slot {
            state: AtomicU32::new(FREE),
        }
    }

    /// Attempts to win the slot with the requested primitive.  Returns `true`
    /// if this call transitioned the slot from free to held.
    #[inline]
    pub fn try_acquire(&self, kind: TasKind) -> bool {
        match kind {
            TasKind::CompareExchange => self
                .state
                .compare_exchange(FREE, HELD, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            TasKind::Swap => self.state.swap(HELD, Ordering::AcqRel) == FREE,
        }
    }

    /// Releases the slot.
    ///
    /// Returns `true` if the slot was held (the normal case).  A `false`
    /// return means the caller released a slot that was already free — a
    /// protocol violation the caller should treat as a bug.
    #[inline]
    pub fn release(&self) -> bool {
        self.state.swap(FREE, Ordering::AcqRel) == HELD
    }

    /// Reads whether the slot is currently held.
    ///
    /// This is the read `Collect` performs; it is a plain acquire load and is
    /// *not* a snapshot — see the validity property in the crate docs.
    #[inline]
    pub fn is_held(&self) -> bool {
        self.state.load(Ordering::Acquire) == HELD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn new_slot_is_free() {
        let s = Slot::new();
        assert!(!s.is_held());
    }

    #[test]
    fn acquire_release_cycle_compare_exchange() {
        let s = Slot::new();
        assert!(s.try_acquire(TasKind::CompareExchange));
        assert!(s.is_held());
        assert!(
            !s.try_acquire(TasKind::CompareExchange),
            "second acquire must lose"
        );
        assert!(s.release());
        assert!(!s.is_held());
        assert!(
            s.try_acquire(TasKind::CompareExchange),
            "slot is reusable after release"
        );
    }

    #[test]
    fn acquire_release_cycle_swap() {
        let s = Slot::new();
        assert!(s.try_acquire(TasKind::Swap));
        assert!(!s.try_acquire(TasKind::Swap));
        assert!(s.release());
        assert!(s.try_acquire(TasKind::Swap));
    }

    #[test]
    fn release_of_free_slot_reports_false() {
        let s = Slot::new();
        assert!(!s.release());
    }

    #[test]
    fn default_matches_new() {
        let s = Slot::default();
        assert!(!s.is_held());
    }

    #[test]
    fn mixed_primitives_interoperate() {
        let s = Slot::new();
        assert!(s.try_acquire(TasKind::Swap));
        assert!(!s.try_acquire(TasKind::CompareExchange));
        assert!(s.release());
        assert!(s.try_acquire(TasKind::CompareExchange));
        assert!(!s.try_acquire(TasKind::Swap));
    }

    /// Exactly one of many concurrent acquirers can win a free slot.
    #[test]
    fn concurrent_acquire_has_a_unique_winner() {
        for kind in [TasKind::CompareExchange, TasKind::Swap] {
            let slot = Arc::new(Slot::new());
            let winners = Arc::new(AtomicUsize::new(0));
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    let slot = Arc::clone(&slot);
                    let winners = Arc::clone(&winners);
                    scope.spawn(move || {
                        if slot.try_acquire(kind) {
                            winners.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert_eq!(winners.load(Ordering::Relaxed), 1, "{kind:?}");
        }
    }
}
