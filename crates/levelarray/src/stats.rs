//! Per-operation and aggregated probe statistics.
//!
//! The paper's evaluation (§6, Figure 2) reports four quantities per
//! algorithm: throughput, the *average* number of trials (probes) per `Get`,
//! the *standard deviation* of that number, and the *worst case* observed.
//! [`GetStats`] accumulates exactly those, plus the full probe-count histogram
//! and the distribution of the batch in which operations stopped, which the
//! healing analysis (Figure 3) needs.
//!
//! Recorders are cheap plain structs: each worker thread keeps its own and the
//! harness merges them at the end ([`GetStats::merge`]), so recording never
//! adds synchronization to the hot path being measured.

use crate::array::Acquired;

/// Probe counts at or above this value are clamped into the histogram's last
/// (overflow) bucket.  The paper's worst case over ~10⁹ operations is 6, so 64
/// buckets is generous.
pub const PROBE_HISTOGRAM_BUCKETS: usize = 64;

/// Aggregated statistics over a sequence of `Get` operations.
///
/// # Examples
///
/// ```
/// use levelarray::{ActivityArray, GetStats, LevelArray};
/// use larng::default_rng;
///
/// let array = LevelArray::new(8);
/// let mut rng = default_rng(1);
/// let mut stats = GetStats::new();
/// for _ in 0..100 {
///     let got = array.get(&mut rng);
///     stats.record(&got);
///     array.free(got.name());
/// }
/// assert_eq!(stats.operations(), 100);
/// assert!(stats.mean_probes() >= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GetStats {
    operations: u64,
    probe_sum: u64,
    probe_sq_sum: u128,
    max_probes: u32,
    backup_operations: u64,
    probe_histogram: Vec<u64>,
    batch_histogram: Vec<u64>,
}

impl GetStats {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        GetStats {
            operations: 0,
            probe_sum: 0,
            probe_sq_sum: 0,
            max_probes: 0,
            backup_operations: 0,
            probe_histogram: vec![0; PROBE_HISTOGRAM_BUCKETS + 1],
            batch_histogram: Vec::new(),
        }
    }

    /// Records one completed `Get`.
    pub fn record(&mut self, acquired: &Acquired) {
        self.record_parts(acquired.probes(), acquired.batch(), acquired.used_backup());
    }

    /// Records a `Get` described by its raw measurements.  `batch` is the
    /// batch in which the operation stopped (`None` when it fell through to
    /// the backup array).
    pub fn record_parts(&mut self, probes: u32, batch: Option<usize>, used_backup: bool) {
        self.operations += 1;
        self.probe_sum += u64::from(probes);
        self.probe_sq_sum += u128::from(probes) * u128::from(probes);
        self.max_probes = self.max_probes.max(probes);
        if used_backup {
            self.backup_operations += 1;
        }
        let bucket = (probes as usize).min(PROBE_HISTOGRAM_BUCKETS);
        self.probe_histogram[bucket] += 1;
        if let Some(b) = batch {
            if self.batch_histogram.len() <= b {
                self.batch_histogram.resize(b + 1, 0);
            }
            self.batch_histogram[b] += 1;
        }
    }

    /// Merges another recorder into this one (used to combine per-thread
    /// recorders).
    pub fn merge(&mut self, other: &GetStats) {
        self.operations += other.operations;
        self.probe_sum += other.probe_sum;
        self.probe_sq_sum += other.probe_sq_sum;
        self.max_probes = self.max_probes.max(other.max_probes);
        self.backup_operations += other.backup_operations;
        for (a, b) in self.probe_histogram.iter_mut().zip(&other.probe_histogram) {
            *a += b;
        }
        if self.batch_histogram.len() < other.batch_histogram.len() {
            self.batch_histogram.resize(other.batch_histogram.len(), 0);
        }
        for (i, &b) in other.batch_histogram.iter().enumerate() {
            self.batch_histogram[i] += b;
        }
    }

    /// Number of `Get` operations recorded.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    /// Total number of probes across all recorded operations.
    pub fn total_probes(&self) -> u64 {
        self.probe_sum
    }

    /// Mean probes per `Get` (the paper's "average number of trials").
    /// Returns 0 when nothing has been recorded.
    pub fn mean_probes(&self) -> f64 {
        if self.operations == 0 {
            0.0
        } else {
            self.probe_sum as f64 / self.operations as f64
        }
    }

    /// Population standard deviation of probes per `Get`.
    pub fn stddev_probes(&self) -> f64 {
        if self.operations == 0 {
            return 0.0;
        }
        let n = self.operations as f64;
        let mean = self.mean_probes();
        let mean_sq = self.probe_sq_sum as f64 / n;
        (mean_sq - mean * mean).max(0.0).sqrt()
    }

    /// The worst case (maximum probes in a single `Get`).
    pub fn max_probes(&self) -> u32 {
        self.max_probes
    }

    /// Number of operations that fell through to the backup array.
    pub fn backup_operations(&self) -> u64 {
        self.backup_operations
    }

    /// The probe-count histogram: entry `i` counts operations that used
    /// exactly `i` probes; the final entry is an overflow bucket.
    pub fn probe_histogram(&self) -> &[u64] {
        &self.probe_histogram
    }

    /// The stopping-batch histogram: entry `b` counts operations that acquired
    /// their slot in batch `b` of the main array.
    pub fn batch_histogram(&self) -> &[u64] {
        &self.batch_histogram
    }

    /// A compact summary of the Figure-2 quantities.
    pub fn summary(&self) -> StatsSummary {
        StatsSummary {
            operations: self.operations,
            mean_probes: self.mean_probes(),
            stddev_probes: self.stddev_probes(),
            max_probes: self.max_probes,
            backup_fraction: if self.operations == 0 {
                0.0
            } else {
                self.backup_operations as f64 / self.operations as f64
            },
        }
    }
}

impl Default for GetStats {
    fn default() -> Self {
        Self::new()
    }
}

/// The Figure-2 quantities for one run of one algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StatsSummary {
    /// Number of `Get` operations.
    pub operations: u64,
    /// Mean probes per `Get`.
    pub mean_probes: f64,
    /// Population standard deviation of probes per `Get`.
    pub stddev_probes: f64,
    /// Maximum probes observed in a single `Get`.
    pub max_probes: u32,
    /// Fraction of operations that needed the backup array.
    pub backup_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_raw(stats: &mut GetStats, probes: u32, batch: usize) {
        stats.record_parts(probes, Some(batch), false);
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = GetStats::new();
        assert_eq!(s.operations(), 0);
        assert_eq!(s.mean_probes(), 0.0);
        assert_eq!(s.stddev_probes(), 0.0);
        assert_eq!(s.max_probes(), 0);
        assert_eq!(s.summary().backup_fraction, 0.0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut s = GetStats::new();
        for p in [1u32, 2, 3, 6] {
            record_raw(&mut s, p, 0);
        }
        assert_eq!(s.operations(), 4);
        assert_eq!(s.total_probes(), 12);
        assert!((s.mean_probes() - 3.0).abs() < 1e-12);
        assert_eq!(s.max_probes(), 6);
    }

    #[test]
    fn stddev_matches_direct_computation() {
        let samples = [1u32, 1, 2, 5, 9, 3, 3, 1];
        let mut s = GetStats::new();
        for &p in &samples {
            record_raw(&mut s, p, 0);
        }
        let n = samples.len() as f64;
        let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
        let var = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((s.stddev_probes() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut s = GetStats::new();
        record_raw(&mut s, 1, 0);
        record_raw(&mut s, 1, 0);
        record_raw(&mut s, 5, 1);
        record_raw(&mut s, PROBE_HISTOGRAM_BUCKETS as u32 + 10, 2);
        assert_eq!(s.probe_histogram()[1], 2);
        assert_eq!(s.probe_histogram()[5], 1);
        assert_eq!(s.probe_histogram()[PROBE_HISTOGRAM_BUCKETS], 1);
        assert_eq!(s.batch_histogram(), &[2, 1, 1]);
    }

    #[test]
    fn backup_operations_are_counted() {
        let mut s = GetStats::new();
        s.record_parts(40, None, true);
        s.record_parts(1, Some(0), false);
        assert_eq!(s.backup_operations(), 1);
        assert!((s.summary().backup_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_equivalent_to_recording_everything_in_one() {
        let samples_a = [1u32, 2, 3, 4];
        let samples_b = [2u32, 2, 7];
        let mut a = GetStats::new();
        let mut b = GetStats::new();
        let mut combined = GetStats::new();
        for &p in &samples_a {
            record_raw(&mut a, p, (p % 3) as usize);
            record_raw(&mut combined, p, (p % 3) as usize);
        }
        for &p in &samples_b {
            record_raw(&mut b, p, (p % 2) as usize);
            record_raw(&mut combined, p, (p % 2) as usize);
        }
        a.merge(&b);
        assert_eq!(a, combined);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = GetStats::new();
        record_raw(&mut a, 3, 1);
        let before = a.clone();
        a.merge(&GetStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn summary_reports_figure2_quantities() {
        let mut s = GetStats::new();
        for p in [1u32, 1, 2] {
            record_raw(&mut s, p, 0);
        }
        let sum = s.summary();
        assert_eq!(sum.operations, 3);
        assert_eq!(sum.max_probes, 2);
        assert!((sum.mean_probes - 4.0 / 3.0).abs() < 1e-12);
    }
}
