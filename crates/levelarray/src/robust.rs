//! Robustness telemetry: the counters the crash-recovery machinery exposes.
//!
//! Two layers feed one report.  [`crate::ElasticLevelArray`] accounts for the
//! **stuck-pin watchdog** — the age of the oldest active chain pin and how
//! many retirement/shrink passes were deferred while the capped backoff was
//! armed (see `docs/ROBUSTNESS.md` for the policy).  The optional
//! [`crate::lease::LeaseRegistry`] accounts for **orphan recovery** — names
//! quarantined because their holder stopped heartbeating, and names reclaimed
//! by the two-phase sweep.  [`RobustnessReport::merge`] combines the views,
//! which is what [`crate::lease::LeaseRegistry::robustness_report`] returns
//! for elastic arrays.

/// A point-in-time snapshot of the crash-robustness counters.
///
/// All counters are cumulative since construction except
/// [`RobustnessReport::quarantined`] and
/// [`RobustnessReport::oldest_pin_age_ms`], which describe the current
/// state.  Reports are cheap to take (a handful of relaxed loads plus one
/// stripe scan) and safe to take concurrently with live traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Names reclaimed from clients that stopped heartbeating (the lease
    /// sweep's second phase freed them back into the array).
    pub orphaned_reclaimed: u64,
    /// Names currently quarantined: their lease expired once, and they are
    /// reclaimed (or re-animated by a late heartbeat) on the next sweep.
    pub quarantined: usize,
    /// Age of the oldest currently-active chain pin in milliseconds, or
    /// `None` when no pins are active (always `None` for non-elastic
    /// arrays, which have no chain to pin).  Advisory and stripe-granular;
    /// see `EpochChain::oldest_pin_age_ms`.
    pub oldest_pin_age_ms: Option<u64>,
    /// Shrink attempts skipped because the stuck-pin watchdog's backoff was
    /// armed.
    pub deferred_shrinks: u64,
    /// Retirement passes skipped because the stuck-pin watchdog's backoff
    /// was armed.
    pub deferred_retirements: u64,
}

impl RobustnessReport {
    /// Combines two layers' views: counters add, the pin age takes the
    /// maximum (either layer may have no pins in sight).
    #[must_use]
    pub fn merge(self, other: RobustnessReport) -> RobustnessReport {
        RobustnessReport {
            orphaned_reclaimed: self.orphaned_reclaimed + other.orphaned_reclaimed,
            quarantined: self.quarantined + other.quarantined,
            oldest_pin_age_ms: match (self.oldest_pin_age_ms, other.oldest_pin_age_ms) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            deferred_shrinks: self.deferred_shrinks + other.deferred_shrinks,
            deferred_retirements: self.deferred_retirements + other.deferred_retirements,
        }
    }

    /// Whether the report shows any degradation at all — any orphan
    /// activity, quarantined names, or deferred maintenance.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.orphaned_reclaimed == 0
            && self.quarantined == 0
            && self.deferred_shrinks == 0
            && self.deferred_retirements == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters_and_maxes_ages() {
        let a = RobustnessReport {
            orphaned_reclaimed: 2,
            quarantined: 1,
            oldest_pin_age_ms: Some(10),
            deferred_shrinks: 3,
            deferred_retirements: 4,
        };
        let b = RobustnessReport {
            orphaned_reclaimed: 1,
            quarantined: 0,
            oldest_pin_age_ms: Some(25),
            deferred_shrinks: 0,
            deferred_retirements: 1,
        };
        let m = a.merge(b);
        assert_eq!(m.orphaned_reclaimed, 3);
        assert_eq!(m.quarantined, 1);
        assert_eq!(m.oldest_pin_age_ms, Some(25));
        assert_eq!(m.deferred_shrinks, 3);
        assert_eq!(m.deferred_retirements, 5);
        assert!(!m.is_quiet());
    }

    #[test]
    fn merge_handles_missing_ages() {
        let quiet = RobustnessReport::default();
        assert!(quiet.is_quiet());
        let aged = RobustnessReport {
            oldest_pin_age_ms: Some(7),
            ..RobustnessReport::default()
        };
        assert_eq!(quiet.clone().merge(aged.clone()).oldest_pin_age_ms, Some(7));
        assert_eq!(aged.merge(quiet).oldest_pin_age_ms, Some(7));
    }
}
