//! Property-based tests for the `ShardedLevelArray`: global-uniqueness of the
//! sharded namespace over every `(shards, n)` combination, sequentially (full
//! drains that force the steal path) and under concurrent get/free traffic
//! from all shards.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use larng::default_rng;
use levelarray::{ActivityArray, LevelArrayConfig, Name, ShardedLevelArray, SlotLayout};
use proptest::prelude::*;

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(if cfg!(miri) { 2 } else { n })
}

/// Decodes a proptest draw into one of the three slot layouts; hybrid splits
/// are chosen against the *full* main array (the sharded constructor divides
/// them across the shards).
fn layout_axis(draw: u16, main_len: usize) -> SlotLayout {
    match draw % 3 {
        0 => SlotLayout::WordPerSlot,
        1 => SlotLayout::Packed,
        _ => SlotLayout::hybrid((draw as usize / 3) % (main_len + 1)),
    }
}

proptest! {
    #![proptest_config(cases(48))]

    /// Draining the array hands out every global name exactly once, for every
    /// (shards, n, layout) combination: the tail of the drain can only
    /// complete by stealing from non-home shards, so the steal path is always
    /// exercised — under all three slot layouts.
    #[test]
    fn every_shards_n_combination_drains_to_unique_names(
        shards in 1usize..6,
        n in 1usize..40,
        layout in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let array = LevelArrayConfig::new(n)
            .slot_layout(layout_axis(layout, 2 * n))
            .build_sharded(shards)
            .unwrap();
        prop_assert_eq!(array.num_shards(), shards);
        prop_assert_eq!(array.shard_contention(), n.div_ceil(shards));
        let mut rng = default_rng(seed);
        let mut held = HashSet::new();
        // Randomized probing may miss free slots on any given attempt, so a
        // None is a retry; the bound keeps a broken implementation from
        // spinning forever.
        for _ in 0..array.capacity() * 4_000 {
            if held.len() == array.capacity() {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                prop_assert!(got.name().index() < array.capacity(),
                    "name {} outside the namespace", got.name());
                prop_assert!(held.insert(got.name()),
                    "duplicate name {}", got.name());
            }
        }
        prop_assert_eq!(held.len(), array.capacity());
        prop_assert!(array.try_get(&mut rng).is_none());
        // Shard mapping is consistent: freeing through the global name
        // empties the exact slot collect saw.
        for &name in &held {
            array.free(name);
        }
        prop_assert!(array.collect().is_empty());
    }

    /// A home shard force-exhausted up front never produces a name from
    /// itself, and the steal path keeps names globally unique.
    #[test]
    fn steal_from_exhausted_home_preserves_uniqueness(
        shards in 2usize..6,
        n in 2usize..32,
        seed in any::<u64>(),
    ) {
        let array = LevelArrayConfig::new(n).build_sharded(shards).unwrap();
        for local in 0..array.shard_capacity() {
            prop_assert!(array.force_occupy(Name::new(local)));
        }
        let mut rng = default_rng(seed);
        let mut held = HashSet::new();
        for _ in 0..array.capacity() * 4_000 {
            if held.len() == array.capacity() - array.shard_capacity() {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                prop_assert!(array.shard_of(got.name()) != 0,
                    "shard 0 is full yet produced {}", got.name());
                prop_assert!(held.insert(got.name()));
            }
        }
        prop_assert_eq!(held.len(), array.capacity() - array.shard_capacity());
    }
}

proptest! {
    #![proptest_config(cases(8))]

    /// Concurrent get/free from all shards: no global name is ever held by
    /// two threads at once, for arbitrary (shards, n).
    #[test]
    fn concurrent_churn_never_duplicates_global_names(
        shards in 1usize..5,
        n in 4usize..24,
        seed in any::<u64>(),
    ) {
        let threads = n.min(4);
        let array = Arc::new(ShardedLevelArray::new(n, shards));
        let claimed: Arc<Vec<AtomicBool>> = Arc::new(
            (0..array.capacity()).map(|_| AtomicBool::new(false)).collect(),
        );
        let duplicates = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let claimed = Arc::clone(&claimed);
                let duplicates = Arc::clone(&duplicates);
                scope.spawn(move || {
                    let mut rng = default_rng(seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    for _ in 0..300 {
                        let got = array.get(&mut rng);
                        let idx = got.name().index();
                        if claimed[idx].swap(true, Ordering::SeqCst) {
                            duplicates.fetch_add(1, Ordering::SeqCst);
                        }
                        claimed[idx].store(false, Ordering::SeqCst);
                        array.free(got.name());
                    }
                });
            }
        });
        prop_assert_eq!(duplicates.load(Ordering::SeqCst), 0);
        prop_assert!(array.collect().is_empty());
    }
}
