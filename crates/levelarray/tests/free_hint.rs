//! The Free→Get hint cache: correctness under churn and under theft.
//!
//! With [`LevelArrayConfig::free_hint`] enabled, every `free` arms a
//! per-thread hint and the next same-thread `try_get` retries exactly that
//! slot with one test-and-set before probing.  These tests drive the hint
//! through the renaming contract: names stay unique while held (the hint
//! must never hand out a slot somebody else already won), a stolen hint
//! falls back to the probe path, and concurrent free/get churn across
//! threads never duplicates a live name.

use std::collections::HashSet;
use std::sync::Arc;

use larng::default_rng;
use levelarray::{ActivityArray, GrowthPolicy, LevelArrayConfig, Name};

fn facades() -> Vec<Box<dyn ActivityArray>> {
    let base = LevelArrayConfig::new(16).free_hint(true);
    vec![
        Box::new(base.clone().build().unwrap()),
        Box::new(base.clone().build_sharded(2).unwrap()),
        Box::new(
            base.clone()
                .growth(GrowthPolicy::Doubling { max_epochs: 3 })
                .build_elastic()
                .unwrap(),
        ),
    ]
}

fn churn_ops() -> usize {
    if cfg!(miri) {
        200
    } else {
        20_000
    }
}

/// Sequential churn with the hint hot: names stay unique while held and the
/// census never drifts from the model, on every facade.
#[test]
fn hinted_churn_preserves_uniqueness_on_every_facade() {
    for array in facades() {
        let array = &*array;
        let mut rng = default_rng(0x41A7);
        let mut script = default_rng(0x51DE);
        let mut held: Vec<Name> = Vec::new();
        use larng::RandomSource;
        for step in 0..churn_ops() {
            let register = held.is_empty() || (script.gen_bool(0.55) && held.len() < 12);
            if register {
                let got = array.try_get(&mut rng).expect("under the bound");
                assert!(
                    !held.contains(&got.name()),
                    "step {step}: {} handed out a live name {}",
                    array.algorithm_name(),
                    got.name()
                );
                held.push(got.name());
            } else {
                let victim = held.swap_remove(script.gen_index(held.len()));
                array.free(victim);
            }
        }
        let mut collected = array.collect();
        collected.sort();
        held.sort();
        assert_eq!(collected, held, "{} census drifted", array.algorithm_name());
        for name in held {
            array.free(name);
        }
    }
}

/// A hint whose slot was stolen between the Free and the Get must miss and
/// fall through to the probe path — never duplicate the stolen name.
#[test]
fn stolen_hints_fall_through_to_the_probe_path() {
    // Flat facade: the concrete force_occupy hook plays the thief.
    let flat = LevelArrayConfig::new(8).free_hint(true).build().unwrap();
    let mut rng = default_rng(7);
    let got = flat.get(&mut rng);
    let victim = got.name();
    flat.free(victim);
    assert!(flat.force_occupy(victim), "the thief wins the freed slot");
    let next = flat.get(&mut rng);
    assert_ne!(next.name(), victim, "the missed hint must not duplicate");
    assert!(flat.is_held(victim));

    // Sharded facade.
    let sharded = LevelArrayConfig::new(8)
        .free_hint(true)
        .build_sharded(2)
        .unwrap();
    let got = sharded.get(&mut rng);
    let victim = got.name();
    sharded.free(victim);
    assert!(sharded.force_occupy(victim));
    let next = sharded.get(&mut rng);
    assert_ne!(next.name(), victim);

    // Elastic facade: steal an epoch-tagged name.
    let elastic = LevelArrayConfig::new(4)
        .free_hint(true)
        .growth(GrowthPolicy::Doubling { max_epochs: 3 })
        .build_elastic()
        .unwrap();
    let names: Vec<Name> = (0..15).map(|_| elastic.get(&mut rng).name()).collect();
    let victim = *names.iter().find(|n| n.epoch() == 0).unwrap();
    elastic.free(victim);
    assert!(elastic.force_occupy(victim));
    let next = elastic.get(&mut rng);
    assert_ne!(next.name(), victim);
}

/// A hint left over from a retired epoch is stale but harmless: the Get
/// rejects it (the epoch is no longer live) and probes normally.
#[test]
fn a_hint_into_a_retired_epoch_is_rejected_without_panicking() {
    let array = LevelArrayConfig::new(2)
        .free_hint(true)
        .growth(GrowthPolicy::Doubling { max_epochs: 4 })
        .auto_retire(false)
        .build_elastic()
        .unwrap();
    let mut rng = default_rng(9);
    let names: Vec<Name> = (0..12).map(|_| array.get(&mut rng).name()).collect();
    assert!(array.num_epochs() >= 2);
    // Free everything; the LAST free recorded is the freshest hint.  Retire
    // the drained old epochs, then Get: if the hint names a retired epoch it
    // must be discarded, not panic the liveness lookup.
    let old = *names.iter().find(|n| n.epoch() == 0).unwrap();
    for name in names {
        if name != old {
            array.free(name);
        }
    }
    array.free(old); // freshest hint: an epoch-0 name
    let _ = array.try_retire();
    assert_eq!(array.num_epochs(), 1, "the drained old epochs retire");
    let got = array.get(&mut rng);
    assert_eq!(got.name().epoch(), array.newest_epoch());
}

/// Stale hints across the elastic resize cycle: a hint armed by a free into
/// an oversized epoch stays in the per-thread cache while `try_shrink`
/// publishes a smaller head and `try_retire` unlinks the drained giant.
/// The cache is never invalidated by either (it lives in other threads'
/// thread-locals, so it *cannot* be); correctness rests on `hint_acquire`
/// re-validating under a fresh pin — the stale hint must degrade to a clean
/// probe-path miss, never a panic or a duplicate name.
#[test]
fn stale_hints_into_shrunk_and_retired_epochs_miss_cleanly() {
    let array = LevelArrayConfig::new(2)
        .free_hint(true)
        .growth(GrowthPolicy::Doubling { max_epochs: 3 })
        .auto_retire(false)
        .build_elastic()
        .unwrap();
    let mut rng = default_rng(21);
    // Saturate upward until an oversized epoch (bound 8) is serving.
    let mut held: Vec<Name> = Vec::new();
    while array.newest_epoch() < 2 {
        held.push(array.get(&mut rng).name());
    }
    let big = array.newest_epoch();
    let victim = *held.iter().rev().find(|n| n.epoch() == big).unwrap();
    // Drain the giant; the LAST free arms the hint with a big-epoch name.
    for name in held {
        if name != victim {
            array.free(name);
        }
    }
    array.free(victim);
    // Clear the drained smaller epochs so the chain has headroom, then
    // shrink: a smaller epoch takes over the head, leaving the giant
    // non-newest, drained, and retirement-eligible.  The hint still names it.
    assert!(array.try_retire() >= 1, "the drained early epochs retire");
    assert!(array.try_shrink(), "room to shrink below the giant");
    assert!(array.try_retire() >= 1, "the drained giant retires");
    assert!(
        !array.epoch_ids().contains(&big),
        "the hinted epoch is gone: {:?}",
        array.epoch_ids()
    );
    // The stale hint must miss cleanly and the probe path must serve from a
    // live epoch, with no duplicate of any later hand-out.
    let a = array.get(&mut rng);
    let b = array.get(&mut rng);
    assert!(array.epoch_ids().contains(&a.name().epoch()));
    assert_ne!(a.name(), b.name());
    array.free(a.name());
    array.free(b.name());
}

/// Concurrent free/get churn with hints hot on every thread: the per-slot
/// ownership bit proves no slot is ever handed to two threads at once.
#[test]
fn concurrent_hinted_churn_never_duplicates_names() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let threads = if cfg!(miri) { 2 } else { 8 };
    let rounds = if cfg!(miri) { 50 } else { 2_000 };
    let arrays: Vec<Arc<dyn ActivityArray + Send + Sync>> = {
        let base = LevelArrayConfig::new(16).free_hint(true);
        vec![
            Arc::new(base.clone().build().unwrap()),
            Arc::new(base.clone().build_sharded(4).unwrap()),
        ]
    };
    for array in arrays {
        let owned: Arc<Vec<AtomicBool>> = Arc::new(
            (0..array.capacity())
                .map(|_| AtomicBool::new(false))
                .collect(),
        );
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let owned = Arc::clone(&owned);
                scope.spawn(move || {
                    let mut rng = default_rng(0xB1F7 + t as u64);
                    for _ in 0..rounds {
                        let got = array.try_get(&mut rng).expect("under the bound");
                        let idx = got.name().index();
                        assert!(
                            !owned[idx].swap(true, Ordering::SeqCst),
                            "slot {idx} handed to two threads at once"
                        );
                        owned[idx].store(false, Ordering::SeqCst);
                        array.free(got.name());
                    }
                });
            }
        });
        assert!(array.collect().is_empty());
    }
}

/// Uniqueness across hint wins interleaved with probe wins: fill to capacity
/// through a hint-heavy schedule and confirm every slot is handed out once.
#[test]
fn hinted_fill_reaches_capacity_with_unique_names() {
    let array = LevelArrayConfig::new(12).free_hint(true).build().unwrap();
    let mut rng = default_rng(5);
    let mut held = HashSet::new();
    for step in 0..(if cfg!(miri) { 2_000 } else { 50_000 }) {
        if held.len() == array.capacity() {
            break;
        }
        if let Some(got) = array.try_get(&mut rng) {
            assert!(held.insert(got.name()), "duplicate {}", got.name());
            // Churn every tenth step to keep the hint hot mid-fill (keyed to
            // the step, not the fill level: the hint re-wins a freed slot, so
            // a fill-level trigger would re-fire forever on the same pair).
            if step % 10 == 0 {
                let name = got.name();
                array.free(name);
                held.remove(&name);
            }
        }
    }
    assert_eq!(held.len(), array.capacity());
    assert!(array.try_get(&mut rng).is_none());
}
