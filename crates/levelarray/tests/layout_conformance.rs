//! Differential layout conformance: every slot representation must be
//! observationally identical to the word-per-slot representation.
//!
//! Every probing decision depends only on the RNG stream and on the held/free
//! state of the slots — never on how that state is stored — so driving a
//! `WordPerSlot` and a `Packed` (or `Hybrid`) instance of the *same* variant
//! with the same seeded operation sequence must produce identical acquired
//! names (with identical probe counts, batches and backup flags), identical
//! occupancy censuses after every step, and identical `collect` sets.  This
//! holds for all three facades: flat, sharded and elastic — and with the
//! Free→Get hint cache enabled, because hints are keyed per facade instance
//! (each side of the pair consumes only its own hint).

use std::collections::HashSet;

use larng::{default_rng, RandomSource};
use levelarray::{ActivityArray, GrowthPolicy, LevelArrayConfig, Name, SlotLayout};

fn ops() -> usize {
    if cfg!(miri) {
        60
    } else {
        2_000
    }
}

/// Drives `word` and `packed` with the same seeded schedule and asserts they
/// agree after every single operation.  `participants` exercises
/// `route_hint`, so the sharded facade's sticky routing takes the same path
/// on both sides; `quota` bounds how many names the schedule holds at once
/// (for the elastic facade it deliberately exceeds the initial bound so both
/// chains grow in step).
fn assert_lockstep(
    word: &dyn ActivityArray,
    packed: &dyn ActivityArray,
    seed: u64,
    participants: usize,
    quota: usize,
) {
    assert_eq!(word.capacity(), packed.capacity());
    assert_eq!(word.max_participants(), packed.max_participants());

    // Two identical streams: one per instance, so the probe draws match.
    let mut rng_w = default_rng(seed);
    let mut rng_p = default_rng(seed);
    // One shared stream for the schedule itself (op choice, free victim).
    let mut script = default_rng(seed ^ 0xD1FF);

    let mut held: Vec<Name> = Vec::new();
    for step in 0..ops() {
        let participant = script.gen_index(participants.max(1));
        word.route_hint(participant);
        packed.route_hint(participant);

        let register = held.is_empty() || (script.gen_bool(0.6) && held.len() < quota);
        if register {
            let a = word.try_get(&mut rng_w);
            let b = packed.try_get(&mut rng_p);
            assert_eq!(a, b, "step {step}: acquisitions diverged");
            if let Some(got) = a {
                assert!(
                    !held.contains(&got.name()),
                    "step {step}: duplicate live name {}",
                    got.name()
                );
                held.push(got.name());
            }
        } else {
            let victim = held.swap_remove(script.gen_index(held.len()));
            word.free(victim);
            packed.free(victim);
        }

        // Sequential drive, so the censuses are exact — and must be equal.
        let mut cw = word.collect();
        let mut cp = packed.collect();
        cw.sort();
        cp.sort();
        assert_eq!(cw, cp, "step {step}: collect sets diverged");
        let mut expected: Vec<Name> = held.clone();
        expected.sort();
        assert_eq!(cw, expected, "step {step}: collect drifted from the model");

        let ow = word.occupancy();
        let op = packed.occupancy();
        assert_eq!(
            ow.regions(),
            op.regions(),
            "step {step}: occupancy censuses diverged"
        );
    }

    // Drain through both and confirm they empty together.
    for name in held.drain(..) {
        word.free(name);
        packed.free(name);
    }
    assert!(word.collect().is_empty());
    assert!(packed.collect().is_empty());
}

/// The batched twin of [`assert_lockstep`]: drives both sides with the same
/// seeded schedule of `get_many`/`free_many` batches and asserts identical
/// acquisitions (names, probe counts, batches, backup flags), censuses and
/// collect sets after every step.  The batch sizes vary per step, so the
/// word-window multi-claim kernel (packed), the per-index loop equivalent
/// (word-per-slot) and the mixed hybrid path must all select the same slots
/// — the §5.2 batch-order probing contract the batched kernels preserve.
fn assert_lockstep_batched(
    word: &dyn ActivityArray,
    packed: &dyn ActivityArray,
    seed: u64,
    participants: usize,
    quota: usize,
    kmax: usize,
) {
    assert_eq!(word.capacity(), packed.capacity());
    assert_eq!(word.max_participants(), packed.max_participants());

    let mut rng_w = default_rng(seed);
    let mut rng_p = default_rng(seed);
    let mut script = default_rng(seed ^ 0xBA7C);

    let mut held: Vec<Name> = Vec::new();
    let mut out_w = Vec::new();
    let mut out_p = Vec::new();
    // Batches do ~kmax times the per-step work of the singleton drive.
    for step in 0..(ops() / kmax.max(1)).max(8) {
        let participant = script.gen_index(participants.max(1));
        word.route_hint(participant);
        packed.route_hint(participant);

        let register = held.is_empty() || (script.gen_bool(0.6) && held.len() < quota);
        if register {
            let k = (1 + script.gen_index(kmax)).min(quota - held.len()).max(1);
            out_w.clear();
            out_p.clear();
            let won_w = word.get_many(&mut rng_w, k, &mut out_w);
            let won_p = packed.get_many(&mut rng_p, k, &mut out_p);
            assert_eq!(won_w, won_p, "step {step}: batch fill counts diverged");
            assert_eq!(out_w, out_p, "step {step}: batched acquisitions diverged");
            for got in &out_w {
                assert!(
                    !held.contains(&got.name()),
                    "step {step}: duplicate live name {}",
                    got.name()
                );
                held.push(got.name());
            }
        } else {
            let m = 1 + script.gen_index(held.len().min(kmax));
            let victims: Vec<Name> = (0..m)
                .map(|_| held.swap_remove(script.gen_index(held.len())))
                .collect();
            word.free_many(&victims);
            packed.free_many(&victims);
        }

        let mut cw = word.collect();
        let mut cp = packed.collect();
        cw.sort();
        cp.sort();
        assert_eq!(cw, cp, "step {step}: collect sets diverged");
        let mut expected: Vec<Name> = held.clone();
        expected.sort();
        assert_eq!(cw, expected, "step {step}: collect drifted from the model");

        assert_eq!(
            word.occupancy().regions(),
            packed.occupancy().regions(),
            "step {step}: occupancy censuses diverged"
        );
    }

    // Drain both sides with ONE bulk release each and confirm they empty.
    word.free_many(&held);
    packed.free_many(&held);
    assert!(word.collect().is_empty());
    assert!(packed.collect().is_empty());
}

fn pair(config: &LevelArrayConfig) -> (LevelArrayConfig, LevelArrayConfig) {
    (
        config.clone().slot_layout(SlotLayout::WordPerSlot),
        config.clone().slot_layout(SlotLayout::Packed),
    )
}

#[test]
fn flat_layouts_conform() {
    for (n, seed) in [(5usize, 11u64), (33, 12), (170, 13)] {
        let (w, p) = pair(&LevelArrayConfig::new(n));
        assert_lockstep(&w.build().unwrap(), &p.build().unwrap(), seed, 1, n);
    }
}

#[test]
fn flat_layouts_conform_without_backup_and_with_swap_tas() {
    let base = LevelArrayConfig::new(24)
        .backup(false)
        .tas_kind(levelarray::TasKind::Swap)
        .probes_per_batch(2);
    let (w, p) = pair(&base);
    assert_lockstep(&w.build().unwrap(), &p.build().unwrap(), 21, 1, 24);
}

#[test]
fn sharded_layouts_conform() {
    for (n, shards, seed) in [(16usize, 2usize, 31u64), (40, 4, 32), (70, 3, 33)] {
        let (w, p) = pair(&LevelArrayConfig::new(n));
        assert_lockstep(
            &w.build_sharded(shards).unwrap(),
            &p.build_sharded(shards).unwrap(),
            seed,
            shards * 2,
            n,
        );
    }
}

#[test]
fn elastic_layouts_conform_across_growth_and_retirement() {
    for (n, max_epochs, seed) in [(2usize, 4usize, 41u64), (5, 3, 42)] {
        let (w, p) = pair(&LevelArrayConfig::new(n).growth(GrowthPolicy::Doubling { max_epochs }));
        let word = w.build_elastic().unwrap();
        let packed = p.build_elastic().unwrap();
        // An elastic chain's live bound is the chain total; oversubscribe the
        // initial epoch hard so both sides grow (and later retire) in step.
        assert_lockstep(&word, &packed, seed, 1, n * 10);
        assert_eq!(word.num_epochs(), packed.num_epochs());
        assert_eq!(word.epoch_ids(), packed.epoch_ids());
        let _ = word.try_retire();
        let _ = packed.try_retire();
        assert_eq!(word.num_epochs(), packed.num_epochs());
    }
}

#[test]
fn hierarchical_layouts_conform_across_growth_and_retirement() {
    // The hierarchical composition: elastic chain whose epochs are sharded
    // cores (`shard_group` below the bound).  Routing is participant-pinned
    // (`route_hint` → home token, reduced modulo each epoch's shard count),
    // and the steal walk visits shards in a deterministic order, so the
    // word-per-slot and packed instances must stay in lockstep through
    // growth — where the epoch's shard *count* changes — and retirement.
    for (n, group, max_epochs, seed) in [(8usize, 4usize, 3usize, 61u64), (6, 2, 4, 62)] {
        let (w, p) = pair(
            &LevelArrayConfig::new(n)
                .shard_group(group)
                .growth(GrowthPolicy::Doubling { max_epochs }),
        );
        let word = w.build_elastic().unwrap();
        let packed = p.build_elastic().unwrap();
        assert_lockstep(&word, &packed, seed, group * 2, n * 5);
        assert_eq!(word.epoch_ids(), packed.epoch_ids());
        assert_eq!(word.newest_epoch_shards(), packed.newest_epoch_shards());
        let _ = word.try_retire();
        let _ = packed.try_retire();
        assert_eq!(word.num_epochs(), packed.num_epochs());
    }
}

#[test]
fn hierarchical_hybrid_layout_conforms() {
    let base = LevelArrayConfig::new(8)
        .shard_group(4)
        .growth(GrowthPolicy::Doubling { max_epochs: 3 });
    let word = base
        .clone()
        .slot_layout(SlotLayout::WordPerSlot)
        .build_elastic()
        .unwrap();
    let hybrid = base.clone().hybrid_layout().build_elastic().unwrap();
    assert_lockstep(&word, &hybrid, 63, 8, 40);
    assert_eq!(word.epoch_ids(), hybrid.epoch_ids());
}

#[test]
fn flat_hybrid_layout_conforms() {
    // Explicit splits bracketing the interesting shapes: inside batch 0, at
    // a word boundary, and the degenerate all-packed split.
    for (n, packed_from, seed) in [(5usize, 3usize, 14u64), (33, 24, 15), (170, 0, 16)] {
        let w = LevelArrayConfig::new(n).slot_layout(SlotLayout::WordPerSlot);
        let h = LevelArrayConfig::new(n).slot_layout(SlotLayout::hybrid(packed_from));
        assert_lockstep(&w.build().unwrap(), &h.build().unwrap(), seed, 1, n);
    }
    // The auto-picked batch-0 boundary.
    let w = LevelArrayConfig::new(48).slot_layout(SlotLayout::WordPerSlot);
    let h = LevelArrayConfig::new(48).hybrid_layout();
    assert_lockstep(&w.build().unwrap(), &h.build().unwrap(), 17, 1, 48);
}

#[test]
fn sharded_hybrid_layout_conforms() {
    // hybrid_layout() picks a split against the full main array; the sharded
    // constructor divides it across the shards rather than rejecting it.
    let w = LevelArrayConfig::new(40).slot_layout(SlotLayout::WordPerSlot);
    let h = LevelArrayConfig::new(40).hybrid_layout();
    assert_lockstep(
        &w.build_sharded(4).unwrap(),
        &h.build_sharded(4).unwrap(),
        34,
        8,
        40,
    );
}

#[test]
fn elastic_hybrid_layout_conforms_across_growth() {
    let base = LevelArrayConfig::new(4).growth(GrowthPolicy::Doubling { max_epochs: 3 });
    let word = base
        .clone()
        .slot_layout(SlotLayout::WordPerSlot)
        .build_elastic()
        .unwrap();
    let hybrid = base.clone().hybrid_layout().build_elastic().unwrap();
    assert_lockstep(&word, &hybrid, 43, 1, 30);
    assert_eq!(word.epoch_ids(), hybrid.epoch_ids());
}

#[test]
fn hint_enabled_facades_stay_in_lockstep() {
    // The hint cache is keyed per facade instance: the word and packed sides
    // each record and consume their *own* hint, so the hint wins (one probe,
    // no RNG draw) land on the same steps and the schedules never diverge.
    let (w, p) = pair(&LevelArrayConfig::new(24).free_hint(true));
    assert_lockstep(&w.build().unwrap(), &p.build().unwrap(), 51, 1, 24);

    let (w, p) = pair(&LevelArrayConfig::new(16).free_hint(true));
    assert_lockstep(
        &w.build_sharded(2).unwrap(),
        &p.build_sharded(2).unwrap(),
        52,
        4,
        16,
    );

    let (w, p) = pair(
        &LevelArrayConfig::new(4)
            .free_hint(true)
            .growth(GrowthPolicy::Doubling { max_epochs: 3 }),
    );
    assert_lockstep(
        &w.build_elastic().unwrap(),
        &p.build_elastic().unwrap(),
        53,
        1,
        30,
    );

    // Hint-enabled hybrid against the word-per-slot reference as well.
    let base = LevelArrayConfig::new(24).free_hint(true);
    let w = base.clone().slot_layout(SlotLayout::WordPerSlot);
    let h = base.clone().hybrid_layout();
    assert_lockstep(&w.build().unwrap(), &h.build().unwrap(), 54, 1, 24);
}

#[test]
fn flat_layouts_conform_under_batched_ops() {
    for (n, seed, kmax) in [(5usize, 71u64, 3usize), (33, 72, 8), (170, 73, 24)] {
        let (w, p) = pair(&LevelArrayConfig::new(n));
        assert_lockstep_batched(&w.build().unwrap(), &p.build().unwrap(), seed, 1, n, kmax);
    }
    // The hybrid layout against the word-per-slot reference: the packed tail
    // goes through the generic per-index loop (its packed-local word
    // alignment differs from the slab alignment), and must still pick the
    // same slots.
    let w = LevelArrayConfig::new(48).slot_layout(SlotLayout::WordPerSlot);
    let h = LevelArrayConfig::new(48).hybrid_layout();
    assert_lockstep_batched(&w.build().unwrap(), &h.build().unwrap(), 74, 1, 48, 12);
}

#[test]
fn sharded_layouts_conform_under_batched_ops() {
    for (n, shards, seed) in [(16usize, 2usize, 81u64), (40, 4, 82)] {
        let (w, p) = pair(&LevelArrayConfig::new(n));
        assert_lockstep_batched(
            &w.build_sharded(shards).unwrap(),
            &p.build_sharded(shards).unwrap(),
            seed,
            shards * 2,
            n,
            8,
        );
    }
    // Hybrid split divided across shards, batched.
    let w = LevelArrayConfig::new(40).slot_layout(SlotLayout::WordPerSlot);
    let h = LevelArrayConfig::new(40).hybrid_layout();
    assert_lockstep_batched(
        &w.build_sharded(4).unwrap(),
        &h.build_sharded(4).unwrap(),
        83,
        8,
        40,
        8,
    );
}

#[test]
fn elastic_layouts_conform_under_batched_ops_across_growth_and_shrink() {
    for (n, max_epochs, seed) in [(2usize, 4usize, 91u64), (4, 3, 92)] {
        let (w, p) = pair(&LevelArrayConfig::new(n).growth(GrowthPolicy::Doubling { max_epochs }));
        let word = w.build_elastic().unwrap();
        let packed = p.build_elastic().unwrap();
        // Oversubscribe hard so whole batches straddle growth events.
        assert_lockstep_batched(&word, &packed, seed, 1, n * 10, 6);
        assert_eq!(word.num_epochs(), packed.num_epochs());
        assert_eq!(word.epoch_ids(), packed.epoch_ids());
        // The drive left both drained: retirement converges in step...
        let _ = word.try_retire();
        let _ = packed.try_retire();
        assert_eq!(word.epoch_ids(), packed.epoch_ids());
        // ...and an explicit shrink opens the same smaller epoch on both
        // sides (the surviving epoch is oversized after the growth burst).
        assert_eq!(word.try_shrink(), packed.try_shrink());
        let _ = word.try_retire();
        let _ = packed.try_retire();
        assert_eq!(word.epoch_ids(), packed.epoch_ids());
        assert_eq!(word.num_epochs(), packed.num_epochs());
    }
}

#[test]
fn hierarchical_layouts_conform_under_batched_ops() {
    // Elastic-of-sharded: batch routing crosses the home shard, the ring
    // steal AND the epoch chain; word-per-slot and packed must stay in
    // lockstep through a growth event mid-batch.
    let base = LevelArrayConfig::new(8)
        .shard_group(4)
        .growth(GrowthPolicy::Doubling { max_epochs: 3 });
    let (w, p) = pair(&base);
    let word = w.build_elastic().unwrap();
    let packed = p.build_elastic().unwrap();
    assert_lockstep_batched(&word, &packed, 93, 8, 40, 6);
    assert_eq!(word.epoch_ids(), packed.epoch_ids());
    assert_eq!(word.newest_epoch_shards(), packed.newest_epoch_shards());
}

#[test]
fn hint_enabled_facades_conform_under_batched_ops() {
    // free_many re-arms the per-instance hint with the batch's last name, so
    // hint wins land on the same steps on both sides.
    let (w, p) = pair(&LevelArrayConfig::new(24).free_hint(true));
    assert_lockstep_batched(&w.build().unwrap(), &p.build().unwrap(), 94, 1, 24, 6);

    let (w, p) = pair(
        &LevelArrayConfig::new(4)
            .free_hint(true)
            .growth(GrowthPolicy::Doubling { max_epochs: 3 }),
    );
    assert_lockstep_batched(
        &w.build_elastic().unwrap(),
        &p.build_elastic().unwrap(),
        95,
        1,
        30,
        5,
    );
}

/// The packed layout alone also satisfies the core renaming contract under a
/// fill-to-capacity drive (uniqueness up to exhaustion, exact refill).
#[test]
fn packed_flat_fills_to_capacity_with_unique_names() {
    let array = LevelArrayConfig::new(12)
        .slot_layout(SlotLayout::Packed)
        .build()
        .unwrap();
    let mut rng = default_rng(5);
    let mut held = HashSet::new();
    for _ in 0..(if cfg!(miri) { 2_000 } else { 50_000 }) {
        if held.len() == array.capacity() {
            break;
        }
        if let Some(got) = array.try_get(&mut rng) {
            assert!(held.insert(got.name()), "duplicate {}", got.name());
        }
    }
    assert_eq!(held.len(), array.capacity());
    assert!(array.try_get(&mut rng).is_none());
    for name in held {
        array.free(name);
    }
    assert!(array.collect().is_empty());
}
