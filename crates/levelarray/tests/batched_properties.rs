//! Property-based tests for the batched kernels: `get_many` uniqueness under
//! arbitrary sequential batched schedules across slot layouts and facades,
//! and no double-claim under multi-threaded batched churn.

use larng::default_rng;
use levelarray::{ActivityArray, GrowthPolicy, LevelArrayConfig, Name, SlotLayout};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, Barrier, Mutex};

/// Decodes a proptest draw into one of the three slot layouts (same axis as
/// the `properties` suite): word-per-slot, packed, and every hybrid split.
fn layout_axis(draw: u16, main_len: usize) -> SlotLayout {
    match draw % 3 {
        0 => SlotLayout::WordPerSlot,
        1 => SlotLayout::Packed,
        _ => SlotLayout::hybrid((draw as usize / 3) % (main_len + 1)),
    }
}

/// Drives an arbitrary batched schedule against one array: each op either
/// acquires a batch of up to `k` names or releases a random sub-batch of the
/// held set, checking after every step that the names handed out are unique,
/// the census matches the model, and `collect` sees exactly the held set.
fn drive_batched_schedule(
    array: &dyn ActivityArray,
    seed: u64,
    quota: usize,
    ops: &[u16],
) -> Result<(), TestCaseError> {
    let mut rng = default_rng(seed);
    let mut held: Vec<Name> = Vec::new();
    let mut out: Vec<levelarray::Acquired> = Vec::new();

    for &op in ops {
        let register = (op % 2 == 0 && held.len() < quota) || held.is_empty();
        if register {
            let k = 1 + (op as usize / 2) % 8;
            let k = k.min(quota - held.len()).max(1);
            out.clear();
            let won = array.get_many(&mut rng, k, &mut out);
            prop_assert!(won <= k, "won {} of a batch of {}", won, k);
            prop_assert_eq!(won, out.len());
            for got in &out {
                prop_assert!(
                    !held.contains(&got.name()),
                    "duplicate name {} in batch",
                    got.name()
                );
                held.push(got.name());
            }
        } else {
            let m = 1 + (op as usize / 2) % held.len().clamp(1, 8);
            let m = m.min(held.len());
            let mut victims = Vec::with_capacity(m);
            for _ in 0..m {
                victims.push(held.swap_remove((op as usize) % held.len().max(1)));
            }
            array.free_many(&victims);
        }
        let mut collected = array.collect();
        collected.sort();
        let mut expected = held.clone();
        expected.sort();
        prop_assert_eq!(collected, expected);
        prop_assert_eq!(array.occupancy().total_occupied(), held.len());
    }
    // Drain with one bulk release; the structure must come back empty.
    array.free_many(&held);
    prop_assert_eq!(array.occupancy().total_occupied(), 0);
    Ok(())
}

proptest! {
    /// Flat facade: batched schedules hand out unique names and keep the
    /// census exact for every slot layout.
    #[test]
    fn flat_batched_schedules_stay_unique(
        seed in any::<u64>(),
        n in 1usize..64,
        layout in any::<u16>(),
        ops in proptest::collection::vec(any::<u16>(), 1..200),
    ) {
        let array = LevelArrayConfig::new(n)
            .slot_layout(layout_axis(layout, 2 * n))
            .build()
            .unwrap();
        drive_batched_schedule(&array, seed, n, &ops)?;
    }

    /// Sharded facade: the whole-batch home-shard routing with ring-order
    /// spill preserves the same uniqueness and census contract.
    #[test]
    fn sharded_batched_schedules_stay_unique(
        seed in any::<u64>(),
        n in 2usize..48,
        shards in 1usize..5,
        layout in any::<u16>(),
        ops in proptest::collection::vec(any::<u16>(), 1..150),
    ) {
        let array = LevelArrayConfig::new(n)
            .slot_layout(layout_axis(layout, 2 * n))
            .build_sharded(shards)
            .unwrap();
        drive_batched_schedule(&array, seed, n, &ops)?;
    }

    /// Elastic facade: batches that straddle growth events (quota well above
    /// the seed capacity) still never double-issue a name, and draining
    /// bulk releases keep the epoch census exact.
    #[test]
    fn elastic_batched_schedules_stay_unique_across_growth(
        seed in any::<u64>(),
        n in 1usize..8,
        layout in any::<u16>(),
        ops in proptest::collection::vec(any::<u16>(), 1..120),
    ) {
        let array = LevelArrayConfig::new(n)
            .slot_layout(layout_axis(layout, 2 * n))
            .growth(GrowthPolicy::Doubling { max_epochs: 4 })
            .build_elastic()
            .unwrap();
        drive_batched_schedule(&array, seed, n * 8, &ops)?;
    }
}

/// Eight threads churning whole batches against one packed flat array: every
/// name a `get_many` hands out is inserted into a shared claim set and must
/// not already be present (no double-claim), and is only removed when its
/// `free_many` batch actually releases it.
#[test]
fn eight_thread_batched_churn_never_double_claims() {
    let threads = 8usize;
    let rounds = if cfg!(miri) { 8 } else { 400 };
    let k = 6usize;
    let array = Arc::new(
        LevelArrayConfig::new(threads * k + threads)
            .slot_layout(SlotLayout::Packed)
            .build()
            .unwrap(),
    );
    let claimed: Arc<Mutex<HashSet<Name>>> = Arc::new(Mutex::new(HashSet::new()));
    let barrier = Arc::new(Barrier::new(threads));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let array = Arc::clone(&array);
            let claimed = Arc::clone(&claimed);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut rng = default_rng(0x8A7C + t as u64);
                let mut out = Vec::with_capacity(k);
                barrier.wait();
                for round in 0..rounds {
                    out.clear();
                    let won = array.get_many(&mut rng, k, &mut out);
                    assert_eq!(won, out.len());
                    let names: Vec<Name> = out.iter().map(|g| g.name()).collect();
                    {
                        let mut set = claimed.lock().unwrap();
                        for name in &names {
                            assert!(
                                set.insert(*name),
                                "thread {t} round {round}: name {name} double-claimed"
                            );
                        }
                    }
                    // Unregister from the shared set *before* the actual
                    // release — another thread can only re-win a slot after
                    // free_many lands, so removal-first cannot race a fresh
                    // claim into a false positive.
                    {
                        let mut set = claimed.lock().unwrap();
                        for name in &names {
                            set.remove(name);
                        }
                    }
                    array.free_many(&names);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(array.occupancy().total_occupied(), 0);
    assert!(claimed.lock().unwrap().is_empty());
}
