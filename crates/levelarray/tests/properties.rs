//! Property-based tests for the `levelarray` crate: geometry invariants,
//! renaming correctness under arbitrary sequential schedules, and statistics
//! consistency.

use larng::{default_rng, RandomSource};
use levelarray::balance::{is_overcrowded, overcrowding_threshold, tracked_batches};
use levelarray::geometry::BatchGeometry;
use levelarray::{
    ActivityArray, GetStats, LevelArray, LevelArrayConfig, Name, ProbePolicy, SlotLayout, TasKind,
};
use proptest::prelude::*;
use std::collections::HashSet;

/// Decodes a proptest draw into one of the three slot layouts.  Hybrid
/// splits cover the whole `0..=main_len` range, so the word boundaries and
/// both degenerate ends (all-word, all-packed) all get exercised.
fn layout_axis(draw: u16, main_len: usize) -> SlotLayout {
    match draw % 3 {
        0 => SlotLayout::WordPerSlot,
        1 => SlotLayout::Packed,
        _ => SlotLayout::hybrid((draw as usize / 3) % (main_len + 1)),
    }
}

proptest! {
    /// The batch geometry always partitions the main array exactly, with
    /// non-empty batches in increasing index order, for arbitrary n, space
    /// factor, and first-batch fraction.
    #[test]
    fn geometry_partitions_the_array(
        n in 1usize..5_000,
        factor in 1.0f64..8.0,
        fraction in 0.05f64..0.95,
    ) {
        let main_len = ((n as f64) * factor).floor().max(1.0) as usize;
        let g = BatchGeometry::new(main_len, fraction).unwrap();
        prop_assert_eq!(g.main_len(), main_len);
        let mut cursor = 0usize;
        for (i, range) in g.batches().enumerate() {
            prop_assert_eq!(range.start, cursor);
            prop_assert!(range.end > range.start, "batch {} empty", i);
            cursor = range.end;
        }
        prop_assert_eq!(cursor, main_len);
        // batch_of is consistent with the ranges.
        for (i, range) in g.batches().enumerate() {
            prop_assert_eq!(g.batch_of(range.start), i);
            prop_assert_eq!(g.batch_of(range.end - 1), i);
        }
    }

    /// Batch sizes never increase after batch 1 (geometric shrinking).
    #[test]
    fn geometry_batches_shrink(n in 2usize..5_000) {
        let g = BatchGeometry::for_contention(n);
        for i in 2..g.num_batches() {
            // Allow the final batch to absorb rounding slack of +1 relative to
            // the previous batch only when it is the last one.
            if i + 1 < g.num_batches() {
                prop_assert!(g.batch_len(i) <= g.batch_len(i - 1), "n={} i={}", n, i);
            }
        }
    }

    /// The paper's exact layout for the default configuration: batch 0 holds
    /// floor(3n/2) slots and the total main length is 2n.  (When the array is
    /// so small that batch 0 is the *only* batch, it additionally absorbs the
    /// rounding remainder, so the claim applies from two batches upward.)
    #[test]
    fn geometry_first_batch_is_three_halves_n(n in 1usize..10_000) {
        let g = BatchGeometry::for_contention(n);
        prop_assert_eq!(g.main_len(), 2 * n);
        if g.num_batches() >= 2 {
            prop_assert_eq!(g.batch_len(0), (3 * n) / 2);
        }
    }

    /// Overcrowding thresholds decrease doubly exponentially in the batch
    /// index and are never defined for batch 0.
    #[test]
    fn overcrowding_thresholds_decrease(n in 4usize..1_000_000) {
        prop_assert_eq!(overcrowding_threshold(n, 0), None);
        let mut previous = usize::MAX;
        for j in 1..tracked_batches(n) {
            if let Some(t) = overcrowding_threshold(n, j) {
                prop_assert!(t <= previous, "n={} j={}", n, j);
                prop_assert_eq!(t, n >> ((1usize << j) + 1));
                previous = t;
            }
        }
        // Untracked batches are never judged overcrowded.
        prop_assert!(!is_overcrowded(n, tracked_batches(n), usize::MAX / 2));
    }

    /// Long-lived renaming correctness under an arbitrary sequential schedule:
    /// no duplicate names while held, frees always succeed, collect returns
    /// exactly the held set, and probe counts stay within the wait-free bound
    /// — for all three slot layouts.
    #[test]
    fn sequential_schedule_correctness(
        seed in any::<u64>(),
        n in 1usize..64,
        layout in any::<u16>(),
        ops in proptest::collection::vec(any::<u16>(), 1..400),
    ) {
        let array = LevelArrayConfig::new(n)
            .slot_layout(layout_axis(layout, 2 * n))
            .build()
            .unwrap();
        let mut rng = default_rng(seed);
        let mut held: Vec<Name> = Vec::new();

        // Wait-free bound on probes: one probe per batch plus the whole backup.
        let max_probes = array.geometry().num_batches() as u32 + array.backup_len() as u32;

        for op in ops {
            let register = (op % 2 == 0 && held.len() < n) || held.is_empty();
            if register {
                let got = array.get(&mut rng);
                prop_assert!(got.probes() <= max_probes);
                prop_assert!(!held.contains(&got.name()), "duplicate name {}", got.name());
                held.push(got.name());
            } else {
                let victim = held.swap_remove((op as usize) % held.len());
                array.free(victim);
            }
            // Collect returns exactly the held set (sequential execution, so
            // the census is exact).
            let mut collected = array.collect();
            collected.sort();
            let mut expected = held.clone();
            expected.sort();
            prop_assert_eq!(collected, expected);
            prop_assert_eq!(array.occupancy().total_occupied(), held.len());
        }
    }

    /// The array never hands out more names than its capacity and recovers the
    /// full capacity after mass frees, regardless of probe policy, TAS kind
    /// and slot layout.
    #[test]
    fn fill_then_drain_restores_capacity(
        seed in any::<u64>(),
        n in 1usize..48,
        probes in 1u32..4,
        swap_tas in any::<bool>(),
        layout in any::<u16>(),
    ) {
        let array = LevelArrayConfig::new(n)
            .probes_per_batch(probes)
            .tas_kind(if swap_tas { TasKind::Swap } else { TasKind::CompareExchange })
            .slot_layout(layout_axis(layout, 2 * n))
            .build()
            .unwrap();
        let mut rng = default_rng(seed);
        let mut held = HashSet::new();
        // Try hard to fill the whole structure (randomized probing may need
        // several attempts per remaining slot).
        for _ in 0..array.capacity() * 50 {
            if let Some(got) = array.try_get(&mut rng) {
                prop_assert!(held.insert(got.name()));
                if held.len() == array.capacity() {
                    break;
                }
            }
        }
        prop_assert_eq!(held.len(), array.capacity());
        prop_assert!(array.try_get(&mut rng).is_none());
        for name in held.drain() {
            array.free(name);
        }
        prop_assert_eq!(array.collect().len(), 0);
        prop_assert!(array.try_get(&mut rng).is_some());
    }

    /// GetStats aggregates are consistent with a straightforward recomputation
    /// from the individual operations.
    #[test]
    fn stats_match_direct_computation(
        seed in any::<u64>(),
        n in 1usize..64,
        gets in 1usize..300,
    ) {
        let array = LevelArray::new(n);
        let mut rng = default_rng(seed);
        let mut stats = GetStats::new();
        let mut probes = Vec::new();
        for i in 0..gets {
            let got = array.get(&mut rng);
            stats.record(&got);
            probes.push(got.probes());
            // Keep the array from saturating: free every other name.
            if i % 2 == 0 {
                array.free(got.name());
            }
            if array.collect().len() >= n {
                // Drain to stay within the contention bound.
                for name in array.collect() {
                    array.free(name);
                }
            }
        }
        let count = probes.len() as f64;
        let mean = probes.iter().map(|&p| p as f64).sum::<f64>() / count;
        let var = probes.iter().map(|&p| (p as f64 - mean).powi(2)).sum::<f64>() / count;
        prop_assert_eq!(stats.operations(), probes.len() as u64);
        prop_assert!((stats.mean_probes() - mean).abs() < 1e-9);
        prop_assert!((stats.stddev_probes() - var.sqrt()).abs() < 1e-6);
        prop_assert_eq!(stats.max_probes(), *probes.iter().max().unwrap());
        let hist_total: u64 = stats.probe_histogram().iter().sum();
        prop_assert_eq!(hist_total, stats.operations());
    }

    /// Per-batch probe policies are respected: with all of batch 0 forced to
    /// be occupied, an operation performs exactly c_0 probes in batch 0 before
    /// moving on (observable through the total probe count lower bound).
    #[test]
    fn probe_policy_lower_bounds_probe_count(
        seed in any::<u64>(),
        c0 in 1u32..6,
    ) {
        let n = 32;
        let array = LevelArrayConfig::new(n)
            .probe_policy(ProbePolicy::PerBatch(vec![c0, 1]))
            .build()
            .unwrap();
        // Occupy every slot of batch 0.
        for idx in array.geometry().batch_range(0) {
            prop_assert!(array.force_occupy(Name::new(idx)));
        }
        let mut rng = default_rng(seed);
        let got = array.get(&mut rng);
        prop_assert!(got.probes() > c0, "stopped too early: {} probes", got.probes());
        prop_assert_ne!(got.batch(), Some(0));
    }

    /// `random(1, v)`-style probing always yields names inside the structure's
    /// namespace: 0 <= name < capacity.
    #[test]
    fn names_are_dense(seed in any::<u64>(), n in 1usize..128, gets in 1usize..64) {
        let array = LevelArray::new(n);
        let mut rng = default_rng(seed);
        for _ in 0..gets.min(n) {
            let got = array.get(&mut rng);
            prop_assert!(got.name().index() < array.capacity());
        }
    }
}

/// A deterministic (non-proptest) regression: the default configuration's
/// expected probe count on an otherwise empty array is exactly 1 probe for the
/// overwhelming majority of operations.
#[test]
fn empty_array_gets_almost_always_take_one_probe() {
    let array = LevelArray::new(1024);
    let mut rng = default_rng(7);
    let mut stats = GetStats::new();
    for _ in 0..10_000 {
        let got = array.get(&mut rng);
        stats.record(&got);
        array.free(got.name());
    }
    assert!(stats.mean_probes() < 1.05, "mean = {}", stats.mean_probes());
    assert!(stats.max_probes() <= 4, "max = {}", stats.max_probes());
}

/// RandomSource trait objects and concrete generators can be mixed freely.
#[test]
fn get_accepts_any_random_source() {
    let array = LevelArray::new(4);
    let mut lehmer = larng::MinStd::seed_from_u64(1);
    let mut xorshift = larng::Xorshift64Star::seed_from_u64(2);
    let a = array.get(&mut lehmer);
    let b = array.get(&mut xorshift);
    assert_ne!(a.name(), b.name());
    array.free(a.name());
    array.free(b.name());
    // Through a dyn reference as well.
    let dynrng: &mut dyn RandomSource = &mut lehmer;
    let c = array.get(dynrng);
    array.free(c.name());
}
