//! Property-based tests for the `ElasticLevelArray`: uniqueness of
//! epoch-tagged names across growth events for every `(threads, n)`
//! combination, sequentially (full drains through the growth path and the
//! capped-fallback path) and under concurrent get/free traffic.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use larng::default_rng;
use levelarray::{ActivityArray, GrowthPolicy, LevelArrayConfig, Name, SlotLayout};

use proptest::prelude::*;

fn cases(n: u32) -> ProptestConfig {
    ProptestConfig::with_cases(if cfg!(miri) { 2 } else { n })
}

/// Decodes a proptest draw into one of the three slot layouts; hybrid splits
/// are chosen against the initial epoch's main array (doubled epochs keep
/// the same split, so their word-per-slot head shrinks proportionally).
fn layout_axis(draw: u16, main_len: usize) -> SlotLayout {
    match draw % 3 {
        0 => SlotLayout::WordPerSlot,
        1 => SlotLayout::Packed,
        _ => SlotLayout::hybrid((draw as usize / 3) % (main_len + 1)),
    }
}

proptest! {
    #![proptest_config(cases(32))]

    /// Acquiring far beyond the initial bound grows the chain, every name is
    /// a fresh (epoch, index) pair, frees route back by tag, and draining
    /// retires everything but the newest epoch — under all three slot
    /// layouts.
    #[test]
    fn growth_hands_out_unique_epoch_tagged_names(
        n in 1usize..8,
        max_epochs in 2usize..5,
        pin_stripes in 1usize..5,
        layout in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let array = LevelArrayConfig::new(n)
            .growth(GrowthPolicy::Doubling { max_epochs })
            .pin_stripes(pin_stripes)
            .slot_layout(layout_axis(layout, 2 * n))
            .build_elastic()
            .unwrap();
        // Per-epoch capacity for the default config is 3 * bound, so the
        // whole chain (bounds n, 2n, ... 2^(k-1) n) holds:
        let total_capacity = 3 * n * ((1 << max_epochs) - 1);
        let mut rng = default_rng(seed);
        let mut held = HashSet::new();
        // Randomized probing may transiently miss free slots, so a None is a
        // retry; the bound keeps a broken implementation from spinning.
        for _ in 0..total_capacity * 4_000 {
            if held.len() == total_capacity {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                let name = got.name();
                prop_assert!(name.epoch() < max_epochs, "epoch beyond the cap");
                prop_assert!(held.insert(name), "duplicate name {}", name);
            }
        }
        prop_assert_eq!(held.len(), total_capacity);
        prop_assert_eq!(array.num_epochs(), max_epochs);
        prop_assert!(array.try_get(&mut rng).is_none(),
            "a full capped chain must report exhaustion");
        // Every live epoch contributed its exact capacity.
        for (i, &epoch) in array.epoch_ids().iter().enumerate() {
            let from_epoch = held.iter().filter(|h| h.epoch() == epoch).count();
            prop_assert_eq!(from_epoch, 3 * n * (1 << i));
        }
        // Frees route by tag; draining retires all but the newest epoch.
        for &name in &held {
            array.free(name);
        }
        let _ = array.try_retire();
        prop_assert_eq!(array.num_epochs(), 1);
        prop_assert!(array.collect().is_empty());
        // Quiescent reclamation converges for every stripe count.
        prop_assert_eq!(array.pending_reclamation(), 0);
    }

    /// A Fixed-policy elastic array is behaviorally a plain LevelArray:
    /// same capacity, epoch-0 names only, exhaustion instead of growth.
    #[test]
    fn fixed_policy_never_grows(n in 1usize..24, seed in any::<u64>()) {
        let array = LevelArrayConfig::new(n).build_elastic().unwrap();
        let plain = LevelArrayConfig::new(n).build().unwrap();
        prop_assert_eq!(array.capacity(), plain.capacity());
        let mut rng = default_rng(seed);
        let mut held = Vec::new();
        for _ in 0..array.capacity() * 4_000 {
            if held.len() == array.capacity() {
                break;
            }
            if let Some(got) = array.try_get(&mut rng) {
                prop_assert_eq!(got.name().epoch(), 0);
                held.push(got.name());
            }
        }
        prop_assert_eq!(held.len(), array.capacity());
        prop_assert!(array.try_get(&mut rng).is_none());
        prop_assert_eq!(array.num_epochs(), 1);
        for name in held {
            array.free(name);
        }
    }
}

proptest! {
    #![proptest_config(cases(8))]

    /// Concurrent get/free from several threads racing the growth path: no
    /// (epoch, index) pair is ever held by two threads at once, for
    /// arbitrary (threads, n).
    #[test]
    fn concurrent_churn_across_growth_never_duplicates_names(
        threads in 2usize..5,
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        let array = Arc::new(
            LevelArrayConfig::new(n)
                .growth(GrowthPolicy::Doubling { max_epochs: 8 })
                .build_elastic()
                .unwrap(),
        );
        let live = Arc::new(Mutex::new(HashSet::<Name>::new()));
        let duplicates = Arc::new(AtomicUsize::new(0));
        // Each thread holds up to 3n names — together well beyond the
        // initial epoch, so growth happens while others churn.
        let quota = 3 * n;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let array = Arc::clone(&array);
                let live = Arc::clone(&live);
                let duplicates = Arc::clone(&duplicates);
                scope.spawn(move || {
                    let mut rng =
                        default_rng(seed ^ (t as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    let mut mine = Vec::new();
                    for _ in 0..100 {
                        while mine.len() < quota {
                            let name = array.get(&mut rng).name();
                            if !live.lock().unwrap().insert(name) {
                                duplicates.fetch_add(1, Ordering::Relaxed);
                            }
                            mine.push(name);
                        }
                        while let Some(name) = mine.pop() {
                            live.lock().unwrap().remove(&name);
                            array.free(name);
                        }
                    }
                });
            }
        });
        prop_assert_eq!(duplicates.load(Ordering::Relaxed), 0);
        prop_assert!(array.collect().is_empty());
        let _ = array.try_retire();
        prop_assert_eq!(array.num_epochs(), 1);
        prop_assert_eq!(array.pending_reclamation(), 0);
    }
}
