//! Deterministic interleaving verification of the elastic epoch chain.
//!
//! Compiled only under `RUSTFLAGS="--cfg la_loom"` (see `make loom`), this
//! suite drives the *real* library code — `ElasticLevelArray`, `EpochChain`
//! and everything beneath them — through `la_sync::model`, which enumerates
//! every thread interleaving (and every stale-read branch the C11 memory
//! model permits for non-SeqCst loads) within a preemption bound.  Each
//! `model(..)` closure is one small litmus scenario around the seal → grace
//! → census → unlink retirement protocol; an assertion failure in *any*
//! explored schedule fails the test and prints the schedule's choice path.
//!
//! The central invariant, shared by several models below: **a name returned
//! by `Get` always belongs to a live epoch.**  The protocol enforces it with
//! a sequentially consistent seal CAS; the seeded ordering mutant
//! (`--cfg la_loom_weak_seal`, `make loom-mutant`) weakens that CAS to
//! `Relaxed`, which legalizes a schedule where a hinted re-acquire misses
//! the seal after the retirement census and claims a slot in an epoch that
//! is then unlinked.  These tests must fail under the mutant — that is the
//! suite's own soundness check.
#![cfg(la_loom)]

use std::sync::Arc;

use larng::default_rng;
use levelarray::{
    Acquired, ActivityArray, ChainRace, ElasticLevelArray, EpochChain, GrowthPolicy,
    LevelArrayConfig,
};

/// The smallest interesting elastic array: contention bound 1 (two main
/// slots + one backup per the space factor), doubling growth capped at
/// `max_epochs`, retirement under explicit test control, and the Free→Get
/// hint cache on — the hinted re-acquire path is the seal race's sharpest
/// edge.
///
/// **Two** pin stripes, deliberately: the round-robin stripe tokens land
/// the model's two worker threads on *different* stripes.  With a single
/// shared stripe, the retirer's post-seal pin-release and the getter's
/// later pin-acquire form an RMW release/acquire chain on that stripe
/// counter which happens-before-orders even a `Relaxed` seal — incidental
/// synchronization that masks the seeded `la_loom_weak_seal` mutant.  The
/// protocol's claim is that the *SeqCst seal itself* carries the argument
/// for arbitrary stripe assignments, so the model must separate the
/// stripes to test it.
fn elastic(max_epochs: usize) -> Arc<ElasticLevelArray> {
    Arc::new(
        LevelArrayConfig::new(1)
            .growth(GrowthPolicy::Doubling { max_epochs })
            .auto_retire(false)
            .free_hint(true)
            .pin_stripes(2)
            .build_elastic()
            .expect("valid model configuration"),
    )
}

/// Saturates epoch 0 and opens epoch 1, returning the epoch-0 names and the
/// epoch-1 anchor that keeps the chain from collapsing to a single node.
/// Randomized probing may route past free main slots to the backup and
/// declare saturation early, so the epoch-0 haul is whatever the seeded
/// probe sequence wins (at least one name) rather than a fixed count; the
/// single-threaded, fixed-seed setup makes it identical on every explored
/// schedule.
fn saturate_epoch0(array: &ElasticLevelArray) -> (Vec<Acquired>, Acquired) {
    let mut rng = default_rng(7);
    let mut e0 = Vec::new();
    loop {
        let got = array.try_get(&mut rng).expect("the chain can still grow");
        if got.name().epoch() == 1 {
            assert!(!e0.is_empty(), "the first Get must land in epoch 0");
            return (e0, got);
        }
        e0.push(got);
    }
}

/// The mutant-catching model.  Thread A frees the last epoch-0 name (arming
/// its Free→Get hint) and immediately re-acquires; thread B runs a full
/// retirement pass.  Under the correct SeqCst seal, every schedule ends with
/// A's name in a live epoch: either A revived epoch 0 before B could seal it
/// (B's held-scan or census sees the claim), or A observed the seal and was
/// routed to epoch 1.  Under `la_loom_weak_seal`, A's SeqCst `is_sealed`
/// load may legally return the stale `false` written before B's *relaxed*
/// seal CAS even though B has already passed grace and census — A then
/// claims a slot in an epoch B proceeds to unlink, and the final liveness
/// assertion fails.
#[test]
fn seal_vs_hinted_reacquire_keeps_names_in_live_epochs() {
    la_sync::model(|| {
        let array = elastic(2);
        let (e0, anchor) = saturate_epoch0(&array);
        // Drain epoch 0 down to one held name; A frees + re-gets that one.
        for a in &e0[1..] {
            array.free(a.name());
        }
        let last = e0[0].name();

        let a = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || {
                let mut rng = default_rng(11);
                array.free(last);
                array
                    .try_get(&mut rng)
                    .expect("epochs 0 and 1 both have capacity")
                    .name()
            })
        };
        let b = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || array.try_retire())
        };
        let got = a.join().unwrap();
        let retired = b.join().unwrap();

        let live = array.epoch_ids();
        assert!(
            live.contains(&got.epoch()),
            "Get returned {got} from epoch {} but the live epochs are \
             {live:?} (retired this pass: {retired}) — a registration \
             escaped the retirement census",
            got.epoch()
        );
        // The name must also be freeable (a name in an unlinked epoch
        // panics in cell_for), and the anchor is untouched throughout.
        array.free(got);
        assert_eq!(anchor.name().epoch(), 1);
        array.free(anchor.name());
    });
}

/// A free racing a retirement pass: thread A releases the *last* held name
/// of epoch 0 while thread B retires.  B may only retire epoch 0 if it
/// observes A's decrement (held == 0) — so every schedule ends in one of
/// exactly two states: epoch 0 retired, or epoch 0 live and fully drained.
#[test]
fn last_free_vs_retirement_reaches_a_consistent_state() {
    la_sync::model(|| {
        let array = elastic(2);
        let (e0, anchor) = saturate_epoch0(&array);
        for a in &e0[1..] {
            array.free(a.name());
        }
        let last = e0[0].name();

        let a = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || array.free(last))
        };
        let b = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || array.try_retire())
        };
        a.join().unwrap();
        let retired = b.join().unwrap();

        let live = array.epoch_ids();
        match retired {
            0 => {
                assert_eq!(live, vec![0, 1], "no retirement: both epochs live");
                assert_eq!(array.epoch_held(0), Some(0), "epoch 0 is drained");
            }
            1 => assert_eq!(live, vec![1], "epoch 0 retired cleanly"),
            n => panic!("retired {n} epochs out of one candidate"),
        }
        // The structure still serves: a fresh Get lands in a live epoch.
        let mut rng = default_rng(13);
        let again = array.try_get(&mut rng).expect("capacity available");
        assert!(array.epoch_ids().contains(&again.name().epoch()));
        array.free(again.name());
        array.free(anchor.name());
    });
}

/// The batched path under the same race: thread A frees its epoch-0 name
/// and claims a batch of two (`get_many` — one hint consult plus the
/// word-level multi-claim kernels) while thread B retires.  Every name of
/// the batch must come out of a live epoch.
#[test]
fn get_many_vs_retirement_stays_in_live_epochs() {
    la_sync::model(|| {
        let array = elastic(2);
        let (e0, anchor) = saturate_epoch0(&array);
        for a in &e0[1..] {
            array.free(a.name());
        }
        let last = e0[0].name();

        let a = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || {
                let mut rng = default_rng(17);
                array.free(last);
                let mut out = Vec::new();
                let won = array.get_many(&mut rng, 2, &mut out);
                assert_eq!(won, 2, "epochs 0 and 1 hold enough free slots");
                out.into_iter().map(|a| a.name()).collect::<Vec<_>>()
            })
        };
        let b = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || array.try_retire())
        };
        let names = a.join().unwrap();
        let retired = b.join().unwrap();

        let live = array.epoch_ids();
        for name in &names {
            assert!(
                live.contains(&name.epoch()),
                "get_many returned {name} from epoch {} but the live epochs \
                 are {live:?} (retired this pass: {retired})",
                name.epoch()
            );
        }
        array.free_many(&names);
        array.free(anchor.name());
    });
}

/// A getter racing an explicit shrink: the shrink publishes a smaller
/// epoch 2 over the head while A routes its probe through whatever head it
/// observes.  The claim must land in a live epoch and stay freeable, and
/// the chain must hold whichever of {2, 3} epochs the CAS race produced.
#[test]
fn shrink_vs_getter_keeps_the_claim_live() {
    la_sync::model(|| {
        let array = elastic(3);
        let (e0, anchor) = saturate_epoch0(&array);
        for a in &e0 {
            array.free(a.name());
        }

        let a = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || {
                let mut rng = default_rng(19);
                array.try_get(&mut rng).expect("plenty of capacity").name()
            })
        };
        let b = {
            let array = Arc::clone(&array);
            la_sync::thread::spawn(move || array.try_shrink())
        };
        let got = a.join().unwrap();
        let shrank = b.join().unwrap();

        let live = array.epoch_ids();
        assert!(
            live.contains(&got.epoch()),
            "Get returned {got} outside the live epochs {live:?}"
        );
        if shrank {
            assert_eq!(array.newest_epoch(), 2, "shrink published epoch 2");
            assert_eq!(array.epoch_contention(2), Some(1), "half of epoch 1");
        }
        array.free(got);
        array.free(anchor.name());
    });
}

/// Two concurrent growers on the raw chain: each CAS-publishes exactly one
/// node, retrying against whatever head it observes.  Every schedule must
/// end with both values present exactly once above the root — the "losers
/// discard their cell and route into the winner's" argument.
#[test]
fn concurrent_growers_publish_exactly_once() {
    la_sync::model(|| {
        let chain = Arc::new(EpochChain::with_stripes(0usize, 1));
        let push = |value: usize| {
            let chain = Arc::clone(&chain);
            la_sync::thread::spawn(move || loop {
                let pin = chain.pin();
                let head = pin.head();
                if pin.try_push(head, value) {
                    return;
                }
            })
        };
        let a = push(1);
        let b = push(2);
        a.join().unwrap();
        b.join().unwrap();

        let pin = chain.pin();
        let mut values: Vec<usize> = pin.iter().map(|n| *n.value()).collect();
        assert_eq!(values.len(), 3, "root + exactly one node per pusher");
        values.sort_unstable();
        assert_eq!(values, vec![0, 1, 2]);
    });
}

/// Pin versus unlink-and-collect on the raw chain: thread A holds a pin
/// over the old snapshot while thread B replaces it and tries to collect
/// the garbage.  The displaced node must never drop while A's pin can
/// still reach it — A re-checks the drop flag *after* dereferencing its
/// snapshot — and must drop eventually once the chain quiesces.
#[test]
fn pin_vs_unlink_never_frees_a_reachable_snapshot() {
    use la_sync::atomic::{AtomicUsize, Ordering};

    struct Flagged {
        id: usize,
        dropped: Arc<AtomicUsize>,
    }
    impl Drop for Flagged {
        fn drop(&mut self) {
            if self.id == 0 {
                self.dropped.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    impl Clone for Flagged {
        fn clone(&self) -> Self {
            Flagged {
                id: self.id,
                dropped: Arc::clone(&self.dropped),
            }
        }
    }

    la_sync::model(|| {
        let dropped = Arc::new(AtomicUsize::new(0));
        let chain = Arc::new(EpochChain::with_stripes(
            Flagged {
                id: 0,
                dropped: Arc::clone(&dropped),
            },
            1,
        ));

        let a = {
            let chain = Arc::clone(&chain);
            let dropped = Arc::clone(&dropped);
            la_sync::thread::spawn(move || {
                let pin = chain.pin();
                // Walk to the oldest node of our snapshot.  When the pin
                // lands before B's unlink, the snapshot reaches node 0 and
                // that node must still be alive after we dereference it;
                // when the pin lands after both the unlink and a completed
                // collection, the snapshot is rooted at node 1 and node 0
                // may already (correctly) be gone.
                let oldest = pin.iter().last().expect("chain is never empty").value();
                if oldest.id == 0 {
                    assert_eq!(
                        dropped.load(Ordering::SeqCst),
                        0,
                        "node 0 dropped while a pin could still reach it"
                    );
                }
            })
        };
        let b = {
            let chain = Arc::clone(&chain);
            la_sync::thread::spawn(move || {
                loop {
                    let pin = chain.pin();
                    let head = pin.head();
                    let value = Flagged {
                        id: 1,
                        dropped: Arc::clone(&head.value().dropped),
                    };
                    if pin.try_push(head, value) {
                        break;
                    }
                }
                // Unlink node 0; ChainRace means A-side traffic moved the
                // head, which never happens here (A only reads), so one
                // retry loop suffices for the model regardless.
                loop {
                    let pin = chain.pin();
                    match pin.try_remove(|v| v.id != 0) {
                        Ok(removed) => {
                            assert_eq!(removed, 1);
                            break;
                        }
                        Err(ChainRace) => continue,
                    }
                }
                chain.try_collect_garbage()
            })
        };
        a.join().unwrap();
        b.join().unwrap();

        // Quiescent: the displaced snapshot is collectable exactly once.
        while chain.pending_garbage() > 0 {
            assert!(chain.no_active_pins());
            chain.try_collect_garbage();
        }
        assert_eq!(dropped.load(Ordering::SeqCst), 1, "node 0 must drop once");
        let pin = chain.pin();
        assert_eq!(pin.num_nodes(), 1);
        assert_eq!(pin.head().value().id, 1);
    });
}
