//! Property-based tests for the epoch-tagged [`Name`] encoding: the
//! `(epoch, index)` pair round-trips losslessly over the full representable
//! range, the packed ordering is epoch-major, and epoch-0 names stay
//! bit-compatible with plain dense indices.

use levelarray::Name;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode/decode is lossless over the full `(epoch, index)` domain.
    #[test]
    fn epoch_index_round_trip_is_lossless(
        epoch in 0usize..=Name::MAX_EPOCH,
        index in 0usize..=Name::MAX_INDEX,
    ) {
        let name = Name::with_epoch(epoch, index);
        prop_assert_eq!(name.epoch(), epoch);
        prop_assert_eq!(name.index(), index);
        // The packed form round-trips through every raw conversion.
        prop_assert_eq!(Name::from_raw(name.raw()), name);
        prop_assert_eq!(Name::from(usize::from(name)), name);
        // Distinct pairs encode distinctly (flipping the low index bit stays
        // in range and must change the packed value).
        prop_assert_ne!(Name::with_epoch(epoch, index ^ 1), name);
    }

    /// Epoch-0 names are bit-identical to their dense index — the invariant
    /// every fixed-size structure and dense-array consumer relies on.
    #[test]
    fn epoch_zero_names_are_plain_indices(index in 0usize..=Name::MAX_INDEX) {
        let name = Name::new(index);
        prop_assert_eq!(name.raw(), index);
        prop_assert_eq!(name.epoch(), 0);
        prop_assert_eq!(name, Name::with_epoch(0, index));
        prop_assert_eq!(name.to_string(), index.to_string());
    }

    /// The derived ordering is epoch-major, then index — i.e. it agrees with
    /// the lexicographic order on the decoded pair.
    #[test]
    fn ordering_is_epoch_major(
        a in (0usize..=Name::MAX_EPOCH, 0usize..=Name::MAX_INDEX),
        b in (0usize..=Name::MAX_EPOCH, 0usize..=Name::MAX_INDEX),
    ) {
        let left = Name::with_epoch(a.0, a.1);
        let right = Name::with_epoch(b.0, b.1);
        prop_assert_eq!(left.cmp(&right), a.cmp(&b));
    }

    /// Every raw word decodes to a pair that re-encodes to the same word:
    /// `from_raw` is a bijection over the full `usize` space, so no raw
    /// value — however adversarial — aliases a different `(epoch, index)`.
    #[test]
    fn raw_words_round_trip_through_decode_and_reencode(raw in any::<usize>()) {
        let name = Name::from_raw(raw);
        prop_assert_eq!(name.raw(), raw);
        prop_assert!(name.epoch() <= Name::MAX_EPOCH);
        prop_assert!(name.index() <= Name::MAX_INDEX);
        prop_assert_eq!(Name::with_epoch(name.epoch(), name.index()), name);
    }

    /// Epoch boundaries never bleed: the largest index of epoch `e` packs
    /// strictly below the smallest index of epoch `e + 1`, so the whole
    /// raw space is partitioned into disjoint, contiguous epoch ranges.
    #[test]
    fn epoch_ranges_are_disjoint_and_contiguous(epoch in 0usize..Name::MAX_EPOCH) {
        let top = Name::with_epoch(epoch, Name::MAX_INDEX);
        let next = Name::with_epoch(epoch + 1, 0);
        prop_assert!(top < next);
        prop_assert_eq!(top.raw() + 1, next.raw());
    }
}

/// The exact corners of the packed domain, pinned without generators: the
/// all-ones name, the epoch-only and index-only extremes, and the zero name.
#[test]
fn encoding_corners_round_trip_exactly() {
    for (epoch, index) in [
        (0, 0),
        (0, Name::MAX_INDEX),
        (Name::MAX_EPOCH, 0),
        (Name::MAX_EPOCH, Name::MAX_INDEX),
    ] {
        let name = Name::with_epoch(epoch, index);
        assert_eq!((name.epoch(), name.index()), (epoch, index));
        assert_eq!(Name::from_raw(name.raw()), name);
    }
    assert_eq!(
        Name::with_epoch(Name::MAX_EPOCH, Name::MAX_INDEX).raw(),
        usize::MAX
    );
}
