//! Concurrent stress tests for the LevelArray.
//!
//! These tests exercise the structure the way the paper's benchmark does —
//! many threads registering and deregistering in a tight loop — and check the
//! renaming safety properties (unique ownership, no lost slots) using an
//! external ownership table, plus the headline performance property that the
//! worst-case probe count stays small.

use larng::{default_rng, SeedSequence};
use levelarray::{ActivityArray, GetStats, LevelArray, LevelArrayConfig, Registration, TasKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

/// Runs `threads` workers, each performing `iters` Get/Free pairs against one
/// shared array, asserting unique slot ownership throughout.  Returns the
/// merged statistics.
fn hammer(array: Arc<LevelArray>, threads: usize, iters: usize, seed: u64) -> GetStats {
    let ownership: Arc<Vec<AtomicBool>> = Arc::new(
        (0..array.capacity())
            .map(|_| AtomicBool::new(false))
            .collect(),
    );
    let mut seeds = SeedSequence::new(seed);
    let mut merged = GetStats::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let array = Arc::clone(&array);
            let ownership = Arc::clone(&ownership);
            let thread_seed = seeds.next_seed();
            handles.push(scope.spawn(move || {
                let mut rng = default_rng(thread_seed);
                let mut stats = GetStats::new();
                for _ in 0..iters {
                    let got = array.get(&mut rng);
                    stats.record(&got);
                    let idx = got.name().index();
                    assert!(
                        !ownership[idx].swap(true, Ordering::SeqCst),
                        "slot {idx} owned twice"
                    );
                    ownership[idx].store(false, Ordering::SeqCst);
                    array.free(got.name());
                }
                stats
            }));
        }
        for handle in handles {
            merged.merge(&handle.join().expect("worker panicked"));
        }
    });
    merged
}

#[test]
fn unique_ownership_under_contention() {
    let threads = available_threads();
    let array = Arc::new(LevelArray::new(threads));
    let stats = hammer(array.clone(), threads, 20_000, 0xDEADBEEF);
    assert_eq!(stats.operations(), (threads * 20_000) as u64);
    assert!(
        array.collect().is_empty(),
        "all slots must be free at the end"
    );
}

#[test]
fn worst_case_probe_count_stays_small() {
    // The paper reports a worst case of 6 probes over ~10^9 operations at
    // 50% pre-fill.  Size the array for a realistic contention bound (n = 256,
    // which gives the full logarithmic batch cascade) and hammer it with the
    // available hardware threads, each holding at most one slot at a time: in
    // this regime the backup array must never be reached, and probe counts
    // stay tiny.
    let threads = available_threads();
    let array = Arc::new(LevelArray::new(256));
    let stats = hammer(array.clone(), threads, 50_000, 42);
    assert!(
        stats.max_probes() <= 8,
        "worst case {} probes is far above the paper's reported behaviour",
        stats.max_probes()
    );
    assert!(
        stats.mean_probes() < 2.0,
        "mean {} probes is far above the paper's ~1.75",
        stats.mean_probes()
    );
    assert_eq!(
        stats.backup_operations(),
        0,
        "backup should never be needed"
    );
}

#[test]
fn oversubscribed_emulation_still_safe() {
    // The paper emulates N > n by having each thread hold several slots at
    // once.  Here each of `threads` workers holds up to 8 registrations.
    let threads = available_threads();
    let emulated_per_thread = 8;
    let n = threads * emulated_per_thread;
    let array = Arc::new(LevelArray::new(n));
    let mut seeds = SeedSequence::new(7);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let array = Arc::clone(&array);
            let seed = seeds.next_seed();
            scope.spawn(move || {
                let mut rng = default_rng(seed);
                for _ in 0..2_000 {
                    let regs: Vec<Registration<'_, LevelArray>> = (0..emulated_per_thread)
                        .map(|_| Registration::acquire(array.as_ref(), &mut rng))
                        .collect();
                    // All names held by this thread are distinct.
                    let mut names: Vec<_> = regs.iter().map(|r| r.name()).collect();
                    names.sort();
                    names.dedup();
                    assert_eq!(names.len(), emulated_per_thread);
                    drop(regs);
                }
            });
        }
    });
    assert!(array.collect().is_empty());
}

#[test]
fn concurrent_collect_sees_a_valid_subset() {
    // Validity (paper §2): every name returned by Collect was held by some
    // process at some point during the call.  With workers that only ever hold
    // slots they have legitimately acquired, it suffices to check that every
    // collected name is within range and was acquired at least once.
    let threads = available_threads().max(3) - 1; // leave one for the collector
    let n = threads;
    let array = Arc::new(LevelArray::new(n));
    let acquired_ever: Arc<Vec<AtomicBool>> = Arc::new(
        (0..array.capacity())
            .map(|_| AtomicBool::new(false))
            .collect(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let collects_done = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let mut seeds = SeedSequence::new(99);
        for _ in 0..threads {
            let array = Arc::clone(&array);
            let acquired_ever = Arc::clone(&acquired_ever);
            let stop = Arc::clone(&stop);
            let seed = seeds.next_seed();
            scope.spawn(move || {
                let mut rng = default_rng(seed);
                while !stop.load(Ordering::Relaxed) {
                    let got = array.get(&mut rng);
                    acquired_ever[got.name().index()].store(true, Ordering::Release);
                    array.free(got.name());
                }
            });
        }
        // Collector thread.
        {
            let array = Arc::clone(&array);
            let acquired_ever = Arc::clone(&acquired_ever);
            let stop = Arc::clone(&stop);
            let collects_done = Arc::clone(&collects_done);
            scope.spawn(move || {
                for _ in 0..200 {
                    let names = array.collect();
                    for name in names {
                        assert!(name.index() < array.capacity());
                        assert!(
                            acquired_ever[name.index()].load(Ordering::Acquire),
                            "collected name {name} that no worker ever acquired"
                        );
                    }
                    collects_done.fetch_add(1, Ordering::Relaxed);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(collects_done.load(Ordering::Relaxed), 200);
}

#[test]
fn swap_tas_is_safe_under_contention() {
    let threads = available_threads();
    let array = Arc::new(
        LevelArrayConfig::new(threads)
            .tas_kind(TasKind::Swap)
            .build()
            .unwrap(),
    );
    let stats = hammer(array.clone(), threads, 10_000, 5);
    assert_eq!(stats.operations(), (threads * 10_000) as u64);
    assert!(array.collect().is_empty());
}

#[test]
fn prefilled_array_still_serves_gets_quickly() {
    // 90% pre-fill (the paper's most aggressive contention setting): the
    // remaining Get/Free traffic must still be fast and safe.
    let n = 64;
    let array = Arc::new(LevelArray::new(n));
    let mut rng = default_rng(3);
    let prefill = (n * 9) / 10;
    let mut held = Vec::new();
    for _ in 0..prefill {
        held.push(array.get(&mut rng).name());
    }

    let threads = available_threads().min(n - prefill).max(1);
    let stats = hammer(array.clone(), threads, 10_000, 17);
    assert!(stats.mean_probes() < 4.0, "mean {}", stats.mean_probes());
    assert_eq!(array.collect().len(), prefill);
    for name in held {
        array.free(name);
    }
    assert!(array.collect().is_empty());
}
