//! The self-healing experiment (paper §5.2 and Figure 3).
//!
//! The paper initializes the LevelArray in an *unbalanced* state — batch 0 a
//! quarter full, batch 1 half full (and therefore overcrowded) — and then runs
//! a typical register/deregister workload, sampling the per-batch fill every
//! 4000 operations.  The distribution drifts back to the balanced profile
//! within a few tens of thousands of operations, faster than the analysis
//! predicts.  [`HealingExperiment`] reproduces exactly that protocol.

use larng::{default_rng, DefaultRng, RandomSource};
use levelarray::{
    ActivityArray, ElasticLevelArray, LevelArray, LevelArrayConfig, Name, OccupancySnapshot,
    ShardedLevelArray,
};

use crate::analysis::{ops_until_stably_balanced, OccupancySample};

/// How to skew the initial state of the array: the fraction of each batch's
/// slots to pre-occupy (entries beyond the array's batch count are ignored;
/// missing entries mean "leave empty").
#[derive(Debug, Clone, PartialEq)]
pub struct UnbalanceSpec {
    /// Fill fraction per batch, in batch order.
    pub batch_fractions: Vec<f64>,
}

impl UnbalanceSpec {
    /// The paper's Figure-3 initial state: batch 0 a quarter full, batch 1
    /// half full (overcrowded for any realistic `n`).
    pub fn paper_figure3() -> Self {
        UnbalanceSpec {
            batch_fractions: vec![0.25, 0.5],
        }
    }

    /// A custom skew.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or not finite.
    pub fn new(batch_fractions: Vec<f64>) -> Self {
        for &f in &batch_fractions {
            assert!(
                f.is_finite() && (0.0..=1.0).contains(&f),
                "fill fractions must lie in [0, 1], got {f}"
            );
        }
        UnbalanceSpec { batch_fractions }
    }
}

/// Forces `array` into the skewed state described by `spec` by directly
/// occupying randomly chosen slots of each batch.  Returns the occupied names
/// (which the healing workload will treat as held by its simulated threads).
///
/// The slots are chosen uniformly at random *within* each batch so that the
/// skew is in the batch totals, not in any particular slot pattern.
pub fn force_unbalanced(
    array: &LevelArray,
    spec: &UnbalanceSpec,
    rng: &mut dyn RandomSource,
) -> Vec<Name> {
    let mut held = Vec::new();
    install_skew(
        spec,
        array.geometry(),
        0,
        rng,
        |name| array.force_occupy(name).then_some(name),
        &mut held,
    );
    held
}

/// The sharded counterpart of [`force_unbalanced`]: applies the same
/// per-batch skew to *every shard* of the array (so the aggregate batch
/// totals carry the same overcrowding the paper's Figure 3 starts from),
/// choosing the occupied slots uniformly at random within each shard's
/// batch.  Returns the occupied global names.
pub fn force_unbalanced_sharded(
    array: &ShardedLevelArray,
    spec: &UnbalanceSpec,
    rng: &mut dyn RandomSource,
) -> Vec<Name> {
    let mut held = Vec::new();
    for shard in 0..array.num_shards() {
        install_skew(
            spec,
            array.shard_geometry(),
            shard * array.shard_capacity(),
            rng,
            |name| array.force_occupy(name).then_some(name),
            &mut held,
        );
    }
    held
}

/// The elastic counterpart of [`force_unbalanced`]: applies the per-batch
/// skew to the *newest* epoch of the chain (the one `Get` traffic routes to),
/// choosing the occupied slots uniformly at random within each batch.  A
/// hierarchical epoch (one backed by shard cores, see
/// [`levelarray::LevelArrayConfig::shard_group`]) gets the skew installed in
/// *every* shard — the same rule [`force_unbalanced_sharded`] applies one
/// level down — so the aggregate batch totals carry the intended
/// overcrowding whatever the epoch's backend.  Returns the occupied
/// epoch-tagged names (dense in-cell indices for a sharded epoch).
pub fn force_unbalanced_elastic(
    array: &ElasticLevelArray,
    spec: &UnbalanceSpec,
    rng: &mut dyn RandomSource,
) -> Vec<Name> {
    let epoch = array.newest_epoch();
    let geometry = array.newest_geometry();
    let mut held = Vec::new();
    for shard in 0..array.newest_epoch_shards() {
        install_skew(
            spec,
            &geometry,
            shard * array.newest_shard_capacity(),
            rng,
            |name| {
                let tagged = Name::with_epoch(epoch, name.index());
                array.force_occupy(tagged).then_some(tagged)
            },
            &mut held,
        );
    }
    held
}

/// The shared skew installer: occupies `round(len * fraction)` uniformly
/// chosen slots of each batch of one `geometry`, with slot indices offset by
/// `base`, recording the successfully occupied names in `held`.  The
/// `occupy` closure returns the name it actually installed (plain, shard- or
/// epoch-tagged), or `None` when the slot was already held.  The plain,
/// sharded and elastic skews all route through this, so the rounding and
/// slot-choice rules can never drift apart.
fn install_skew(
    spec: &UnbalanceSpec,
    geometry: &levelarray::geometry::BatchGeometry,
    base: usize,
    rng: &mut dyn RandomSource,
    mut occupy: impl FnMut(Name) -> Option<Name>,
    held: &mut Vec<Name>,
) {
    for (batch, &fraction) in spec.batch_fractions.iter().enumerate() {
        if batch >= geometry.num_batches() {
            break;
        }
        let mut slots: Vec<usize> = geometry.batch_range(batch).map(|i| base + i).collect();
        shuffle_indices(rng, &mut slots);
        let target = ((slots.len() as f64) * fraction).round() as usize;
        for &idx in slots.iter().take(target) {
            if let Some(installed) = occupy(Name::new(idx)) {
                held.push(installed);
            }
        }
    }
}

/// Fisher–Yates shuffle usable through a `&mut dyn RandomSource`
/// (the trait's own `shuffle` helper requires `Self: Sized`).
fn shuffle_indices(rng: &mut dyn RandomSource, slice: &mut [usize]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_index(i + 1);
        slice.swap(i, j);
    }
}

/// Configuration of a healing run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealingExperiment {
    /// The LevelArray under test, as a full typed configuration: healing can
    /// be studied on any geometry/probe/TAS ablation, not just the default
    /// `2n` layout.  The configuration's contention bound is the experiment's
    /// `n`.
    pub array: LevelArrayConfig,
    /// Number of simulated threads issuing Get/Free traffic.  Each holds at
    /// most one name at a time, in addition to the pre-occupied skew which is
    /// drained as the run progresses.
    pub workers: usize,
    /// Total number of Get/Free operations to run.
    pub total_ops: u64,
    /// Take an occupancy snapshot every this many operations (paper: 4000).
    pub snapshot_every: u64,
    /// The initial skew.
    pub spec: UnbalanceSpec,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of operations that release one of the pre-occupied ("ghost")
    /// names instead of a worker's own name, draining the skew gradually the
    /// way real threads deregistering would.  The paper schedules "arbitrarily
    /// chosen operations"; 0.5 reproduces its smooth decay.
    pub ghost_release_probability: f64,
}

impl HealingExperiment {
    /// The paper's Figure-3 setup scaled to contention bound `n`: the skew of
    /// [`UnbalanceSpec::paper_figure3`], `n/2` workers, 8 snapshot intervals
    /// of 4000 operations each.
    pub fn paper_figure3(n: usize, seed: u64) -> Self {
        HealingExperiment {
            array: LevelArrayConfig::new(n),
            workers: (n / 2).max(1),
            total_ops: 32_000,
            snapshot_every: 4_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed,
            ghost_release_probability: 0.5,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, `workers > contention_bound`,
    /// `snapshot_every == 0`, or the ghost-release probability is outside
    /// `[0, 1]`.
    pub fn run(&self) -> HealingReport {
        self.validate();
        let array = self
            .array
            .build()
            .expect("invalid LevelArray configuration");
        let mut rng: DefaultRng = default_rng(self.seed);
        let ghosts = force_unbalanced(&array, &self.spec, &mut rng);
        self.drive(&array, ghosts, &mut rng, |a| a.occupancy())
    }

    /// Runs the experiment on a [`ShardedLevelArray`] with `shards` shards:
    /// the same protocol (per-batch skew, register/deregister traffic with
    /// ghost draining, periodic sampling), with the skew applied to every
    /// shard and balance judged on the *batch-aggregated* census
    /// ([`ShardedLevelArray::batchwise_occupancy`]) so the paper's
    /// definitions — predicates over batch totals for contention bound `n` —
    /// carry over to the sharded layout.  Balance is only evaluated over the
    /// batches the shard geometry actually has: `⌈n/S⌉`-sized shards have
    /// fewer batches than a plain `n`-sized array, so keep the shard count
    /// well below `n` when comparing healing depth against the plain run.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`HealingExperiment::run`], or if the
    /// sharded configuration is invalid (e.g. `shards == 0`).
    pub fn run_sharded(&self, shards: usize) -> HealingReport {
        self.validate();
        let array = self
            .array
            .build_sharded(shards)
            .expect("invalid ShardedLevelArray configuration");
        let mut rng: DefaultRng = default_rng(self.seed);
        let ghosts = force_unbalanced_sharded(&array, &self.spec, &mut rng);
        self.drive(&array, ghosts, &mut rng, |a| a.batchwise_occupancy())
    }

    /// Runs the experiment on an [`ElasticLevelArray`] built from the
    /// experiment's configuration (including its
    /// [`levelarray::GrowthPolicy`]): the same protocol, with the skew
    /// applied to the newest epoch and balance judged on the
    /// *batch-aggregated* census
    /// ([`ElasticLevelArray::batchwise_occupancy`]).  With traffic inside
    /// the configured contention bound the chain never needs to grow, and
    /// the elastic layout must heal exactly like the plain one — which is
    /// precisely the point of this cell; growth and retirement under
    /// pressure (the lock-free chain's seal → grace → census → unlink
    /// seam) are exercised by the growth-storm suites instead
    /// (`tests/growth_storm.rs` and the `sweeps` bench's storm cells).
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`HealingExperiment::run`], or if
    /// the elastic configuration is invalid.
    pub fn run_elastic(&self) -> HealingReport {
        self.validate();
        let array = self
            .array
            .build_elastic()
            .expect("invalid ElasticLevelArray configuration");
        let mut rng: DefaultRng = default_rng(self.seed);
        let ghosts = force_unbalanced_elastic(&array, &self.spec, &mut rng);
        self.drive(&array, ghosts, &mut rng, |a| a.batchwise_occupancy())
    }

    fn validate(&self) {
        let n = self.array.max_concurrency_value();
        assert!(self.workers > 0, "need at least one worker");
        assert!(
            self.workers <= n,
            "workers ({}) exceed the contention bound ({n})",
            self.workers
        );
        assert!(
            self.snapshot_every > 0,
            "snapshot interval must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.ghost_release_probability),
            "ghost release probability must lie in [0, 1]"
        );
    }

    /// The shared protocol: run register/deregister traffic over `array`
    /// (whose skewed initial state holds `ghosts`), sampling `snapshot` every
    /// `snapshot_every` operations and judging balance against this
    /// experiment's contention bound.  Before each scheduled operation the
    /// chosen worker's identity is passed to [`ActivityArray::route_hint`],
    /// so sticky-routing layouts see a spread-out population despite the
    /// simulator's single OS thread.
    fn drive<A: ActivityArray>(
        &self,
        array: &A,
        mut ghosts: Vec<Name>,
        rng: &mut DefaultRng,
        snapshot: impl Fn(&A) -> OccupancySnapshot,
    ) -> HealingReport {
        let n = self.array.max_concurrency_value();
        let initial_snapshot = snapshot(array);
        let initially_balanced = self
            .array
            .balance_report(&initial_snapshot)
            .is_fully_balanced();
        let mut samples = vec![OccupancySample::from_snapshot(0, &initial_snapshot, n)];

        // Worker-held names (at most one each).
        let mut worker_names: Vec<Option<Name>> = vec![None; self.workers];

        let mut ops: u64 = 0;
        while ops < self.total_ops {
            let worker = rng.gen_index(self.workers);
            array.route_hint(worker);
            // Decide what this scheduled operation does, mirroring a typical
            // register/deregister stream: a worker that holds a name frees it,
            // one that does not registers; with some probability the "free"
            // instead drains one of the ghost holdings left over from the
            // skewed initial state.
            if !ghosts.is_empty() && rng.gen_bool(self.ghost_release_probability) {
                let victim = rng.gen_index(ghosts.len());
                let name = ghosts.swap_remove(victim);
                array.free(name);
            } else if let Some(name) = worker_names[worker].take() {
                array.free(name);
            } else {
                let got = array.get(rng);
                worker_names[worker] = Some(got.name());
            }
            ops += 1;

            if ops % self.snapshot_every == 0 {
                samples.push(OccupancySample::from_snapshot(ops, &snapshot(array), n));
            }
        }

        let final_report = self.array.balance_report(&snapshot(array));
        HealingReport {
            initially_balanced,
            finally_balanced: final_report.is_fully_balanced(),
            ops_to_balance: ops_until_stably_balanced(&samples),
            samples,
        }
    }
}

/// The outcome of a healing run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealingReport {
    /// Whether the array was (already) fully balanced in its skewed initial
    /// state — `false` when the spec actually overcrowds a batch.
    pub initially_balanced: bool,
    /// Whether the array was fully balanced after the last operation.
    pub finally_balanced: bool,
    /// The operation count of the first snapshot from which the array stayed
    /// balanced for the rest of the run (`None` if it never stabilized).
    pub ops_to_balance: Option<u64>,
    /// The snapshot series (first entry = the skewed initial state at 0 ops).
    pub samples: Vec<OccupancySample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbalance_spec_validation() {
        let spec = UnbalanceSpec::new(vec![0.0, 1.0, 0.5]);
        assert_eq!(spec.batch_fractions.len(), 3);
        assert_eq!(
            UnbalanceSpec::paper_figure3().batch_fractions,
            vec![0.25, 0.5]
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn unbalance_spec_rejects_bad_fractions() {
        let _ = UnbalanceSpec::new(vec![1.5]);
    }

    #[test]
    fn force_unbalanced_hits_the_requested_fractions() {
        let n = 512;
        let array = LevelArray::new(n);
        let mut rng = default_rng(1);
        let spec = UnbalanceSpec::paper_figure3();
        let held = force_unbalanced(&array, &spec, &mut rng);

        let snap = array.occupancy();
        let b0 = snap.batch(0).unwrap();
        let b1 = snap.batch(1).unwrap();
        assert_eq!(
            b0.occupied(),
            (b0.capacity() as f64 * 0.25).round() as usize
        );
        assert_eq!(b1.occupied(), (b1.capacity() as f64 * 0.5).round() as usize);
        assert_eq!(held.len(), b0.occupied() + b1.occupied());

        // Batch 1 holds n/8 slots = 64 >= the overcrowding threshold n/8 = 64,
        // so the initial state is genuinely unbalanced.
        let report = LevelArrayConfig::new(n).balance_report(&snap);
        assert!(!report.is_fully_balanced(), "{report:?}");
    }

    #[test]
    fn healing_restores_balance() {
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(256),
            workers: 64,
            total_ops: 20_000,
            snapshot_every: 1_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed: 42,
            ghost_release_probability: 0.5,
        };
        let report = experiment.run();
        assert!(!report.initially_balanced, "the skew must start unbalanced");
        assert!(report.finally_balanced, "the array should have healed");
        let healed_at = report
            .ops_to_balance
            .expect("the array should stabilize within the run");
        assert!(healed_at <= 20_000);
        // The fill of batch 1 must end below its starting point.
        let first = &report.samples[0];
        let last = report.samples.last().unwrap();
        assert!(last.batch_fill[1] < first.batch_fill[1]);
        // Samples are taken at the configured cadence plus the initial one.
        assert_eq!(report.samples.len(), 1 + 20);
    }

    #[test]
    fn paper_figure3_constructor_matches_paper_parameters() {
        let e = HealingExperiment::paper_figure3(80, 7);
        assert_eq!(e.total_ops, 32_000);
        assert_eq!(e.snapshot_every, 4_000);
        assert_eq!(e.workers, 40);
        assert_eq!(e.spec, UnbalanceSpec::paper_figure3());
        let report = e.run();
        assert_eq!(report.samples.len(), 9);
        assert!(report.finally_balanced);
    }

    #[test]
    fn sharded_healing_restores_balance() {
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(256),
            workers: 64,
            total_ops: 20_000,
            snapshot_every: 1_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed: 42,
            ghost_release_probability: 0.5,
        };
        let report = experiment.run_sharded(4);
        assert!(
            !report.initially_balanced,
            "the per-shard skew must aggregate to an unbalanced start"
        );
        assert!(report.finally_balanced, "the sharded array should heal");
        let healed_at = report
            .ops_to_balance
            .expect("the sharded array should stabilize within the run");
        assert!(healed_at <= 20_000);
        // Batch 1's aggregate fill drains, exactly like the plain layout.
        let first = &report.samples[0];
        let last = report.samples.last().unwrap();
        assert!(last.batch_fill[1] < first.batch_fill[1]);
        assert_eq!(report.samples.len(), 1 + 20);
    }

    #[test]
    fn sharded_skew_hits_every_shard() {
        let array = levelarray::ShardedLevelArray::new(256, 4);
        let mut rng = default_rng(9);
        let spec = UnbalanceSpec::paper_figure3();
        let held = force_unbalanced_sharded(&array, &spec, &mut rng);
        let snap = array.occupancy();
        for shard in 0..4 {
            let b0 = snap.shard_batch(shard, 0).unwrap();
            let b1 = snap.shard_batch(shard, 1).unwrap();
            assert_eq!(
                b0.occupied(),
                (b0.capacity() as f64 * 0.25).round() as usize
            );
            assert_eq!(b1.occupied(), (b1.capacity() as f64 * 0.5).round() as usize);
        }
        assert_eq!(held.len(), snap.total_occupied());
        // The aggregate view starts unbalanced for the full contention bound.
        let report = LevelArrayConfig::new(256).balance_report(&array.batchwise_occupancy());
        assert!(!report.is_fully_balanced(), "{report:?}");
    }

    #[test]
    fn elastic_healing_restores_balance() {
        use levelarray::GrowthPolicy;
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(256).growth(GrowthPolicy::Doubling { max_epochs: 4 }),
            workers: 64,
            total_ops: 20_000,
            snapshot_every: 1_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed: 42,
            ghost_release_probability: 0.5,
        };
        let report = experiment.run_elastic();
        assert!(!report.initially_balanced, "the skew must start unbalanced");
        assert!(report.finally_balanced, "the elastic array should heal");
        let healed_at = report
            .ops_to_balance
            .expect("the elastic array should stabilize within the run");
        assert!(healed_at <= 20_000);
        let first = &report.samples[0];
        let last = report.samples.last().unwrap();
        assert!(last.batch_fill[1] < first.batch_fill[1]);
        assert_eq!(report.samples.len(), 1 + 20);
    }

    #[test]
    fn elastic_skew_lands_in_the_newest_epoch() {
        use levelarray::{ElasticLevelArray, GrowthPolicy};
        let array = ElasticLevelArray::new(256, GrowthPolicy::Doubling { max_epochs: 4 });
        let mut rng = default_rng(9);
        let spec = UnbalanceSpec::paper_figure3();
        let held = force_unbalanced_elastic(&array, &spec, &mut rng);
        assert!(held.iter().all(|n| n.epoch() == array.newest_epoch()));
        let snap = array.occupancy();
        let b0 = snap.epoch_batch(0, 0).unwrap();
        let b1 = snap.epoch_batch(0, 1).unwrap();
        assert_eq!(
            b0.occupied(),
            (b0.capacity() as f64 * 0.25).round() as usize
        );
        assert_eq!(b1.occupied(), (b1.capacity() as f64 * 0.5).round() as usize);
        assert_eq!(held.len(), snap.total_occupied());
        // The aggregate view starts unbalanced for the contention bound.
        let report = LevelArrayConfig::new(256).balance_report(&array.batchwise_occupancy());
        assert!(!report.is_fully_balanced(), "{report:?}");
        for name in held {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    fn hierarchical_healing_restores_balance() {
        // The elastic-of-sharded composition: every epoch of the elastic
        // chain is itself 4 shard cores (256 / shard_group 64).  The skew
        // lands in every shard of the newest epoch, the workload routes
        // workers to home shards via route_hint, and balance is judged on
        // the batch-aggregated census — the same caveat as run_sharded:
        // balance is evaluated over the per-shard geometry's batches.
        use levelarray::GrowthPolicy;
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(256)
                .growth(GrowthPolicy::Doubling { max_epochs: 4 })
                .shard_group(64),
            workers: 64,
            total_ops: 20_000,
            snapshot_every: 1_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed: 42,
            ghost_release_probability: 0.5,
        };
        let report = experiment.run_elastic();
        assert!(
            !report.initially_balanced,
            "the per-shard skew must aggregate to an unbalanced start"
        );
        assert!(
            report.finally_balanced,
            "the hierarchical array should heal"
        );
        assert!(report.ops_to_balance.expect("should stabilize") <= 20_000);
        let first = &report.samples[0];
        let last = report.samples.last().unwrap();
        assert!(last.batch_fill[1] < first.batch_fill[1]);
    }

    #[test]
    fn hierarchical_skew_hits_every_shard_of_the_newest_epoch() {
        use levelarray::{GrowthPolicy, Topology};
        // Inject a synthetic two-node topology: placement must not affect
        // where the skew lands (it targets slots, not homes), but the array
        // must accept and expose the injected layout.
        let array = levelarray::ElasticLevelArray::from_config_with_topology(
            &LevelArrayConfig::new(256)
                .growth(GrowthPolicy::Doubling { max_epochs: 4 })
                .shard_group(64),
            Topology::synthetic(vec![vec![0, 1], vec![2, 3]]),
        )
        .unwrap();
        assert_eq!(array.topology().num_nodes(), 2);
        assert_eq!(array.newest_epoch_shards(), 4);
        let mut rng = default_rng(9);
        let spec = UnbalanceSpec::paper_figure3();
        let held = force_unbalanced_elastic(&array, &spec, &mut rng);
        let snap = array.batchwise_occupancy();
        // Four shards of bound 64, each skewed like a plain 64-array: the
        // aggregate batch totals carry 4x one shard's skew.
        let b0 = snap.batch(0).unwrap();
        let b1 = snap.batch(1).unwrap();
        let per_shard_geo = array.newest_geometry();
        let shard_b0 = (per_shard_geo.batch_len(0) as f64 * 0.25).round() as usize;
        let shard_b1 = (per_shard_geo.batch_len(1) as f64 * 0.5).round() as usize;
        assert_eq!(b0.occupied(), 4 * shard_b0);
        assert_eq!(b1.occupied(), 4 * shard_b1);
        assert_eq!(held.len(), snap.total_occupied());
        for name in held {
            array.free(name);
        }
        assert!(array.collect().is_empty());
    }

    #[test]
    #[should_panic(expected = "exceed the contention bound")]
    fn too_many_workers_rejected() {
        let mut e = HealingExperiment::paper_figure3(8, 1);
        e.workers = 100;
        let _ = e.run();
    }

    #[test]
    fn already_balanced_start_stays_balanced() {
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(128),
            workers: 32,
            total_ops: 5_000,
            snapshot_every: 500,
            spec: UnbalanceSpec::new(vec![0.1]),
            seed: 3,
            ghost_release_probability: 0.25,
        };
        let report = experiment.run();
        assert!(report.initially_balanced);
        assert!(report.finally_balanced);
        assert_eq!(report.ops_to_balance, Some(0));
    }
}
