//! The self-healing experiment (paper §5.2 and Figure 3).
//!
//! The paper initializes the LevelArray in an *unbalanced* state — batch 0 a
//! quarter full, batch 1 half full (and therefore overcrowded) — and then runs
//! a typical register/deregister workload, sampling the per-batch fill every
//! 4000 operations.  The distribution drifts back to the balanced profile
//! within a few tens of thousands of operations, faster than the analysis
//! predicts.  [`HealingExperiment`] reproduces exactly that protocol.

use larng::{default_rng, DefaultRng, RandomSource};
use levelarray::{ActivityArray, LevelArray, LevelArrayConfig, Name};

use crate::analysis::{ops_until_stably_balanced, OccupancySample};

/// How to skew the initial state of the array: the fraction of each batch's
/// slots to pre-occupy (entries beyond the array's batch count are ignored;
/// missing entries mean "leave empty").
#[derive(Debug, Clone, PartialEq)]
pub struct UnbalanceSpec {
    /// Fill fraction per batch, in batch order.
    pub batch_fractions: Vec<f64>,
}

impl UnbalanceSpec {
    /// The paper's Figure-3 initial state: batch 0 a quarter full, batch 1
    /// half full (overcrowded for any realistic `n`).
    pub fn paper_figure3() -> Self {
        UnbalanceSpec {
            batch_fractions: vec![0.25, 0.5],
        }
    }

    /// A custom skew.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `[0, 1]` or not finite.
    pub fn new(batch_fractions: Vec<f64>) -> Self {
        for &f in &batch_fractions {
            assert!(
                f.is_finite() && (0.0..=1.0).contains(&f),
                "fill fractions must lie in [0, 1], got {f}"
            );
        }
        UnbalanceSpec { batch_fractions }
    }
}

/// Forces `array` into the skewed state described by `spec` by directly
/// occupying randomly chosen slots of each batch.  Returns the occupied names
/// (which the healing workload will treat as held by its simulated threads).
///
/// The slots are chosen uniformly at random *within* each batch so that the
/// skew is in the batch totals, not in any particular slot pattern.
pub fn force_unbalanced(
    array: &LevelArray,
    spec: &UnbalanceSpec,
    rng: &mut dyn RandomSource,
) -> Vec<Name> {
    let mut held = Vec::new();
    for (batch, &fraction) in spec.batch_fractions.iter().enumerate() {
        if batch >= array.geometry().num_batches() {
            break;
        }
        let range = array.geometry().batch_range(batch);
        let mut slots: Vec<usize> = range.collect();
        shuffle_indices(rng, &mut slots);
        let target = ((slots.len() as f64) * fraction).round() as usize;
        for &idx in slots.iter().take(target) {
            let name = Name::new(idx);
            if array.force_occupy(name) {
                held.push(name);
            }
        }
    }
    held
}

/// Fisher–Yates shuffle usable through a `&mut dyn RandomSource`
/// (the trait's own `shuffle` helper requires `Self: Sized`).
fn shuffle_indices(rng: &mut dyn RandomSource, slice: &mut [usize]) {
    for i in (1..slice.len()).rev() {
        let j = rng.gen_index(i + 1);
        slice.swap(i, j);
    }
}

/// Configuration of a healing run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealingExperiment {
    /// The LevelArray under test, as a full typed configuration: healing can
    /// be studied on any geometry/probe/TAS ablation, not just the default
    /// `2n` layout.  The configuration's contention bound is the experiment's
    /// `n`.
    pub array: LevelArrayConfig,
    /// Number of simulated threads issuing Get/Free traffic.  Each holds at
    /// most one name at a time, in addition to the pre-occupied skew which is
    /// drained as the run progresses.
    pub workers: usize,
    /// Total number of Get/Free operations to run.
    pub total_ops: u64,
    /// Take an occupancy snapshot every this many operations (paper: 4000).
    pub snapshot_every: u64,
    /// The initial skew.
    pub spec: UnbalanceSpec,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of operations that release one of the pre-occupied ("ghost")
    /// names instead of a worker's own name, draining the skew gradually the
    /// way real threads deregistering would.  The paper schedules "arbitrarily
    /// chosen operations"; 0.5 reproduces its smooth decay.
    pub ghost_release_probability: f64,
}

impl HealingExperiment {
    /// The paper's Figure-3 setup scaled to contention bound `n`: the skew of
    /// [`UnbalanceSpec::paper_figure3`], `n/2` workers, 8 snapshot intervals
    /// of 4000 operations each.
    pub fn paper_figure3(n: usize, seed: u64) -> Self {
        HealingExperiment {
            array: LevelArrayConfig::new(n),
            workers: (n / 2).max(1),
            total_ops: 32_000,
            snapshot_every: 4_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed,
            ghost_release_probability: 0.5,
        }
    }

    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`, `workers > contention_bound`,
    /// `snapshot_every == 0`, or the ghost-release probability is outside
    /// `[0, 1]`.
    pub fn run(&self) -> HealingReport {
        let n = self.array.max_concurrency_value();
        assert!(self.workers > 0, "need at least one worker");
        assert!(
            self.workers <= n,
            "workers ({}) exceed the contention bound ({n})",
            self.workers
        );
        assert!(
            self.snapshot_every > 0,
            "snapshot interval must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.ghost_release_probability),
            "ghost release probability must lie in [0, 1]"
        );

        let array = self
            .array
            .build()
            .expect("invalid LevelArray configuration");
        let mut rng: DefaultRng = default_rng(self.seed);

        // Install the skewed initial state.
        let mut ghosts = force_unbalanced(&array, &self.spec, &mut rng);
        let initial_snapshot = array.occupancy();
        let initially_balanced = self
            .array
            .balance_report(&initial_snapshot)
            .is_fully_balanced();
        let mut samples = vec![OccupancySample::from_snapshot(0, &initial_snapshot, n)];

        // Worker-held names (at most one each).
        let mut worker_names: Vec<Option<Name>> = vec![None; self.workers];

        let mut ops: u64 = 0;
        while ops < self.total_ops {
            let worker = rng.gen_index(self.workers);
            // Decide what this scheduled operation does, mirroring a typical
            // register/deregister stream: a worker that holds a name frees it,
            // one that does not registers; with some probability the "free"
            // instead drains one of the ghost holdings left over from the
            // skewed initial state.
            if !ghosts.is_empty() && rng.gen_bool(self.ghost_release_probability) {
                let victim = rng.gen_index(ghosts.len());
                let name = ghosts.swap_remove(victim);
                array.free(name);
            } else if let Some(name) = worker_names[worker].take() {
                array.free(name);
            } else {
                let got = array.get(&mut rng);
                worker_names[worker] = Some(got.name());
            }
            ops += 1;

            if ops % self.snapshot_every == 0 {
                samples.push(OccupancySample::from_snapshot(ops, &array.occupancy(), n));
            }
        }

        let final_report = self.array.balance_report(&array.occupancy());
        HealingReport {
            initially_balanced,
            finally_balanced: final_report.is_fully_balanced(),
            ops_to_balance: ops_until_stably_balanced(&samples),
            samples,
        }
    }
}

/// The outcome of a healing run.
#[derive(Debug, Clone, PartialEq)]
pub struct HealingReport {
    /// Whether the array was (already) fully balanced in its skewed initial
    /// state — `false` when the spec actually overcrowds a batch.
    pub initially_balanced: bool,
    /// Whether the array was fully balanced after the last operation.
    pub finally_balanced: bool,
    /// The operation count of the first snapshot from which the array stayed
    /// balanced for the rest of the run (`None` if it never stabilized).
    pub ops_to_balance: Option<u64>,
    /// The snapshot series (first entry = the skewed initial state at 0 ops).
    pub samples: Vec<OccupancySample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbalance_spec_validation() {
        let spec = UnbalanceSpec::new(vec![0.0, 1.0, 0.5]);
        assert_eq!(spec.batch_fractions.len(), 3);
        assert_eq!(
            UnbalanceSpec::paper_figure3().batch_fractions,
            vec![0.25, 0.5]
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn unbalance_spec_rejects_bad_fractions() {
        let _ = UnbalanceSpec::new(vec![1.5]);
    }

    #[test]
    fn force_unbalanced_hits_the_requested_fractions() {
        let n = 512;
        let array = LevelArray::new(n);
        let mut rng = default_rng(1);
        let spec = UnbalanceSpec::paper_figure3();
        let held = force_unbalanced(&array, &spec, &mut rng);

        let snap = array.occupancy();
        let b0 = snap.batch(0).unwrap();
        let b1 = snap.batch(1).unwrap();
        assert_eq!(
            b0.occupied(),
            (b0.capacity() as f64 * 0.25).round() as usize
        );
        assert_eq!(b1.occupied(), (b1.capacity() as f64 * 0.5).round() as usize);
        assert_eq!(held.len(), b0.occupied() + b1.occupied());

        // Batch 1 holds n/8 slots = 64 >= the overcrowding threshold n/8 = 64,
        // so the initial state is genuinely unbalanced.
        let report = LevelArrayConfig::new(n).balance_report(&snap);
        assert!(!report.is_fully_balanced(), "{report:?}");
    }

    #[test]
    fn healing_restores_balance() {
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(256),
            workers: 64,
            total_ops: 20_000,
            snapshot_every: 1_000,
            spec: UnbalanceSpec::paper_figure3(),
            seed: 42,
            ghost_release_probability: 0.5,
        };
        let report = experiment.run();
        assert!(!report.initially_balanced, "the skew must start unbalanced");
        assert!(report.finally_balanced, "the array should have healed");
        let healed_at = report
            .ops_to_balance
            .expect("the array should stabilize within the run");
        assert!(healed_at <= 20_000);
        // The fill of batch 1 must end below its starting point.
        let first = &report.samples[0];
        let last = report.samples.last().unwrap();
        assert!(last.batch_fill[1] < first.batch_fill[1]);
        // Samples are taken at the configured cadence plus the initial one.
        assert_eq!(report.samples.len(), 1 + 20);
    }

    #[test]
    fn paper_figure3_constructor_matches_paper_parameters() {
        let e = HealingExperiment::paper_figure3(80, 7);
        assert_eq!(e.total_ops, 32_000);
        assert_eq!(e.snapshot_every, 4_000);
        assert_eq!(e.workers, 40);
        assert_eq!(e.spec, UnbalanceSpec::paper_figure3());
        let report = e.run();
        assert_eq!(report.samples.len(), 9);
        assert!(report.finally_balanced);
    }

    #[test]
    #[should_panic(expected = "exceed the contention bound")]
    fn too_many_workers_rejected() {
        let mut e = HealingExperiment::paper_figure3(8, 1);
        e.workers = 100;
        let _ = e.run();
    }

    #[test]
    fn already_balanced_start_stays_balanced() {
        let experiment = HealingExperiment {
            array: LevelArrayConfig::new(128),
            workers: 32,
            total_ops: 5_000,
            snapshot_every: 500,
            spec: UnbalanceSpec::new(vec![0.1]),
            seed: 3,
            ghost_release_probability: 0.25,
        };
        let report = experiment.run();
        assert!(report.initially_balanced);
        assert!(report.finally_balanced);
        assert_eq!(report.ops_to_balance, Some(0));
    }
}
