//! The sequential execution engine: runs well-formed process inputs against
//! any [`ActivityArray`] under a fixed (oblivious-adversary) schedule, checking
//! the renaming correctness properties and recording the quantities the
//! paper's analysis is about.
//!
//! The engine schedules whole *method calls* rather than individual memory
//! operations: because it is sequential, every call is atomic and the
//! linearization order equals the schedule order, which is the natural setting
//! in which to evaluate the analysis quantities (probes per `Get`, balance at
//! linearization points).  `Call` steps advance time without touching the
//! array, exactly as in the paper's model.

use larng::{DefaultRng, SeedSequence};
use levelarray::balance::BalanceReport;
use levelarray::{ActivityArray, GetStats, Name, OccupancySnapshot};

use crate::analysis::{BalanceTimeline, OccupancySample};
use crate::process::{Op, ProcessId, ProcessInput};
use crate::schedule::Schedule;

/// Tuning knobs for a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Master seed from which every process's generator is derived.
    pub master_seed: u64,
    /// Take an occupancy sample every this many completed `Get`/`Free`
    /// operations (`None` disables sampling).
    pub snapshot_every: Option<u64>,
    /// Evaluate the balance definitions after every this many completed
    /// `Get`/`Free` operations (`None` disables balance tracking).
    pub balance_every: Option<u64>,
    /// Contention bound used for the balance definitions; `None` uses the
    /// array's own `max_participants()`.
    pub contention_bound: Option<usize>,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            master_seed: 0,
            snapshot_every: None,
            balance_every: Some(1),
            contention_bound: None,
        }
    }
}

/// A correctness violation observed during a simulation.
///
/// A correct implementation never produces any; the simulator reports rather
/// than panics so that tests can assert on the full list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Two processes held the same name simultaneously.
    DuplicateName {
        /// The name handed out twice.
        name: Name,
        /// The process that just received it.
        process: ProcessId,
        /// The process that already held it.
        holder: ProcessId,
        /// Schedule position at which this happened.
        time: usize,
    },
    /// `try_get` reported exhaustion although the contention bound was
    /// respected.
    SpuriousExhaustion {
        /// The process whose `Get` failed.
        process: ProcessId,
        /// Schedule position at which this happened.
        time: usize,
        /// Number of names held across all processes at that moment.
        held: usize,
    },
    /// `collect` returned a name no process held (validity violation — exact
    /// in a sequential execution).
    InvalidCollect {
        /// The invalid name.
        name: Name,
        /// Schedule position at which this happened.
        time: usize,
    },
}

/// The outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Number of schedule steps actually consumed (idle steps included).
    pub steps: usize,
    /// Number of completed `Get` operations.
    pub gets: u64,
    /// Number of completed `Free` operations.
    pub frees: u64,
    /// Number of completed `Collect` operations.
    pub collects: u64,
    /// Number of `Call` steps.
    pub calls: u64,
    /// Number of steps at which the scheduled process had exhausted its input.
    pub idle_steps: u64,
    /// Probe statistics over all `Get` operations.
    pub get_stats: GetStats,
    /// Correctness violations (empty for a correct implementation).
    pub violations: Vec<Violation>,
    /// Periodic occupancy samples (see [`SimulationConfig::snapshot_every`]).
    pub samples: Vec<OccupancySample>,
    /// Balance evaluations (see [`SimulationConfig::balance_every`]).
    pub balance: BalanceTimeline,
    /// The array census after the last step.
    pub final_occupancy: OccupancySnapshot,
    /// Names still held per process at the end (index = process id).
    pub final_holdings: Vec<Option<Name>>,
}

impl SimulationReport {
    /// Convenience: `gets + frees`.
    pub fn array_operations(&self) -> u64 {
        self.gets + self.frees
    }

    /// Whether the run completed with no correctness violations.
    pub fn is_correct(&self) -> bool {
        self.violations.is_empty()
    }
}

struct ProcessState {
    input: ProcessInput,
    cursor: usize,
    holding: Option<Name>,
    rng: DefaultRng,
}

/// A single simulation: one array, one set of process inputs, one schedule.
pub struct Simulation<'a> {
    array: &'a dyn ActivityArray,
    processes: Vec<ProcessState>,
    schedule: Schedule,
    config: SimulationConfig,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("algorithm", &self.array.algorithm_name())
            .field("processes", &self.processes.len())
            .field("schedule_len", &self.schedule.len())
            .finish()
    }
}

impl<'a> Simulation<'a> {
    /// Creates a simulation.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match the schedule's process
    /// count, or if more processes are given than the array's contention
    /// bound (the model requires `processes ≤ n`).
    pub fn new(
        array: &'a dyn ActivityArray,
        inputs: Vec<ProcessInput>,
        schedule: Schedule,
        config: SimulationConfig,
    ) -> Self {
        assert_eq!(
            inputs.len(),
            schedule.num_processes(),
            "need exactly one input per scheduled process"
        );
        assert!(
            inputs.len() <= array.max_participants(),
            "{} processes exceed the array's contention bound {}",
            inputs.len(),
            array.max_participants()
        );
        let mut seeds = SeedSequence::new(config.master_seed);
        let processes = inputs
            .into_iter()
            .map(|input| ProcessState {
                input,
                cursor: 0,
                holding: None,
                rng: larng::default_rng(seeds.next_seed()),
            })
            .collect();
        Simulation {
            array,
            processes,
            schedule,
            config,
        }
    }

    /// Runs the whole schedule and returns the report.
    pub fn run(mut self) -> SimulationReport {
        let n = self
            .config
            .contention_bound
            .unwrap_or_else(|| self.array.max_participants());

        let mut report = SimulationReport {
            steps: 0,
            gets: 0,
            frees: 0,
            collects: 0,
            calls: 0,
            idle_steps: 0,
            get_stats: GetStats::new(),
            violations: Vec::new(),
            samples: Vec::new(),
            balance: BalanceTimeline::default(),
            final_occupancy: self.array.occupancy(),
            final_holdings: Vec::new(),
        };

        // Ownership model: which process currently holds which name.  The
        // simulator maintains it independently of the array so that it can
        // detect duplicate handouts and invalid collects.
        let mut holder_of: std::collections::HashMap<Name, ProcessId> =
            std::collections::HashMap::new();

        let schedule_steps: Vec<ProcessId> = self.schedule.steps().to_vec();
        for (time, pid) in schedule_steps.into_iter().enumerate() {
            report.steps += 1;
            // The simulator is one OS thread emulating many processes: tell
            // sticky-routing layouts which participant is about to operate.
            self.array.route_hint(pid.index());
            let state = &mut self.processes[pid.index()];
            let Some(op) = state.input.ops().get(state.cursor).copied() else {
                report.idle_steps += 1;
                continue;
            };
            state.cursor += 1;

            match op {
                Op::Get => {
                    debug_assert!(state.holding.is_none(), "input validated as well-formed");
                    match self.array.try_get(&mut state.rng) {
                        Some(got) => {
                            report.gets += 1;
                            report.get_stats.record(&got);
                            state.holding = Some(got.name());
                            if let Some(&holder) = holder_of.get(&got.name()) {
                                report.violations.push(Violation::DuplicateName {
                                    name: got.name(),
                                    process: pid,
                                    holder,
                                    time,
                                });
                            }
                            holder_of.insert(got.name(), pid);
                        }
                        None => {
                            report.violations.push(Violation::SpuriousExhaustion {
                                process: pid,
                                time,
                                held: holder_of.len(),
                            });
                        }
                    }
                }
                Op::Free => {
                    // A failed (spuriously exhausted) Get leaves nothing to
                    // free; the violation was already recorded there.
                    if let Some(name) = state.holding.take() {
                        self.array.free(name);
                        holder_of.remove(&name);
                        report.frees += 1;
                    }
                }
                Op::Collect => {
                    report.collects += 1;
                    for name in self.array.collect() {
                        if !holder_of.contains_key(&name) {
                            report
                                .violations
                                .push(Violation::InvalidCollect { name, time });
                        }
                    }
                }
                Op::Call => {
                    report.calls += 1;
                }
            }

            // Periodic measurements keyed on completed array operations.
            if matches!(op, Op::Get | Op::Free) {
                let ops = report.gets + report.frees;
                if let Some(every) = self.config.balance_every {
                    if every > 0 && ops % every == 0 {
                        let balanced = BalanceReport::from_snapshot(&self.array.occupancy(), n)
                            .is_fully_balanced();
                        report.balance.record(ops, balanced);
                    }
                }
                if let Some(every) = self.config.snapshot_every {
                    if every > 0 && ops % every == 0 {
                        report.samples.push(OccupancySample::from_snapshot(
                            ops,
                            &self.array.occupancy(),
                            n,
                        ));
                    }
                }
            }
        }

        report.final_occupancy = self.array.occupancy();
        report.final_holdings = self.processes.iter().map(|p| p.holding).collect();
        report
    }
}

/// Convenience driver for the common benchmark-style workload: `processes`
/// processes each performing `cycles` Get/Free cycles (with `calls_between`
/// Call steps inside each cycle) under a uniformly random schedule.
///
/// Returns the report of a run against `array`.
pub fn run_uniform_workload(
    array: &dyn ActivityArray,
    processes: usize,
    cycles: usize,
    calls_between: usize,
    config: SimulationConfig,
) -> SimulationReport {
    let inputs: Vec<ProcessInput> = (0..processes)
        .map(|_| ProcessInput::get_free_cycles(cycles, calls_between, 0))
        .collect();
    let steps_needed: usize = inputs.iter().map(|i| i.len()).sum::<usize>() * 2;
    let mut schedule_rng = larng::default_rng(config.master_seed ^ 0xABCD_EF01_2345_6789);
    let schedule = Schedule::uniform_random(processes, steps_needed, &mut schedule_rng);
    Simulation::new(array, inputs, schedule, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use larng::RandomSource;
    use levelarray::LevelArray;

    fn default_config(seed: u64) -> SimulationConfig {
        SimulationConfig {
            master_seed: seed,
            snapshot_every: Some(10),
            balance_every: Some(1),
            contention_bound: None,
        }
    }

    #[test]
    fn round_robin_run_completes_all_inputs() {
        let array = LevelArray::new(4);
        let inputs: Vec<ProcessInput> = (0..4)
            .map(|_| ProcessInput::get_free_cycles(10, 1, 5))
            .collect();
        let total_ops: usize = inputs.iter().map(|i| i.len()).sum();
        let schedule = Schedule::round_robin(4, total_ops);
        let report = Simulation::new(&array, inputs, schedule, default_config(1)).run();

        assert!(report.is_correct(), "{:?}", report.violations);
        assert_eq!(report.gets, 40);
        assert_eq!(report.frees, 40);
        assert_eq!(report.collects, 4 * 2);
        assert_eq!(report.calls, 40);
        assert_eq!(report.idle_steps, 0);
        assert_eq!(report.get_stats.operations(), 40);
        assert_eq!(report.final_occupancy.total_occupied(), 0);
        assert!(report.final_holdings.iter().all(Option::is_none));
        assert!(!report.samples.is_empty());
    }

    #[test]
    fn schedule_longer_than_inputs_counts_idle_steps() {
        let array = LevelArray::new(2);
        let inputs = vec![
            ProcessInput::get_free_cycles(1, 0, 0),
            ProcessInput::get_free_cycles(1, 0, 0),
        ];
        let schedule = Schedule::round_robin(2, 20);
        let report = Simulation::new(&array, inputs, schedule, default_config(2)).run();
        assert_eq!(report.gets, 2);
        assert_eq!(report.frees, 2);
        assert_eq!(report.idle_steps, 20 - 4);
    }

    #[test]
    fn unfinished_gets_remain_held_at_the_end() {
        let array = LevelArray::new(2);
        let inputs = vec![
            ProcessInput::register_forever(),
            ProcessInput::register_forever(),
        ];
        let schedule = Schedule::round_robin(2, 2);
        let report = Simulation::new(&array, inputs, schedule, default_config(3)).run();
        assert_eq!(report.gets, 2);
        assert_eq!(report.frees, 0);
        assert_eq!(report.final_occupancy.total_occupied(), 2);
        assert!(report.final_holdings.iter().all(Option::is_some));
        assert!(report.is_correct());
    }

    #[test]
    fn balance_is_tracked_and_always_holds_in_typical_runs() {
        // The formal overcrowding thresholds (Definition 2) are calibrated for
        // the analysis' c_i >= 16 probes per batch; with the implementation's
        // single probe per batch they only leave slack when the instantaneous
        // contention sits below the bound n.  Run 16 processes against an
        // array provisioned for n = 64 — the realistic "n is an upper bound"
        // regime — and the array must stay fully balanced throughout.
        let array = LevelArray::new(64);
        let report = run_uniform_workload(&array, 16, 20, 2, default_config(4));
        assert!(report.is_correct());
        assert!(report.balance.checks > 0);
        assert!(
            report.balance.always_balanced(),
            "typical small runs must stay balanced: {:?}",
            report.balance
        );
    }

    #[test]
    fn works_against_every_algorithm() {
        use la_baselines::{LinearProbingArray, LinearScanArray, RandomArray};
        let arrays: Vec<Box<dyn ActivityArray>> = vec![
            Box::new(LevelArray::new(8)),
            Box::new(RandomArray::new(8)),
            Box::new(LinearProbingArray::new(8)),
            Box::new(LinearScanArray::new(8)),
        ];
        for array in &arrays {
            let report = run_uniform_workload(array.as_ref(), 8, 25, 1, default_config(5));
            assert!(report.is_correct(), "{}", array.algorithm_name());
            assert_eq!(report.gets, 8 * 25, "{}", array.algorithm_name());
            assert_eq!(report.frees, 8 * 25, "{}", array.algorithm_name());
            assert!(report.get_stats.mean_probes() >= 1.0);
        }
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let run = |seed| {
            let array = LevelArray::new(8);
            let report = run_uniform_workload(&array, 8, 10, 1, default_config(seed));
            (
                report.get_stats.total_probes(),
                report.get_stats.max_probes(),
                report.samples.len(),
            )
        };
        assert_eq!(run(7), run(7));
        // Different seeds should (overwhelmingly likely) differ in total probes
        // or at least produce a valid run; we only assert validity to avoid a
        // flaky inequality.
        let _ = run(8);
    }

    #[test]
    #[should_panic(expected = "one input per scheduled process")]
    fn mismatched_inputs_and_schedule_panics() {
        let array = LevelArray::new(4);
        let _ = Simulation::new(
            &array,
            vec![ProcessInput::register_forever()],
            Schedule::round_robin(2, 4),
            SimulationConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "exceed the array's contention bound")]
    fn too_many_processes_panics() {
        let array = LevelArray::new(2);
        let inputs = vec![ProcessInput::register_forever(); 3];
        let _ = Simulation::new(
            &array,
            inputs,
            Schedule::round_robin(3, 3),
            SimulationConfig::default(),
        );
    }

    #[test]
    fn violations_are_detected_with_a_broken_array() {
        /// An intentionally broken array that hands out the same name twice.
        #[derive(Debug)]
        struct Broken;
        impl ActivityArray for Broken {
            fn algorithm_name(&self) -> &'static str {
                "Broken"
            }
            fn try_get(&self, _rng: &mut dyn RandomSource) -> Option<levelarray::Acquired> {
                Some(levelarray::Acquired::new(Name::new(0), 1, Some(0), false))
            }
            fn free(&self, _name: Name) {}
            fn collect(&self) -> Vec<Name> {
                // Claims a name nobody holds.
                vec![Name::new(17)]
            }
            fn capacity(&self) -> usize {
                32
            }
            fn max_participants(&self) -> usize {
                16
            }
            fn occupancy(&self) -> OccupancySnapshot {
                OccupancySnapshot::new(vec![])
            }
        }

        let array = Broken;
        let inputs = vec![
            ProcessInput::from_ops(vec![Op::Get, Op::Collect]).unwrap(),
            ProcessInput::from_ops(vec![Op::Get]).unwrap(),
        ];
        let schedule = Schedule::round_robin(2, 4);
        let report = Simulation::new(&array, inputs, schedule, SimulationConfig::default()).run();
        assert!(!report.is_correct());
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicateName { .. })));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::InvalidCollect { .. })));
    }
}
