//! # la-sim — oblivious-adversary simulation of activity arrays
//!
//! The LevelArray paper analyzes the algorithm in an adversarial model
//! (paper §2, §5): each process receives a *well-formed input* of `Get`,
//! `Free`, `Collect` and `Call` operations, and an *oblivious adversary* fixes
//! the whole schedule (which process steps when) before the execution starts.
//! This crate implements that model as a deterministic, sequential execution
//! engine plus the analysis machinery needed to check the paper's claims
//! empirically:
//!
//! * [`process`] — process identifiers and well-formed inputs.
//! * [`schedule`] — adversarial schedules (round-robin, uniform, weighted,
//!   bursty) and compactness checks (paper Definition 3).
//! * [`executor`] — the engine: runs inputs against any
//!   [`levelarray::ActivityArray`], verifies renaming correctness (unique
//!   names, valid collects), and records probe statistics, occupancy samples
//!   and balance evaluations.
//! * [`analysis`] — occupancy/balance time series and summary statistics.
//! * [`healing`] — the self-healing experiment of Figure 3: skew the array
//!   into an unbalanced state and watch it re-balance under normal traffic.
//!
//! # Example: validating Theorem 1 on a small instance
//!
//! ```
//! use la_sim::executor::{run_uniform_workload, SimulationConfig};
//! use levelarray::LevelArray;
//!
//! // 32 active processes against an array provisioned for a contention bound
//! // of 128 — the "n is an upper bound" regime of the paper's model.
//! let array = LevelArray::new(128);
//! let report = run_uniform_workload(&array, 32, 50, 2, SimulationConfig {
//!     master_seed: 1,
//!     balance_every: Some(1),
//!     snapshot_every: None,
//!     contention_bound: None,
//! });
//! assert!(report.is_correct());
//! assert!(report.balance.always_balanced());
//! assert!(report.get_stats.mean_probes() < 2.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod analysis;
pub mod executor;
pub mod healing;
pub mod process;
pub mod schedule;

pub use analysis::{ops_until_stably_balanced, BalanceTimeline, OccupancySample};
pub use executor::{
    run_uniform_workload, Simulation, SimulationConfig, SimulationReport, Violation,
};
pub use healing::{
    force_unbalanced, force_unbalanced_elastic, force_unbalanced_sharded, HealingExperiment,
    HealingReport, UnbalanceSpec,
};
pub use process::{InputError, Op, ProcessId, ProcessInput};
pub use schedule::Schedule;
