//! Processes and their inputs (paper §2).
//!
//! Each process receives a *well-formed input*: a sequence of `Get`, `Free`,
//! `Collect` and `Call` operations in which `Get` and `Free` alternate
//! (starting with `Get`), while `Collect` and `Call` may be interspersed
//! arbitrarily.  The adversary uses `Call` steps to model arbitrary work a
//! thread performs between activity-array operations.

use std::fmt;

/// Identifier of a simulated process: an index in `0..num_processes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// The raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// One operation in a process's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Register: acquire a name from the activity array.
    Get,
    /// Deregister: release the name acquired by the preceding `Get`.
    Free,
    /// Scan the set of currently registered processes.
    Collect,
    /// One step of unrelated work (does not touch the activity array).
    Call,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Get => "Get",
            Op::Free => "Free",
            Op::Collect => "Collect",
            Op::Call => "Call",
        };
        f.write_str(s)
    }
}

/// Error returned when an input sequence is not well-formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputError {
    /// A `Free` appeared while the process did not hold a name.
    FreeWithoutGet {
        /// Position of the offending operation in the sequence.
        position: usize,
    },
    /// A `Get` appeared while the process already held a name.
    GetWhileHolding {
        /// Position of the offending operation in the sequence.
        position: usize,
    },
}

impl fmt::Display for InputError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InputError::FreeWithoutGet { position } => {
                write!(f, "free at position {position} without a preceding get")
            }
            InputError::GetWhileHolding { position } => {
                write!(f, "get at position {position} while already holding a name")
            }
        }
    }
}

impl std::error::Error for InputError {}

/// A well-formed input sequence for one process.
///
/// # Examples
///
/// ```
/// use la_sim::process::{Op, ProcessInput};
///
/// // 3 register/deregister cycles with 2 Call steps between the Get and the Free.
/// let input = ProcessInput::get_free_cycles(3, 2, 0);
/// assert_eq!(input.len(), 3 * (1 + 2 + 1));
/// assert!(ProcessInput::from_ops(input.ops().to_vec()).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessInput {
    ops: Vec<Op>,
}

impl ProcessInput {
    /// Validates and wraps an explicit operation sequence.
    ///
    /// # Errors
    ///
    /// Returns an [`InputError`] if `Get`/`Free` do not alternate starting
    /// with `Get`.
    pub fn from_ops(ops: Vec<Op>) -> Result<Self, InputError> {
        let mut holding = false;
        for (position, op) in ops.iter().enumerate() {
            match op {
                Op::Get if holding => return Err(InputError::GetWhileHolding { position }),
                Op::Get => holding = true,
                Op::Free if !holding => return Err(InputError::FreeWithoutGet { position }),
                Op::Free => holding = false,
                Op::Collect | Op::Call => {}
            }
        }
        Ok(ProcessInput { ops })
    }

    /// The canonical benchmark input: `cycles` repetitions of
    /// `Get, Call^calls_between, Free, Collect?` — with `collect_every > 0`
    /// inserting a `Collect` after every `collect_every`-th cycle
    /// (`collect_every == 0` means no collects).
    pub fn get_free_cycles(cycles: usize, calls_between: usize, collect_every: usize) -> Self {
        let mut ops = Vec::with_capacity(cycles * (2 + calls_between + 1));
        for cycle in 0..cycles {
            ops.push(Op::Get);
            ops.extend(std::iter::repeat(Op::Call).take(calls_between));
            ops.push(Op::Free);
            if collect_every > 0 && (cycle + 1) % collect_every == 0 {
                ops.push(Op::Collect);
            }
        }
        ProcessInput { ops }
    }

    /// An input that registers once and never deregisters (used to pre-fill
    /// arrays, mirroring the paper's pre-fill percentage parameter).
    pub fn register_forever() -> Self {
        ProcessInput { ops: vec![Op::Get] }
    }

    /// The operations, in program order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the input contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of `Get` operations in the input.
    pub fn num_gets(&self) -> usize {
        self.ops.iter().filter(|op| **op == Op::Get).count()
    }

    /// Whether the input is *compact with bound `b`* in the sense of paper
    /// Definition 3 restricted to program order: every `Get` is followed by
    /// its `Free` within at most `b` subsequent operations of this process.
    pub fn is_compact(&self, b: usize) -> bool {
        let mut since_get: Option<usize> = None;
        for op in &self.ops {
            match op {
                Op::Get => since_get = Some(0),
                Op::Free => since_get = None,
                _ => {}
            }
            if let Some(steps) = since_get.as_mut() {
                *steps += 1;
                if *steps > b + 1 {
                    return false;
                }
            }
        }
        // A trailing un-freed Get is not compact (unless it is the pre-fill
        // idiom of a single Get with nothing after it).
        since_get.is_none() || self.ops.last() == Some(&Op::Get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_inputs_accepted() {
        assert!(ProcessInput::from_ops(vec![]).is_ok());
        assert!(ProcessInput::from_ops(vec![Op::Get]).is_ok());
        assert!(ProcessInput::from_ops(vec![Op::Get, Op::Free, Op::Get]).is_ok());
        assert!(ProcessInput::from_ops(vec![
            Op::Collect,
            Op::Call,
            Op::Get,
            Op::Call,
            Op::Free,
            Op::Collect
        ])
        .is_ok());
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(
            ProcessInput::from_ops(vec![Op::Free]),
            Err(InputError::FreeWithoutGet { position: 0 })
        );
        assert_eq!(
            ProcessInput::from_ops(vec![Op::Get, Op::Get]),
            Err(InputError::GetWhileHolding { position: 1 })
        );
        assert_eq!(
            ProcessInput::from_ops(vec![Op::Get, Op::Free, Op::Free]),
            Err(InputError::FreeWithoutGet { position: 2 })
        );
    }

    #[test]
    fn cycles_builder_produces_well_formed_input() {
        let input = ProcessInput::get_free_cycles(5, 3, 2);
        assert!(ProcessInput::from_ops(input.ops().to_vec()).is_ok());
        assert_eq!(input.num_gets(), 5);
        // 5 * (Get + 3 Calls + Free) + 2 Collects
        assert_eq!(input.len(), 5 * 5 + 2);
        assert!(!input.is_empty());
    }

    #[test]
    fn zero_collect_every_means_no_collects() {
        let input = ProcessInput::get_free_cycles(4, 0, 0);
        assert!(!input.ops().contains(&Op::Collect));
        assert_eq!(input.len(), 8);
    }

    #[test]
    fn register_forever_is_a_single_get() {
        let input = ProcessInput::register_forever();
        assert_eq!(input.ops(), &[Op::Get]);
        assert_eq!(input.num_gets(), 1);
    }

    #[test]
    fn compactness_detection() {
        // Get, Call, Free: the Free comes 2 steps after the Get.
        let tight = ProcessInput::get_free_cycles(3, 1, 0);
        assert!(tight.is_compact(2));
        assert!(!tight.is_compact(0));

        // A long stretch of Calls between Get and Free violates small bounds.
        let loose = ProcessInput::from_ops(vec![
            Op::Get,
            Op::Call,
            Op::Call,
            Op::Call,
            Op::Call,
            Op::Free,
        ])
        .unwrap();
        assert!(loose.is_compact(10));
        assert!(!loose.is_compact(2));

        // Pre-fill idiom: a single trailing Get is allowed.
        assert!(ProcessInput::register_forever().is_compact(1));

        // A Get that is never freed with trailing work is not compact.
        let abandoned =
            ProcessInput::from_ops(vec![Op::Get, Op::Call, Op::Call, Op::Call]).unwrap();
        assert!(!abandoned.is_compact(1));
    }

    #[test]
    fn display_impls() {
        assert_eq!(ProcessId(3).to_string(), "p3");
        assert_eq!(Op::Get.to_string(), "Get");
        assert_eq!(Op::Collect.to_string(), "Collect");
        assert!(InputError::FreeWithoutGet { position: 2 }
            .to_string()
            .contains("2"));
    }
}
