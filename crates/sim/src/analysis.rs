//! Time-series data produced by simulations and the summary statistics the
//! paper's analysis section talks about (balance over time, time-to-balance).

use levelarray::balance::BalanceReport;
use levelarray::OccupancySnapshot;

/// One sampled census of the array during an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct OccupancySample {
    /// Number of completed `Get`+`Free` operations when the sample was taken.
    pub ops_completed: u64,
    /// Fill fraction of each batch of the main array, in batch order (the
    /// series plotted in the paper's Figure 3).
    pub batch_fill: Vec<f64>,
    /// Total number of held slots.
    pub total_occupied: usize,
    /// Whether the array was fully balanced (Definition 2) at this sample.
    pub fully_balanced: bool,
}

impl OccupancySample {
    /// Builds a sample from a snapshot, evaluating balance for contention
    /// bound `n`.
    pub fn from_snapshot(ops_completed: u64, snapshot: &OccupancySnapshot, n: usize) -> Self {
        let report = BalanceReport::from_snapshot(snapshot, n);
        OccupancySample {
            ops_completed,
            batch_fill: snapshot.batch_fill_fractions(),
            total_occupied: snapshot.total_occupied(),
            fully_balanced: report.is_fully_balanced(),
        }
    }
}

/// Aggregated balance information over an execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BalanceTimeline {
    /// How many times balance was evaluated.
    pub checks: u64,
    /// How many of those evaluations found the array *not* fully balanced.
    pub unbalanced_checks: u64,
    /// The operation count at the first unbalanced evaluation, if any.
    pub first_unbalanced_at: Option<u64>,
    /// The operation count at the last unbalanced evaluation, if any.
    pub last_unbalanced_at: Option<u64>,
}

impl BalanceTimeline {
    /// Records one balance evaluation taken after `ops_completed` operations.
    pub fn record(&mut self, ops_completed: u64, fully_balanced: bool) {
        self.checks += 1;
        if !fully_balanced {
            self.unbalanced_checks += 1;
            if self.first_unbalanced_at.is_none() {
                self.first_unbalanced_at = Some(ops_completed);
            }
            self.last_unbalanced_at = Some(ops_completed);
        }
    }

    /// Fraction of evaluations at which the array was fully balanced
    /// (1.0 when no evaluations were made).
    pub fn balanced_fraction(&self) -> f64 {
        if self.checks == 0 {
            1.0
        } else {
            1.0 - self.unbalanced_checks as f64 / self.checks as f64
        }
    }

    /// Whether the array was fully balanced at every evaluation.
    pub fn always_balanced(&self) -> bool {
        self.unbalanced_checks == 0
    }
}

/// The first operation count from which every subsequent sample is fully
/// balanced — the empirical "time to re-balance" of the healing experiment
/// (`None` if the final sample is still unbalanced, `Some(0)` if every sample
/// is balanced).
pub fn ops_until_stably_balanced(samples: &[OccupancySample]) -> Option<u64> {
    if samples.is_empty() {
        return Some(0);
    }
    let mut boundary = None;
    for sample in samples {
        if sample.fully_balanced {
            if boundary.is_none() {
                boundary = Some(sample.ops_completed);
            }
        } else {
            boundary = None;
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use levelarray::{Region, RegionOccupancy};

    fn snapshot(batch_occ: &[(usize, usize)]) -> OccupancySnapshot {
        OccupancySnapshot::new(
            batch_occ
                .iter()
                .enumerate()
                .map(|(i, &(cap, occ))| RegionOccupancy::new(Region::Batch(i), cap, occ))
                .collect(),
        )
    }

    #[test]
    fn sample_captures_fill_and_balance() {
        // n = 1024; batch 1 overcrowded (>= 128 held).
        let snap = snapshot(&[(1536, 100), (256, 200), (128, 0)]);
        let sample = OccupancySample::from_snapshot(10, &snap, 1024);
        assert_eq!(sample.ops_completed, 10);
        assert_eq!(sample.total_occupied, 300);
        assert!(!sample.fully_balanced);
        assert!((sample.batch_fill[1] - 200.0 / 256.0).abs() < 1e-12);

        let ok = OccupancySample::from_snapshot(20, &snapshot(&[(1536, 100), (256, 10)]), 1024);
        assert!(ok.fully_balanced);
    }

    #[test]
    fn timeline_tracks_first_and_last_unbalanced() {
        let mut t = BalanceTimeline::default();
        t.record(1, true);
        t.record(2, false);
        t.record(3, true);
        t.record(4, false);
        t.record(5, true);
        assert_eq!(t.checks, 5);
        assert_eq!(t.unbalanced_checks, 2);
        assert_eq!(t.first_unbalanced_at, Some(2));
        assert_eq!(t.last_unbalanced_at, Some(4));
        assert!(!t.always_balanced());
        assert!((t.balanced_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_timeline_is_vacuously_balanced() {
        let t = BalanceTimeline::default();
        assert!(t.always_balanced());
        assert_eq!(t.balanced_fraction(), 1.0);
        assert_eq!(t.first_unbalanced_at, None);
    }

    #[test]
    fn stable_balance_boundary() {
        let make = |ops: u64, balanced: bool| OccupancySample {
            ops_completed: ops,
            batch_fill: vec![],
            total_occupied: 0,
            fully_balanced: balanced,
        };
        // Unbalanced, unbalanced, balanced from 3000 onward.
        let samples = vec![
            make(1000, false),
            make(2000, false),
            make(3000, true),
            make(4000, true),
        ];
        assert_eq!(ops_until_stably_balanced(&samples), Some(3000));
        // A relapse resets the boundary.
        let relapse = vec![make(1000, true), make(2000, false), make(3000, true)];
        assert_eq!(ops_until_stably_balanced(&relapse), Some(3000));
        // Still unbalanced at the end.
        let bad = vec![make(1000, true), make(2000, false)];
        assert_eq!(ops_until_stably_balanced(&bad), None);
        // Trivial cases.
        assert_eq!(ops_until_stably_balanced(&[]), Some(0));
        assert_eq!(ops_until_stably_balanced(&[make(5, true)]), Some(5));
    }
}
